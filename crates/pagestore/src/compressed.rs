//! Compressed per-path pair blocks with a mutable delta overlay.
//!
//! The paper's companion work (reference \[14\]) investigates the *size* of a
//! from-scratch path index and how far compression can shrink it. This module
//! provides that compressed representation: for every label path `p` of
//! length ≤ k, the sorted pair set `p(G)` is stored as one delta/varint block
//! ([`crate::varint::encode_pairs`]) keyed by the path, instead of one B+tree
//! entry per pair.
//!
//! The trade-off mirrors the one studied there: blocks are far smaller than
//! per-pair keys (each pair repeats the full path prefix in the B+tree), but
//! source-prefix lookups (`I_{G,k}(p, a)`) must decode the block up to `a`
//! instead of seeking directly.
//!
//! ## Live updates
//!
//! Compressed blocks cannot absorb point mutations in place, so the store
//! keeps a per-path **delta overlay**: a sorted side-table of membership
//! overrides (`pair → present/absent`) that every scan merges with the block
//! decode on the fly. When a path's overlay grows past a configurable
//! threshold the block is rewritten with the overlay folded in (a
//! *compaction*) and the overlay cleared, so scans never pay for more than a
//! bounded side-table. Blocks are shared (`Arc`) between clones, which makes
//! publishing an immutable snapshot after each update batch O(paths) instead
//! of O(index) — the overlay maps are small by construction.

use crate::varint::{encode_pairs, PairDecoder};
use pathix_audit::{AuditReport, StructuralAudit};
use pathix_graph::Graph;
use pathix_graph::{NodeId, SignedLabel};
use pathix_index::backend::{
    check_scan_path, BackendBatchScan, BackendError, BackendResult, BackendScan, BackendStats,
    BatchScan, DeltaBatch, EntryChange, IterBatchScan, MutablePathIndexBackend, PairBatch,
    PathIndexBackend,
};
use pathix_index::pathkey::{decode_entry, encode_path_prefix};
use pathix_index::{enumerate_paths, paths_k_cardinality, KPathIndex};
use std::collections::btree_map;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Size accounting of a [`CompressedPathStore`] compared against the
/// uncompressed per-entry B+tree representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Number of distinct label paths stored.
    pub paths: usize,
    /// Total number of `(source, target)` pairs across all paths (blocks and
    /// overlays combined).
    pub pairs: u64,
    /// Bytes of compressed block payload plus overlay side-tables (excluding
    /// the path keys).
    pub compressed_bytes: u64,
    /// Bytes the same data occupies as one B+tree entry per pair
    /// (`⟨path, source, target⟩` keys with empty values).
    pub uncompressed_bytes: u64,
}

impl CompressionStats {
    /// Compression ratio `uncompressed / compressed` (1.0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// State of the delta overlay of a [`CompressedPathStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OverlayStats {
    /// Number of paths with a non-empty overlay side-table.
    pub overlaid_paths: usize,
    /// Total membership overrides across all overlays.
    pub overlay_entries: u64,
    /// Overlay size at which a path's block is rewritten.
    pub compaction_threshold: usize,
    /// Block rewrites performed so far.
    pub compactions: u64,
}

/// Per-pair membership override: `true` = present, `false` = deleted.
type Overlay = BTreeMap<(u32, u32), bool>;

/// A compressed, path-keyed store of the pair sets `p(G)` for `|p| ≤ k`.
#[derive(Debug, Clone)]
pub struct CompressedPathStore {
    k: usize,
    node_count: usize,
    per_path_counts: Vec<(Vec<SignedLabel>, u64)>,
    paths_k_size: u64,
    blocks: BTreeMap<Vec<u8>, Arc<Block>>,
    /// Membership overrides not yet folded into the blocks, keyed like
    /// `blocks` by the encoded path prefix.
    overlays: BTreeMap<Vec<u8>, Overlay>,
    compaction_threshold: usize,
    compactions: u64,
    inserts_applied: u64,
    deletes_applied: u64,
    /// Segments bypassed by source-fence checks on bound probes, shared
    /// across clones/reader views so it totals over the store's lineage.
    blocks_skipped: Arc<AtomicU64>,
}

/// Pairs stored per [`Segment`]: small enough that a bound probe decodes at
/// most a few hundred pairs, large enough that the per-segment fence/length
/// overhead stays negligible.
const SEGMENT_PAIRS: usize = 512;

/// One independently decodable slice of a block: the delta chain restarts at
/// every segment boundary, so a probe can skip straight to the segment whose
/// source fence covers it.
#[derive(Debug)]
struct Segment {
    bytes: Vec<u8>,
    /// Smallest source in the segment.
    min_src: u32,
    /// Largest source in the segment.
    max_src: u32,
}

#[derive(Debug)]
struct Block {
    /// Non-empty segments in ascending `(source, target)` order.
    segments: Vec<Segment>,
}

/// Segments a sorted pair list into independently decodable fenced slices.
fn encode_block(pairs: &[(u32, u32)]) -> Block {
    Block {
        segments: pairs
            .chunks(SEGMENT_PAIRS)
            .map(|chunk| Segment {
                bytes: encode_pairs(chunk),
                min_src: chunk[0].0,
                max_src: chunk[chunk.len() - 1].0,
            })
            .collect(),
    }
}

impl CompressedPathStore {
    /// Default overlay size past which a path's block is rewritten.
    pub const DEFAULT_COMPACTION_THRESHOLD: usize = 1024;

    /// Builds the store for every label path of length ≤ k over `graph`.
    pub fn build(graph: &Graph, k: usize) -> Self {
        let relations = enumerate_paths(graph, k);
        let paths_k_size = paths_k_cardinality(graph, &relations);
        let mut per_path_counts = Vec::with_capacity(relations.len());
        let mut blocks = BTreeMap::new();
        for rel in &relations {
            let mut pairs: Vec<(u32, u32)> = rel.pairs.iter().map(|(s, t)| (s.0, t.0)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            per_path_counts.push((rel.path.clone(), pairs.len() as u64));
            blocks.insert(
                encode_path_prefix(&rel.path),
                Arc::new(encode_block(&pairs)),
            );
        }
        CompressedPathStore {
            k,
            node_count: graph.node_count(),
            per_path_counts,
            paths_k_size,
            blocks,
            overlays: BTreeMap::new(),
            compaction_threshold: Self::DEFAULT_COMPACTION_THRESHOLD,
            compactions: 0,
            inserts_applied: 0,
            deletes_applied: 0,
            blocks_skipped: Arc::default(),
        }
    }

    /// Builds the store from an already-constructed [`KPathIndex`] (avoids
    /// re-enumerating paths when both representations are wanted).
    pub fn from_index(index: &KPathIndex) -> Self {
        let mut per_path_counts = Vec::with_capacity(index.per_path_counts().len());
        let mut blocks = BTreeMap::new();
        for (path, _) in index.per_path_counts() {
            let mut pairs: Vec<(u32, u32)> =
                index.scan_path(path).map(|(s, t)| (s.0, t.0)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            per_path_counts.push((path.clone(), pairs.len() as u64));
            blocks.insert(encode_path_prefix(path), Arc::new(encode_block(&pairs)));
        }
        CompressedPathStore {
            k: index.k(),
            node_count: index.node_count(),
            per_path_counts,
            paths_k_size: index.paths_k_size(),
            blocks,
            overlays: BTreeMap::new(),
            compaction_threshold: Self::DEFAULT_COMPACTION_THRESHOLD,
            compactions: 0,
            inserts_applied: 0,
            deletes_applied: 0,
            blocks_skipped: Arc::default(),
        }
    }

    /// This store with a different overlay compaction threshold (clamped to
    /// ≥ 1): a path whose overlay reaches the threshold after a delta batch
    /// has its block rewritten and the overlay cleared.
    pub fn with_compaction_threshold(mut self, threshold: usize) -> Self {
        self.compaction_threshold = threshold.max(1);
        self
    }

    /// An immutable read view of the current state: blocks are shared, the
    /// (bounded) overlay side-tables are copied. This is the snapshot a live
    /// database publishes after each update batch; unlike the paged backend,
    /// views of the compressed store are fully isolated from later updates.
    pub fn reader_view(&self) -> CompressedPathStore {
        self.clone()
    }

    /// Number of nodes of the indexed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The locality parameter the store was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct label paths currently holding at least one pair.
    pub fn path_count(&self) -> usize {
        self.per_path_counts.len()
    }

    /// Decodes and returns `p(G)` in `(source, target)` order, or an empty
    /// vector when the path is not stored (unknown label or `|p| > k`).
    pub fn pairs(&self, path: &[SignedLabel]) -> Vec<(NodeId, NodeId)> {
        self.scan_path(path)
            .map(|(s, t)| (NodeId(s), NodeId(t)))
            .collect()
    }

    /// Streaming scan of `p(G)` as raw `u32` pairs in `(source, target)`
    /// order (empty when the path is not stored): the block decode merged
    /// with the path's overlay on the fly.
    pub fn scan_path(&self, path: &[SignedLabel]) -> CompressedPairScan<'_> {
        self.scan_prefix(&encode_path_prefix(path))
    }

    fn segments(&self, prefix: &[u8]) -> &[Segment] {
        self.blocks
            .get(prefix)
            .map(|b| b.segments.as_slice())
            .unwrap_or(&[])
    }

    fn scan_prefix(&self, prefix: &[u8]) -> CompressedPairScan<'_> {
        static EMPTY_OVERLAY: Overlay = Overlay::new();
        let base = SegmentCursor::new(self.segments(prefix));
        let overlay = self.overlays.get(prefix).unwrap_or(&EMPTY_OVERLAY).iter();
        CompressedPairScan::new(base, overlay)
    }

    /// Targets reachable from `source` via `path`.
    ///
    /// Bound probes are the win for segmentation: every segment whose source
    /// fence excludes `source` is bypassed without decoding a byte (counted
    /// in [`Self::blocks_skipped`]); only covering segments are decoded, and
    /// the path's overlay range for `source` is merged on top.
    pub fn targets_from(&self, path: &[SignedLabel], source: NodeId) -> Vec<NodeId> {
        let prefix = encode_path_prefix(path);
        let mut out: Vec<u32> = Vec::new();
        for seg in self.segments(&prefix) {
            if seg.max_src < source.0 || seg.min_src > source.0 {
                self.blocks_skipped.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            for (s, t) in PairDecoder::new(&seg.bytes) {
                if s > source.0 {
                    break;
                }
                if s == source.0 {
                    out.push(t);
                }
            }
        }
        if let Some(overlay) = self.overlays.get(&prefix) {
            for (&(_, t), &present) in overlay.range((source.0, 0)..=(source.0, u32::MAX)) {
                match out.binary_search(&t) {
                    Ok(i) if !present => {
                        out.remove(i);
                    }
                    Err(i) if present => {
                        out.insert(i, t);
                    }
                    _ => {}
                }
            }
        }
        out.into_iter().map(NodeId).collect()
    }

    /// Segments bypassed so far by bound-probe fence checks (totalled over
    /// this store's whole clone lineage).
    pub fn blocks_skipped(&self) -> u64 {
        self.blocks_skipped.load(Ordering::Relaxed)
    }

    /// Membership test for `(source, target) ∈ p(G)`.
    pub fn contains(&self, path: &[SignedLabel], source: NodeId, target: NodeId) -> bool {
        let pair = (source.0, target.0);
        if let Some(overlay) = self.overlays.get(&encode_path_prefix(path)) {
            if let Some(&present) = overlay.get(&pair) {
                return present;
            }
        }
        self.targets_from(path, source).contains(&target)
    }

    /// Number of pairs stored for `path`, if it is stored.
    pub fn path_cardinality(&self, path: &[SignedLabel]) -> Option<u64> {
        self.per_path_counts
            .iter()
            .find(|(p, _)| p == path)
            .map(|(_, c)| *c)
    }

    /// Folds `prefix`'s overlay into a freshly encoded block (or removes the
    /// path entirely when no pair survives) and clears the overlay.
    fn compact_prefix(&mut self, prefix: &[u8]) {
        let merged: Vec<(u32, u32)> = self.scan_prefix(prefix).collect();
        if merged.is_empty() {
            self.blocks.remove(prefix);
        } else {
            self.blocks
                .insert(prefix.to_vec(), Arc::new(encode_block(&merged)));
        }
        self.overlays.remove(prefix);
        self.compactions += 1;
    }

    /// State of the delta overlay (side-table sizes, compactions so far).
    pub fn overlay_stats(&self) -> OverlayStats {
        OverlayStats {
            overlaid_paths: self.overlays.len(),
            overlay_entries: self.overlays.values().map(|o| o.len() as u64).sum(),
            compaction_threshold: self.compaction_threshold,
            compactions: self.compactions,
        }
    }

    /// Size accounting versus the per-entry B+tree layout.
    pub fn stats(&self) -> CompressionStats {
        let mut pairs = 0u64;
        let mut compressed = 0u64;
        let mut uncompressed = 0u64;
        for (path, count) in &self.per_path_counts {
            pairs += count;
            // One B+tree entry per pair: the full composite key (path prefix
            // plus 8 bytes of node ids) with an empty value.
            uncompressed += count * (1 + 2 * path.len() as u64 + 8);
        }
        for (key, block) in &self.blocks {
            // Each segment carries its payload plus two 4-byte source fences.
            compressed += key.len() as u64
                + block
                    .segments
                    .iter()
                    .map(|s| s.bytes.len() as u64 + 8)
                    .sum::<u64>();
        }
        for overlay in self.overlays.values() {
            // One override costs a pair (8 bytes) plus the present flag.
            compressed += overlay.len() as u64 * 9;
        }
        CompressionStats {
            paths: self.per_path_counts.len(),
            pairs,
            compressed_bytes: compressed,
            uncompressed_bytes: uncompressed,
        }
    }
}

/// Sequential decode of a block's segment chain: the delta decoder restarts
/// at every segment boundary, yielding the block's pairs in order.
#[derive(Debug, Clone)]
struct SegmentCursor<'a> {
    segments: &'a [Segment],
    /// Index of the segment `cur` decodes.
    idx: usize,
    cur: PairDecoder<'a>,
}

/// A valid encoding of zero pairs, for cursors over empty segment lists.
static EMPTY_SEGMENT: &[u8] = &[0];

impl<'a> SegmentCursor<'a> {
    fn new(segments: &'a [Segment]) -> Self {
        let cur = PairDecoder::new(
            segments
                .first()
                .map(|s| s.bytes.as_slice())
                .unwrap_or(EMPTY_SEGMENT),
        );
        SegmentCursor {
            segments,
            idx: 0,
            cur,
        }
    }

    /// Advances to the next segment; `false` when the chain is exhausted.
    fn advance_segment(&mut self) -> bool {
        self.idx += 1;
        match self.segments.get(self.idx) {
            Some(seg) => {
                self.cur = PairDecoder::new(&seg.bytes);
                true
            }
            None => false,
        }
    }
}

impl Iterator for SegmentCursor<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            if let Some(pair) = self.cur.next() {
                return Some(pair);
            }
            if !self.advance_segment() {
                return None;
            }
        }
    }
}

/// Batch-at-a-time decode of a segment chain straight into a [`PairBatch`],
/// used when a path has no overlay to merge.
struct SegmentBatchScan<'a> {
    cursor: SegmentCursor<'a>,
}

impl BatchScan for SegmentBatchScan<'_> {
    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        batch.clear();
        loop {
            self.cursor.cur.decode_into(batch);
            if batch.is_full() || !self.cursor.advance_segment() {
                return Ok(batch.len());
            }
        }
    }
}

/// Streaming merge of one path's block decode with its overlay side-table,
/// in ascending `(source, target)` order.
#[derive(Debug, Clone)]
pub struct CompressedPairScan<'a> {
    base: SegmentCursor<'a>,
    base_next: Option<(u32, u32)>,
    overlay: btree_map::Iter<'a, (u32, u32), bool>,
    overlay_next: Option<((u32, u32), bool)>,
}

impl<'a> CompressedPairScan<'a> {
    fn new(
        mut base: SegmentCursor<'a>,
        mut overlay: btree_map::Iter<'a, (u32, u32), bool>,
    ) -> Self {
        let base_next = base.next();
        let overlay_next = overlay.next().map(|(&p, &v)| (p, v));
        CompressedPairScan {
            base,
            base_next,
            overlay,
            overlay_next,
        }
    }
}

impl Iterator for CompressedPairScan<'_> {
    type Item = (u32, u32);

    fn next(&mut self) -> Option<(u32, u32)> {
        loop {
            match (self.base_next, self.overlay_next) {
                (None, None) => return None,
                // Only base pairs left (or the next base pair sorts first):
                // the block entry stands.
                (Some(bp), Some((op, _))) if bp < op => {
                    self.base_next = self.base.next();
                    return Some(bp);
                }
                (Some(bp), None) => {
                    self.base_next = self.base.next();
                    return Some(bp);
                }
                // The overlay overrides the block entry for the same pair.
                (Some(bp), Some((op, present))) if bp == op => {
                    self.base_next = self.base.next();
                    self.overlay_next = self.overlay.next().map(|(&p, &v)| (p, v));
                    if present {
                        return Some(op);
                    }
                }
                // Overlay-only pair: emit if present, skip tombstones for
                // pairs the block never held (added then removed again).
                (_, Some((op, present))) => {
                    self.overlay_next = self.overlay.next().map(|(&p, &v)| (p, v));
                    if present {
                        return Some(op);
                    }
                }
            }
        }
    }
}

/// Structural audit of the compressed layout: every segment decodes back to
/// a sorted slice whose source fences are exact (the fences are what bound
/// probes trust to skip segments), segment chains stay ascending and
/// disjoint, overlays stay under the compaction threshold a batch leaves
/// behind, and a merged scan of every path reproduces its advertised count.
impl StructuralAudit for CompressedPathStore {
    fn audit(&self, report: &mut AuditReport) {
        let names: BTreeMap<Vec<u8>, String> = self
            .per_path_counts
            .iter()
            .map(|(path, _)| (encode_path_prefix(path), format!("{path:?}")))
            .collect();
        let name = |prefix: &[u8]| {
            names
                .get(prefix)
                .cloned()
                .unwrap_or_else(|| format!("{prefix:02x?}"))
        };

        for (prefix, block) in &self.blocks {
            let mut prev_last: Option<(u32, u32)> = None;
            for (i, seg) in block.segments.iter().enumerate() {
                let loc = format!("{} seg {i}", name(prefix));
                let pairs: Vec<(u32, u32)> = PairDecoder::new(&seg.bytes).collect();
                report.check("segment-nonempty", &loc, !pairs.is_empty(), || {
                    "segment decodes to zero pairs".into()
                });
                if pairs.is_empty() {
                    continue;
                }
                report.check("segment-size", &loc, pairs.len() <= SEGMENT_PAIRS, || {
                    format!("{} pairs exceed the {SEGMENT_PAIRS}-pair cap", pairs.len())
                });
                let unsorted = pairs.windows(2).filter(|w| w[0] >= w[1]).count();
                report.check("segment-sorted", &loc, unsorted == 0, || {
                    format!("{unsorted} adjacent pair(s) out of order")
                });
                let min_src = pairs.iter().map(|&(s, _)| s).min().unwrap_or(0);
                let max_src = pairs.iter().map(|&(s, _)| s).max().unwrap_or(0);
                report.check(
                    "segment-fence-tight",
                    &loc,
                    seg.min_src == min_src && seg.max_src == max_src,
                    || {
                        format!(
                            "fence [{}, {}] but decoded sources span [{min_src}, {max_src}]",
                            seg.min_src, seg.max_src
                        )
                    },
                );
                if let Some(prev) = prev_last {
                    report.check("segment-disjoint", &loc, prev < pairs[0], || {
                        format!(
                            "first pair {:?} does not follow the previous segment's last {prev:?}",
                            pairs[0]
                        )
                    });
                }
                prev_last = Some(*pairs.last().unwrap());
            }
        }

        for (prefix, overlay) in &self.overlays {
            report.check(
                "overlay-bounded",
                &name(prefix),
                overlay.len() < self.compaction_threshold,
                || {
                    format!(
                        "{} override(s) at/over the compaction threshold {}",
                        overlay.len(),
                        self.compaction_threshold
                    )
                },
            );
        }

        for (path, count) in &self.per_path_counts {
            let prefix = encode_path_prefix(path);
            let loc = format!("{path:?}");
            let mut n = 0u64;
            let mut unsorted = 0usize;
            let mut prev: Option<(u32, u32)> = None;
            for pair in self.scan_prefix(&prefix) {
                if prev.is_some_and(|p| p >= pair) {
                    unsorted += 1;
                }
                prev = Some(pair);
                n += 1;
            }
            report.check("merged-scan-sorted", &loc, unsorted == 0, || {
                format!("{unsorted} adjacent merged pair(s) out of order")
            });
            report.check("counts-consistent", &loc, n == *count, || {
                format!("per_path_counts says {count} pair(s), a merged scan yields {n}")
            });
        }

        // A prefix stored outside per_path_counts must merge to nothing —
        // anything else is a path the statistics have lost track of.
        for prefix in self.blocks.keys().chain(self.overlays.keys()) {
            if !names.contains_key(prefix) {
                let n = self.scan_prefix(prefix).count();
                report.check("orphan-prefix", &format!("{prefix:02x?}"), n == 0, || {
                    format!("{n} pair(s) stored for a path missing from per_path_counts")
                });
            }
        }
    }
}

impl PathIndexBackend for CompressedPathStore {
    fn backend_name(&self) -> &'static str {
        "compressed"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn scan_path(&self, path: &[SignedLabel]) -> BackendResult<BackendScan<'_>> {
        check_scan_path(self.backend_name(), self.k, path)?;
        Ok(Box::new(
            CompressedPathStore::scan_path(self, path).map(|(s, t)| Ok((NodeId(s), NodeId(t)))),
        ))
    }

    fn scan_path_batches(&self, path: &[SignedLabel]) -> BackendResult<BackendBatchScan<'_>> {
        check_scan_path(self.backend_name(), self.k, path)?;
        let prefix = encode_path_prefix(path);
        let overlay_is_empty = match self.overlays.get(&prefix) {
            Some(overlay) => overlay.is_empty(),
            None => true,
        };
        if overlay_is_empty {
            // No overrides to merge: decode segments straight into batches.
            Ok(Box::new(SegmentBatchScan {
                cursor: SegmentCursor::new(self.segments(&prefix)),
            }))
        } else {
            Ok(Box::new(IterBatchScan::new(PathIndexBackend::scan_path(
                self, path,
            )?)))
        }
    }

    fn scan_path_from(&self, path: &[SignedLabel], source: NodeId) -> BackendResult<Vec<NodeId>> {
        check_scan_path(self.backend_name(), self.k, path)?;
        Ok(self.targets_from(path, source))
    }

    fn contains(
        &self,
        path: &[SignedLabel],
        source: NodeId,
        target: NodeId,
    ) -> BackendResult<bool> {
        Ok(CompressedPathStore::contains(self, path, source, target))
    }

    fn path_cardinality(&self, path: &[SignedLabel]) -> Option<u64> {
        CompressedPathStore::path_cardinality(self, path)
    }

    fn per_path_counts(&self) -> &[(Vec<SignedLabel>, u64)] {
        &self.per_path_counts
    }

    fn paths_k_size(&self) -> u64 {
        self.paths_k_size
    }

    fn stats(&self) -> BackendStats {
        let s = CompressedPathStore::stats(self);
        BackendStats {
            backend: self.backend_name(),
            k: self.k,
            entries: s.pairs,
            distinct_paths: s.paths,
            paths_k_size: self.paths_k_size,
            approx_bytes: s.compressed_bytes,
        }
    }
}

impl MutablePathIndexBackend for CompressedPathStore {
    /// Replays the batch's key transitions into the per-path overlays,
    /// adopts the fresh statistics, and compacts every path whose overlay
    /// reached the configured threshold.
    fn apply_delta_batch(&mut self, batch: &DeltaBatch<'_>) -> BackendResult<()> {
        for (key, change) in batch.deltas.ops() {
            let (path, a, b) = decode_entry(key).ok_or_else(|| {
                BackendError::new("compressed", "malformed index key in delta batch")
            })?;
            let prefix = encode_path_prefix(&path);
            self.overlays
                .entry(prefix)
                .or_default()
                .insert((a.0, b.0), matches!(change, EntryChange::Added));
        }
        self.per_path_counts = batch.per_path_counts.to_vec();
        self.paths_k_size = batch.paths_k_size;
        self.node_count = batch.node_count;
        self.inserts_applied += batch.inserted_edges;
        self.deletes_applied += batch.deleted_edges;

        let due: Vec<Vec<u8>> = self
            .overlays
            .iter()
            .filter(|(_, overlay)| overlay.len() >= self.compaction_threshold)
            .map(|(prefix, _)| prefix.clone())
            .collect();
        for prefix in due {
            self.compact_prefix(&prefix);
        }
        Ok(())
    }

    fn updates_applied(&self) -> (u64, u64) {
        (self.inserts_applied, self.deletes_applied)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::SignedLabel;
    use pathix_index::{EntryDeltas, GraphUpdate, IncrementalKPathIndex};

    fn knows(g: &Graph) -> SignedLabel {
        SignedLabel::forward(g.label_id("knows").unwrap())
    }

    #[test]
    fn matches_the_uncompressed_index_on_the_paper_example() {
        let g = paper_example_graph();
        let k = 3;
        let index = KPathIndex::build(&g, k);
        let store = CompressedPathStore::build(&g, k);
        assert_eq!(store.k(), k);
        assert_eq!(store.path_count(), index.per_path_counts().len());
        for (path, count) in index.per_path_counts() {
            let from_index: Vec<_> = index.scan_path(path).collect();
            let from_store = store.pairs(path);
            assert_eq!(from_index, from_store, "path {path:?}");
            assert_eq!(store.path_cardinality(path), Some(*count));
        }
    }

    #[test]
    fn from_index_equals_build() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let a = CompressedPathStore::build(&g, 2);
        let b = CompressedPathStore::from_index(&index);
        assert_eq!(a.path_count(), b.path_count());
        for (path, _) in index.per_path_counts() {
            assert_eq!(a.pairs(path), b.pairs(path));
        }
    }

    #[test]
    fn lookup_shapes_match_example_31_semantics() {
        let g = paper_example_graph();
        let store = CompressedPathStore::build(&g, 2);
        let kn = knows(&g);
        let path = [kn, kn];
        let all = store.pairs(&path);
        assert!(!all.is_empty());
        let (src, dst) = all[0];
        assert!(store.targets_from(&path, src).contains(&dst));
        assert!(store.contains(&path, src, dst));
        // A node pair that is definitely absent.
        assert!(!store.contains(&path, NodeId(u32::MAX - 1), NodeId(0)));
    }

    #[test]
    fn unknown_paths_scan_empty() {
        let g = paper_example_graph();
        let store = CompressedPathStore::build(&g, 1);
        let kn = knows(&g);
        // Length 2 > k = 1 is not stored.
        assert!(store.pairs(&[kn, kn]).is_empty());
        assert_eq!(store.path_cardinality(&[kn, kn]), None);
    }

    #[test]
    fn compression_beats_the_per_entry_layout() {
        let g = paper_example_graph();
        let store = CompressedPathStore::build(&g, 3);
        let stats = store.stats();
        assert!(stats.pairs > 0);
        assert!(
            stats.compressed_bytes < stats.uncompressed_bytes,
            "compressed {} !< uncompressed {}",
            stats.compressed_bytes,
            stats.uncompressed_bytes
        );
        assert!(stats.ratio() > 1.0);
    }

    /// Applies `updates` through the shared counting rules and hands the
    /// resulting key deltas to the store, mirroring what `PathDb::apply`
    /// does per batch.
    fn apply_updates(
        store: &mut CompressedPathStore,
        oracle: &mut IncrementalKPathIndex,
        updates: &[GraphUpdate],
    ) {
        let mut deltas = EntryDeltas::new();
        let mut inserted = 0;
        let mut deleted = 0;
        for update in updates {
            let is_insert = matches!(update, GraphUpdate::InsertEdge { .. });
            if oracle.apply_logged(update.clone(), &mut deltas) {
                if is_insert {
                    inserted += 1;
                } else {
                    deleted += 1;
                }
            }
        }
        store
            .apply_delta_batch(&DeltaBatch {
                deltas: &deltas,
                per_path_counts: oracle.per_path_counts(),
                paths_k_size: oracle.paths_k_size(),
                node_count: oracle.node_count(),
                inserted_edges: inserted,
                deleted_edges: deleted,
                seq: 1,
            })
            .unwrap();
    }

    #[test]
    fn overlaid_store_answers_like_a_rebuild() {
        let g = paper_example_graph();
        let k = 2;
        let mut store = CompressedPathStore::build(&g, k);
        let mut oracle = IncrementalKPathIndex::bulk_from_graph(&g, k);

        let sue = g.node_id("sue").unwrap();
        let tim = g.node_id("tim").unwrap();
        let kim = g.node_id("kim").unwrap();
        let liz = g.node_id("liz").unwrap();
        let knows_l = g.label_id("knows").unwrap();
        let supervisor = g.label_id("supervisor").unwrap();
        let updates = [
            GraphUpdate::InsertEdge {
                src: sue,
                label: knows_l,
                dst: tim,
            },
            GraphUpdate::DeleteEdge {
                src: kim,
                label: supervisor,
                dst: liz,
            },
        ];
        apply_updates(&mut store, &mut oracle, &updates);
        assert_eq!(store.updates_applied(), (1, 1));
        assert!(store.overlay_stats().overlay_entries > 0);

        let mut updated = g.clone();
        assert!(updated.insert_edge(sue, knows_l, tim));
        assert!(updated.remove_edge(kim, supervisor, liz));
        let rebuilt = CompressedPathStore::build(&updated, k);
        assert_eq!(store.path_count(), rebuilt.path_count());
        assert_eq!(
            PathIndexBackend::paths_k_size(&store),
            PathIndexBackend::paths_k_size(&rebuilt)
        );
        for (path, count) in rebuilt.per_path_counts.clone() {
            assert_eq!(store.pairs(&path), rebuilt.pairs(&path), "path {path:?}");
            assert_eq!(store.path_cardinality(&path), Some(count));
            for (s, t) in rebuilt.pairs(&path) {
                assert!(store.contains(&path, s, t));
                assert!(store.targets_from(&path, s).contains(&t));
            }
        }
        // Reader views stay pinned while the writer keeps going.
        let view = store.reader_view();
        apply_updates(
            &mut store,
            &mut oracle,
            &[GraphUpdate::DeleteEdge {
                src: sue,
                label: knows_l,
                dst: tim,
            }],
        );
        let kn = knows(&g);
        assert!(view.pairs(&[kn]).contains(&(sue, tim)));
        assert!(!store.pairs(&[kn]).contains(&(sue, tim)));
    }

    #[test]
    fn compaction_folds_overlays_into_blocks_past_the_threshold() {
        let g = paper_example_graph();
        let mut store = CompressedPathStore::build(&g, 2).with_compaction_threshold(1);
        let mut oracle = IncrementalKPathIndex::bulk_from_graph(&g, 2);
        let sue = g.node_id("sue").unwrap();
        let tim = g.node_id("tim").unwrap();
        let knows_l = g.label_id("knows").unwrap();
        apply_updates(
            &mut store,
            &mut oracle,
            &[GraphUpdate::InsertEdge {
                src: sue,
                label: knows_l,
                dst: tim,
            }],
        );
        let stats = store.overlay_stats();
        assert_eq!(
            stats.overlay_entries, 0,
            "threshold 1 must compact every touched path"
        );
        assert!(stats.compactions > 0);
        assert_eq!(stats.compaction_threshold, 1);
        // The compacted blocks carry the update.
        let kn = knows(&g);
        assert!(store.pairs(&[kn]).contains(&(sue, tim)));
        // Deleting every pair of a path through compaction drops its block.
        let blocks_with_path = store.blocks.len();
        let deletions: Vec<GraphUpdate> = g
            .labels()
            .flat_map(|l| g.edges(l).map(move |(s, d)| (s, l, d)))
            .map(|(src, label, dst)| GraphUpdate::DeleteEdge { src, label, dst })
            .chain(std::iter::once(GraphUpdate::DeleteEdge {
                src: sue,
                label: knows_l,
                dst: tim,
            }))
            .collect();
        apply_updates(&mut store, &mut oracle, &deletions);
        assert_eq!(store.path_count(), 0);
        assert!(store.blocks.len() < blocks_with_path);
        assert!(
            store.blocks.is_empty(),
            "empty paths must drop their blocks"
        );
    }

    #[test]
    fn multi_segment_blocks_round_trip_and_fence_probes() {
        // A single-label chain with several segments' worth of pairs.
        let mut b = pathix_graph::GraphBuilder::new();
        let n = 3 * SEGMENT_PAIRS as u32;
        for i in 0..n {
            b.add_edge_named(&format!("n{i}"), "l", &format!("n{}", i + 1));
        }
        let g = b.build();
        let store = CompressedPathStore::build(&g, 1);
        let path = [SignedLabel::forward(g.label_id("l").unwrap())];
        let prefix = encode_path_prefix(&path);
        let segments = store.segments(&prefix).len();
        assert!(segments >= 3, "need several segments, got {segments}");

        // Full decode matches the chain.
        assert_eq!(store.pairs(&path).len(), n as usize);
        // A bound probe decodes only the covering segment and counts the
        // bypassed ones.
        let before = store.blocks_skipped();
        let src = g.node_id("n0").unwrap();
        assert_eq!(
            store.targets_from(&path, src),
            vec![g.node_id("n1").unwrap()]
        );
        assert_eq!(
            store.blocks_skipped() - before,
            segments as u64 - 1,
            "all but one segment must be fence-skipped"
        );
    }

    #[test]
    fn batched_scan_matches_streaming_with_and_without_overlay() {
        let g = paper_example_graph();
        let mut store = CompressedPathStore::build(&g, 2);
        let mut oracle = IncrementalKPathIndex::bulk_from_graph(&g, 2);
        let drain = |store: &CompressedPathStore, path: &[SignedLabel]| {
            let mut scan = PathIndexBackend::scan_path_batches(store, path).unwrap();
            let mut batch = PairBatch::with_capacity(5);
            let mut out = Vec::new();
            while scan.next_batch(&mut batch).unwrap() > 0 {
                out.extend(batch.iter());
            }
            out
        };
        let check = |store: &CompressedPathStore| {
            for (path, _) in store.per_path_counts.clone() {
                let streamed: Vec<_> = store.pairs(&path);
                assert_eq!(drain(store, &path), streamed, "path {path:?}");
            }
        };
        check(&store);
        // Un-compacted overlays force the merged fallback path.
        let sue = g.node_id("sue").unwrap();
        let tim = g.node_id("tim").unwrap();
        apply_updates(
            &mut store,
            &mut oracle,
            &[GraphUpdate::InsertEdge {
                src: sue,
                label: g.label_id("knows").unwrap(),
                dst: tim,
            }],
        );
        assert!(store.overlay_stats().overlay_entries > 0);
        check(&store);
    }

    #[test]
    fn paths_born_from_updates_scan_without_a_base_block() {
        // k = 2 over a single edge: inserting a second edge creates label
        // paths that had no pairs (hence no block) at build time.
        let mut b = pathix_graph::GraphBuilder::new();
        b.add_edge_named("a", "l", "b");
        b.add_node("c");
        let g = b.build();
        let mut store = CompressedPathStore::build(&g, 2);
        let mut oracle = IncrementalKPathIndex::bulk_from_graph(&g, 2);
        let l = g.label_id("l").unwrap();
        let bb = g.node_id("b").unwrap();
        let cc = g.node_id("c").unwrap();
        apply_updates(
            &mut store,
            &mut oracle,
            &[GraphUpdate::InsertEdge {
                src: bb,
                label: l,
                dst: cc,
            }],
        );
        let fwd = SignedLabel::forward(l);
        let aa = g.node_id("a").unwrap();
        assert_eq!(store.pairs(&[fwd, fwd]), vec![(aa, cc)]);
        assert_eq!(store.path_cardinality(&[fwd, fwd]), Some(1));
    }

    /// Names of the invariants a full audit of `store` finds violated.
    fn violated(store: &CompressedPathStore) -> Vec<&'static str> {
        let mut report = AuditReport::new();
        report.run("compressed", store);
        report.violations().iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn audit_is_clean_after_build_updates_and_compaction() {
        let g = paper_example_graph();
        let mut store = CompressedPathStore::build(&g, 2).with_compaction_threshold(3);
        let mut oracle = IncrementalKPathIndex::bulk_from_graph(&g, 2);
        assert!(violated(&store).is_empty(), "freshly built store");

        let sue = g.node_id("sue").unwrap();
        let tim = g.node_id("tim").unwrap();
        let kim = g.node_id("kim").unwrap();
        let liz = g.node_id("liz").unwrap();
        let knows_l = g.label_id("knows").unwrap();
        let supervisor = g.label_id("supervisor").unwrap();
        let scripts: [&[GraphUpdate]; 3] = [
            &[GraphUpdate::InsertEdge {
                src: sue,
                label: knows_l,
                dst: tim,
            }],
            &[GraphUpdate::DeleteEdge {
                src: kim,
                label: supervisor,
                dst: liz,
            }],
            &[
                GraphUpdate::DeleteEdge {
                    src: sue,
                    label: knows_l,
                    dst: tim,
                },
                GraphUpdate::InsertEdge {
                    src: kim,
                    label: supervisor,
                    dst: liz,
                },
            ],
        ];
        for (i, updates) in scripts.iter().enumerate() {
            apply_updates(&mut store, &mut oracle, updates);
            assert!(violated(&store).is_empty(), "after batch {i}");
        }
    }

    #[test]
    fn seeded_corruption_trips_the_segment_auditors() {
        let g = paper_example_graph();
        let clean = CompressedPathStore::build(&g, 2);
        let fat = clean
            .blocks
            .iter()
            .max_by_key(|(_, b)| b.segments.len())
            .map(|(p, _)| p.clone())
            .unwrap();

        // A fence that excludes sources the segment actually holds: bound
        // probes would silently skip them.
        let mut store = clean.clone();
        let block = store.blocks.get(&fat).unwrap();
        let segments = block
            .segments
            .iter()
            .map(|s| Segment {
                bytes: s.bytes.clone(),
                min_src: s.min_src + 1,
                max_src: s.max_src,
            })
            .collect();
        store
            .blocks
            .insert(fat.clone(), Arc::new(Block { segments }));
        assert!(violated(&store).contains(&"segment-fence-tight"));

        // Statistics that disagree with a merged scan.
        let mut store = clean.clone();
        store.per_path_counts[0].1 += 1;
        assert!(violated(&store).contains(&"counts-consistent"));

        // An overlay that should have been compacted away.
        let mut store = clean.clone().with_compaction_threshold(2);
        let overlay = store.overlays.entry(fat.clone()).or_default();
        overlay.insert((u32::MAX - 1, 0), true);
        overlay.insert((u32::MAX - 1, 1), true);
        assert!(violated(&store).contains(&"overlay-bounded"));

        // A pair surviving under a path the statistics no longer list.
        let mut store = clean.clone();
        let dropped = store.per_path_counts.remove(0);
        assert!(dropped.1 > 0, "need a non-empty path to orphan");
        assert!(violated(&store).contains(&"orphan-prefix"));
    }
}
