//! Compressed per-path pair blocks.
//!
//! The paper's companion work (reference \[14\]) investigates the *size* of a
//! from-scratch path index and how far compression can shrink it. This module
//! provides that compressed representation: for every label path `p` of
//! length ≤ k, the sorted pair set `p(G)` is stored as one delta/varint block
//! ([`crate::varint::encode_pairs`]) keyed by the path, instead of one B+tree
//! entry per pair.
//!
//! The trade-off mirrors the one studied there: blocks are far smaller than
//! per-pair keys (each pair repeats the full path prefix in the B+tree), but
//! source-prefix lookups (`I_{G,k}(p, a)`) must decode the block up to `a`
//! instead of seeking directly.

use crate::varint::{encode_pairs, PairDecoder};
use pathix_graph::Graph;
use pathix_graph::{NodeId, SignedLabel};
use pathix_index::backend::{
    check_scan_path, BackendResult, BackendScan, BackendStats, PathIndexBackend,
};
use pathix_index::pathkey::encode_path_prefix;
use pathix_index::{enumerate_paths, paths_k_cardinality, KPathIndex};
use std::collections::BTreeMap;

/// Size accounting of a [`CompressedPathStore`] compared against the
/// uncompressed per-entry B+tree representation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CompressionStats {
    /// Number of distinct label paths stored.
    pub paths: usize,
    /// Total number of `(source, target)` pairs across all paths.
    pub pairs: u64,
    /// Bytes of compressed block payload (excluding the path keys).
    pub compressed_bytes: u64,
    /// Bytes the same data occupies as one B+tree entry per pair
    /// (`⟨path, source, target⟩` keys with empty values).
    pub uncompressed_bytes: u64,
}

impl CompressionStats {
    /// Compression ratio `uncompressed / compressed` (1.0 when empty).
    pub fn ratio(&self) -> f64 {
        if self.compressed_bytes == 0 {
            1.0
        } else {
            self.uncompressed_bytes as f64 / self.compressed_bytes as f64
        }
    }
}

/// A compressed, path-keyed store of the pair sets `p(G)` for `|p| ≤ k`.
#[derive(Debug, Clone)]
pub struct CompressedPathStore {
    k: usize,
    node_count: usize,
    per_path_counts: Vec<(Vec<SignedLabel>, u64)>,
    paths_k_size: u64,
    blocks: BTreeMap<Vec<u8>, Block>,
}

#[derive(Debug, Clone)]
struct Block {
    bytes: Vec<u8>,
    pairs: u64,
}

impl CompressedPathStore {
    /// Builds the store for every label path of length ≤ k over `graph`.
    pub fn build(graph: &Graph, k: usize) -> Self {
        let relations = enumerate_paths(graph, k);
        let paths_k_size = paths_k_cardinality(graph, &relations);
        let mut per_path_counts = Vec::with_capacity(relations.len());
        let mut blocks = BTreeMap::new();
        for rel in &relations {
            let mut pairs: Vec<(u32, u32)> = rel.pairs.iter().map(|(s, t)| (s.0, t.0)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            per_path_counts.push((rel.path.clone(), pairs.len() as u64));
            blocks.insert(
                encode_path_prefix(&rel.path),
                Block {
                    bytes: encode_pairs(&pairs),
                    pairs: pairs.len() as u64,
                },
            );
        }
        CompressedPathStore {
            k,
            node_count: graph.node_count(),
            per_path_counts,
            paths_k_size,
            blocks,
        }
    }

    /// Builds the store from an already-constructed [`KPathIndex`] (avoids
    /// re-enumerating paths when both representations are wanted).
    pub fn from_index(index: &KPathIndex) -> Self {
        let mut per_path_counts = Vec::with_capacity(index.per_path_counts().len());
        let mut blocks = BTreeMap::new();
        for (path, _) in index.per_path_counts() {
            let mut pairs: Vec<(u32, u32)> =
                index.scan_path(path).map(|(s, t)| (s.0, t.0)).collect();
            pairs.sort_unstable();
            pairs.dedup();
            per_path_counts.push((path.clone(), pairs.len() as u64));
            blocks.insert(
                encode_path_prefix(path),
                Block {
                    bytes: encode_pairs(&pairs),
                    pairs: pairs.len() as u64,
                },
            );
        }
        CompressedPathStore {
            k: index.k(),
            node_count: index.node_count(),
            per_path_counts,
            paths_k_size: index.paths_k_size(),
            blocks,
        }
    }

    /// Number of nodes of the indexed graph.
    pub fn node_count(&self) -> usize {
        self.node_count
    }

    /// The locality parameter the store was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of distinct label paths stored.
    pub fn path_count(&self) -> usize {
        self.blocks.len()
    }

    /// Decodes and returns `p(G)` in `(source, target)` order, or an empty
    /// vector when the path is not stored (unknown label or `|p| > k`).
    pub fn pairs(&self, path: &[SignedLabel]) -> Vec<(NodeId, NodeId)> {
        self.scan_path(path)
            .map(|(s, t)| (NodeId(s), NodeId(t)))
            .collect()
    }

    /// Streaming scan of `p(G)` as raw `u32` pairs in `(source, target)`
    /// order (empty when the path is not stored).
    pub fn scan_path(&self, path: &[SignedLabel]) -> PairDecoder<'_> {
        static EMPTY: &[u8] = &[0];
        let key = encode_path_prefix(path);
        match self.blocks.get(&key) {
            Some(block) => PairDecoder::new(&block.bytes),
            None => PairDecoder::new(EMPTY),
        }
    }

    /// Targets reachable from `source` via `path`, decoded from the block.
    pub fn targets_from(&self, path: &[SignedLabel], source: NodeId) -> Vec<NodeId> {
        self.scan_path(path)
            .filter(|&(s, _)| s == source.0)
            .map(|(_, t)| NodeId(t))
            .collect()
    }

    /// Membership test for `(source, target) ∈ p(G)`.
    pub fn contains(&self, path: &[SignedLabel], source: NodeId, target: NodeId) -> bool {
        self.scan_path(path)
            .any(|(s, t)| s == source.0 && t == target.0)
    }

    /// Number of pairs stored for `path`, if it is stored.
    pub fn path_cardinality(&self, path: &[SignedLabel]) -> Option<u64> {
        self.blocks.get(&encode_path_prefix(path)).map(|b| b.pairs)
    }

    /// Size accounting versus the per-entry B+tree layout.
    pub fn stats(&self) -> CompressionStats {
        let mut pairs = 0u64;
        let mut compressed = 0u64;
        let mut uncompressed = 0u64;
        for (key, block) in &self.blocks {
            pairs += block.pairs;
            compressed += block.bytes.len() as u64 + key.len() as u64;
            // One B+tree entry per pair: the full composite key (path prefix
            // plus 8 bytes of node ids) with an empty value.
            uncompressed += block.pairs * (key.len() as u64 + 8);
        }
        CompressionStats {
            paths: self.blocks.len(),
            pairs,
            compressed_bytes: compressed,
            uncompressed_bytes: uncompressed,
        }
    }
}

impl PathIndexBackend for CompressedPathStore {
    fn backend_name(&self) -> &'static str {
        "compressed"
    }

    fn k(&self) -> usize {
        self.k
    }

    fn node_count(&self) -> usize {
        self.node_count
    }

    fn scan_path(&self, path: &[SignedLabel]) -> BackendResult<BackendScan<'_>> {
        check_scan_path(self.backend_name(), self.k, path)?;
        Ok(Box::new(
            CompressedPathStore::scan_path(self, path).map(|(s, t)| Ok((NodeId(s), NodeId(t)))),
        ))
    }

    fn scan_path_from(&self, path: &[SignedLabel], source: NodeId) -> BackendResult<Vec<NodeId>> {
        check_scan_path(self.backend_name(), self.k, path)?;
        Ok(self.targets_from(path, source))
    }

    fn contains(
        &self,
        path: &[SignedLabel],
        source: NodeId,
        target: NodeId,
    ) -> BackendResult<bool> {
        Ok(CompressedPathStore::contains(self, path, source, target))
    }

    fn path_cardinality(&self, path: &[SignedLabel]) -> Option<u64> {
        CompressedPathStore::path_cardinality(self, path)
    }

    fn per_path_counts(&self) -> &[(Vec<SignedLabel>, u64)] {
        &self.per_path_counts
    }

    fn paths_k_size(&self) -> u64 {
        self.paths_k_size
    }

    fn stats(&self) -> BackendStats {
        let s = CompressedPathStore::stats(self);
        BackendStats {
            backend: self.backend_name(),
            k: self.k,
            entries: s.pairs,
            distinct_paths: s.paths,
            paths_k_size: self.paths_k_size,
            approx_bytes: s.compressed_bytes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::SignedLabel;

    fn knows(g: &Graph) -> SignedLabel {
        SignedLabel::forward(g.label_id("knows").unwrap())
    }

    #[test]
    fn matches_the_uncompressed_index_on_the_paper_example() {
        let g = paper_example_graph();
        let k = 3;
        let index = KPathIndex::build(&g, k);
        let store = CompressedPathStore::build(&g, k);
        assert_eq!(store.k(), k);
        assert_eq!(store.path_count(), index.per_path_counts().len());
        for (path, count) in index.per_path_counts() {
            let from_index: Vec<_> = index.scan_path(path).collect();
            let from_store = store.pairs(path);
            assert_eq!(from_index, from_store, "path {path:?}");
            assert_eq!(store.path_cardinality(path), Some(*count));
        }
    }

    #[test]
    fn from_index_equals_build() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let a = CompressedPathStore::build(&g, 2);
        let b = CompressedPathStore::from_index(&index);
        assert_eq!(a.path_count(), b.path_count());
        for (path, _) in index.per_path_counts() {
            assert_eq!(a.pairs(path), b.pairs(path));
        }
    }

    #[test]
    fn lookup_shapes_match_example_31_semantics() {
        let g = paper_example_graph();
        let store = CompressedPathStore::build(&g, 2);
        let kn = knows(&g);
        let path = [kn, kn];
        let all = store.pairs(&path);
        assert!(!all.is_empty());
        let (src, dst) = all[0];
        assert!(store.targets_from(&path, src).contains(&dst));
        assert!(store.contains(&path, src, dst));
        // A node pair that is definitely absent.
        assert!(!store.contains(&path, NodeId(u32::MAX - 1), NodeId(0)));
    }

    #[test]
    fn unknown_paths_scan_empty() {
        let g = paper_example_graph();
        let store = CompressedPathStore::build(&g, 1);
        let kn = knows(&g);
        // Length 2 > k = 1 is not stored.
        assert!(store.pairs(&[kn, kn]).is_empty());
        assert_eq!(store.path_cardinality(&[kn, kn]), None);
    }

    #[test]
    fn compression_beats_the_per_entry_layout() {
        let g = paper_example_graph();
        let store = CompressedPathStore::build(&g, 3);
        let stats = store.stats();
        assert!(stats.pairs > 0);
        assert!(
            stats.compressed_bytes < stats.uncompressed_bytes,
            "compressed {} !< uncompressed {}",
            stats.compressed_bytes,
            stats.uncompressed_bytes
        );
        assert!(stats.ratio() > 1.0);
    }
}
