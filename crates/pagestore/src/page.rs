//! Fixed-size pages and page identifiers.
//!
//! The disk-oriented storage layer moves data in fixed-size pages of
//! [`PAGE_SIZE`] bytes, the classic unit of transfer between a database
//! buffer pool and secondary storage. Pages are identified by a dense
//! [`PageId`]; page 0 is reserved for the B+tree metadata page.

/// Size of every page in bytes.
///
/// 4 KiB matches the common OS/filesystem page size and the PostgreSQL-style
/// setting the paper's prototype runs on (PostgreSQL uses 8 KiB heap pages;
/// 4 KiB keeps the test fixtures small while exercising identical logic).
pub const PAGE_SIZE: usize = 4096;

/// Identifier of a page within a [`crate::DiskManager`] file.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

impl PageId {
    /// Sentinel meaning "no page" (used e.g. for the last leaf's next link).
    pub const INVALID: PageId = PageId(u32::MAX);

    /// `true` if this is the [`PageId::INVALID`] sentinel.
    pub fn is_valid(self) -> bool {
        self != Self::INVALID
    }

    /// Byte offset of this page inside the backing file.
    pub fn offset(self) -> u64 {
        self.0 as u64 * PAGE_SIZE as u64
    }
}

impl std::fmt::Display for PageId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "page#{}", self.0)
    }
}

/// An owned, heap-allocated page buffer of exactly [`PAGE_SIZE`] bytes.
#[derive(Clone)]
pub struct PageBuf {
    data: Box<[u8]>,
}

impl Default for PageBuf {
    fn default() -> Self {
        Self::zeroed()
    }
}

impl std::fmt::Debug for PageBuf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "PageBuf({} bytes)", self.data.len())
    }
}

impl PageBuf {
    /// Allocates a zero-filled page.
    pub fn zeroed() -> Self {
        PageBuf {
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
        }
    }

    /// Immutable access to the raw bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// Mutable access to the raw bytes.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.data
    }
}

/// Reads a little-endian `u16` at `offset` from a page slice.
pub fn get_u16(page: &[u8], offset: usize) -> u16 {
    u16::from_le_bytes([page[offset], page[offset + 1]])
}

/// Writes a little-endian `u16` at `offset` into a page slice.
pub fn put_u16(page: &mut [u8], offset: usize, value: u16) {
    page[offset..offset + 2].copy_from_slice(&value.to_le_bytes());
}

/// Reads a little-endian `u32` at `offset` from a page slice.
pub fn get_u32(page: &[u8], offset: usize) -> u32 {
    u32::from_le_bytes([
        page[offset],
        page[offset + 1],
        page[offset + 2],
        page[offset + 3],
    ])
}

/// Writes a little-endian `u32` at `offset` into a page slice.
pub fn put_u32(page: &mut [u8], offset: usize, value: u32) {
    page[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
}

/// Reads a little-endian `u64` at `offset` from a page slice.
pub fn get_u64(page: &[u8], offset: usize) -> u64 {
    let mut b = [0u8; 8];
    b.copy_from_slice(&page[offset..offset + 8]);
    u64::from_le_bytes(b)
}

/// Writes a little-endian `u64` at `offset` into a page slice.
pub fn put_u64(page: &mut [u8], offset: usize, value: u64) {
    page[offset..offset + 8].copy_from_slice(&value.to_le_bytes());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_id_offsets_and_validity() {
        assert_eq!(PageId(0).offset(), 0);
        assert_eq!(PageId(3).offset(), 3 * PAGE_SIZE as u64);
        assert!(PageId(7).is_valid());
        assert!(!PageId::INVALID.is_valid());
        assert_eq!(format!("{}", PageId(5)), "page#5");
    }

    #[test]
    fn page_buf_is_zeroed_and_sized() {
        let p = PageBuf::zeroed();
        assert_eq!(p.as_slice().len(), PAGE_SIZE);
        assert!(p.as_slice().iter().all(|&b| b == 0));
    }

    #[test]
    fn scalar_round_trips() {
        let mut p = PageBuf::zeroed();
        let s = p.as_mut_slice();
        put_u16(s, 0, 0xABCD);
        put_u32(s, 2, 0xDEADBEEF);
        put_u64(s, 6, u64::MAX - 7);
        assert_eq!(get_u16(s, 0), 0xABCD);
        assert_eq!(get_u32(s, 2), 0xDEADBEEF);
        assert_eq!(get_u64(s, 6), u64::MAX - 7);
    }

    #[test]
    fn scalars_do_not_clobber_neighbours() {
        let mut p = PageBuf::zeroed();
        let s = p.as_mut_slice();
        put_u32(s, 8, 1);
        put_u32(s, 12, 2);
        put_u32(s, 16, 3);
        put_u32(s, 12, 0xFFFF_FFFF);
        assert_eq!(get_u32(s, 8), 1);
        assert_eq!(get_u32(s, 16), 3);
    }
}
