//! Buffer pool: a fixed set of in-memory frames caching disk pages.
//!
//! Every page access made by the paged B+tree goes through
//! [`BufferPool::with_page`] / [`BufferPool::with_page_mut`]. The pool keeps
//! at most `capacity` pages resident, evicting with the **clock** (second
//! chance) policy, writes back dirty pages on eviction and on
//! [`BufferPool::flush_all`], and counts hits, misses and evictions so the
//! benchmark harness can report the I/O behaviour of cold vs. warm index
//! scans.
//!
//! The pool is internally synchronized with a [`std::sync::Mutex`], so a
//! shared reference can be used from several threads (the parallel query
//! executor scans disjuncts concurrently).

use crate::disk::{DiskManager, DiskStats};
use crate::page::{PageId, PAGE_SIZE};
use std::collections::HashMap;
use std::io;
use std::sync::{Arc, Mutex};

/// Cache-behaviour counters of a [`BufferPool`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from a resident frame.
    pub hits: u64,
    /// Page requests that required a disk read.
    pub misses: u64,
    /// Frames written back and reused for another page.
    pub evictions: u64,
    /// Dirty pages written back to disk (on eviction or flush).
    pub write_backs: u64,
    /// Pages loaded speculatively by [`BufferPool::prefetch`] before any
    /// request touched them (not counted as hits or misses).
    pub read_ahead_pages: u64,
}

#[derive(Debug)]
struct Frame {
    page: Option<PageId>,
    data: Box<[u8]>,
    dirty: bool,
    referenced: bool,
}

impl Frame {
    fn empty() -> Self {
        Frame {
            page: None,
            data: vec![0u8; PAGE_SIZE].into_boxed_slice(),
            dirty: false,
            referenced: false,
        }
    }
}

#[derive(Debug)]
struct PoolInner {
    disk: DiskManager,
    frames: Vec<Frame>,
    /// Maps a resident page id to its frame index.
    table: HashMap<u32, usize>,
    clock_hand: usize,
    stats: PoolStats,
}

/// A clock-eviction buffer pool over a [`DiskManager`].
///
/// Cloning is cheap: clones share the frames, the page table and the backing
/// store (the pool is a handle to one `Arc`'d interior). This is what lets a
/// mutable paged index and the read snapshots published from it serve the
/// same pages.
#[derive(Debug, Clone)]
pub struct BufferPool {
    inner: Arc<Mutex<PoolInner>>,
}

impl BufferPool {
    /// Locks the pool, recovering the guard if a panicking thread poisoned
    /// the mutex (the pool's state is a cache and stays structurally valid).
    fn locked(&self) -> std::sync::MutexGuard<'_, PoolInner> {
        self.inner
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Creates a pool with room for `capacity` resident pages (minimum 2:
    /// the B+tree meta page plus one data page).
    pub fn new(disk: DiskManager, capacity: usize) -> Self {
        let capacity = capacity.max(2);
        BufferPool {
            inner: Arc::new(Mutex::new(PoolInner {
                disk,
                frames: (0..capacity).map(|_| Frame::empty()).collect(),
                table: HashMap::with_capacity(capacity),
                clock_hand: 0,
                stats: PoolStats::default(),
            })),
        }
    }

    /// Convenience constructor: in-memory disk, `capacity` frames.
    pub fn in_memory(capacity: usize) -> Self {
        Self::new(DiskManager::in_memory(), capacity)
    }

    /// Number of frames in the pool.
    pub fn capacity(&self) -> usize {
        self.locked().frames.len()
    }

    /// Number of pages allocated on the underlying disk.
    pub fn num_pages(&self) -> u32 {
        self.locked().disk.num_pages()
    }

    /// Size of the backing store in bytes.
    pub fn size_bytes(&self) -> u64 {
        self.locked().disk.size_bytes()
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> PoolStats {
        self.locked().stats
    }

    /// Physical I/O statistics of the underlying disk manager.
    pub fn disk_stats(&self) -> DiskStats {
        self.locked().disk.stats()
    }

    /// Resets the hit/miss/eviction counters (the disk counters are kept).
    pub fn reset_stats(&self) {
        self.locked().stats = PoolStats::default();
    }

    /// Allocates a fresh page on disk and caches it (zero-filled, dirty).
    pub fn allocate_page(&self) -> io::Result<PageId> {
        let mut inner = self.locked();
        let pid = inner.disk.allocate()?;
        let frame_idx = inner.acquire_frame(pid)?;
        let frame = &mut inner.frames[frame_idx];
        frame.data.fill(0);
        frame.dirty = true;
        frame.referenced = true;
        Ok(pid)
    }

    /// Runs `f` over an immutable view of page `pid`.
    pub fn with_page<R>(&self, pid: PageId, f: impl FnOnce(&[u8]) -> R) -> io::Result<R> {
        let mut inner = self.locked();
        let frame_idx = inner.load_frame(pid)?;
        let frame = &mut inner.frames[frame_idx];
        frame.referenced = true;
        Ok(f(&frame.data))
    }

    /// Runs `f` over a mutable view of page `pid` and marks the page dirty.
    pub fn with_page_mut<R>(&self, pid: PageId, f: impl FnOnce(&mut [u8]) -> R) -> io::Result<R> {
        let mut inner = self.locked();
        let frame_idx = inner.load_frame(pid)?;
        let frame = &mut inner.frames[frame_idx];
        frame.referenced = true;
        frame.dirty = true;
        Ok(f(&mut frame.data))
    }

    /// Best-effort read-ahead: loads the given pages into frames so an
    /// imminent sequential scan finds them resident.
    ///
    /// Already-resident pages are left untouched (their reference bits are
    /// not set, so prefetching never delays their eviction). At most
    /// `capacity - 2` pages are prefetched per call so speculative loads
    /// cannot sweep the working set out of a small pool. Read errors are
    /// swallowed — the demand read will surface them — and the affected
    /// mapping is uninstalled so no frame caches garbage.
    pub fn prefetch(&self, pids: &[PageId]) {
        let mut inner = self.locked();
        let budget = inner.frames.len().saturating_sub(2);
        for &pid in pids.iter().take(budget) {
            if inner.table.contains_key(&pid.0) {
                continue;
            }
            let Ok(idx) = inner.acquire_frame(pid) else {
                continue;
            };
            let mut data = std::mem::take(&mut inner.frames[idx].data);
            let res = inner.disk.read_page(pid, &mut data);
            inner.frames[idx].data = data;
            if res.is_ok() {
                inner.stats.read_ahead_pages += 1;
            } else {
                // Leave no mapping to uninitialized frame contents.
                inner.frames[idx].page = None;
                inner.table.remove(&pid.0);
            }
        }
    }

    /// Writes every dirty resident page back to disk and syncs the file.
    pub fn flush_all(&self) -> io::Result<()> {
        let mut inner = self.locked();
        for idx in 0..inner.frames.len() {
            inner.write_back(idx)?;
        }
        inner.disk.sync()
    }
}

impl PoolInner {
    /// Ensures `pid` is resident, reading it from disk if needed, and returns
    /// its frame index.
    fn load_frame(&mut self, pid: PageId) -> io::Result<usize> {
        if let Some(&idx) = self.table.get(&pid.0) {
            self.stats.hits += 1;
            return Ok(idx);
        }
        self.stats.misses += 1;
        let idx = self.acquire_frame(pid)?;
        let frame = &mut self.frames[idx];
        self.disk.read_page(pid, &mut frame.data)?;
        Ok(idx)
    }

    /// Finds a frame for `pid` (evicting if necessary) and installs the
    /// mapping. The frame's *contents* are left to the caller.
    fn acquire_frame(&mut self, pid: PageId) -> io::Result<usize> {
        if let Some(&idx) = self.table.get(&pid.0) {
            return Ok(idx);
        }
        // Prefer an empty frame.
        if let Some(idx) = self.frames.iter().position(|f| f.page.is_none()) {
            self.install(idx, pid);
            return Ok(idx);
        }
        // Clock sweep: skip recently-referenced frames once, evict the first
        // frame whose reference bit is already clear.
        let n = self.frames.len();
        let victim = loop {
            let idx = self.clock_hand;
            self.clock_hand = (self.clock_hand + 1) % n;
            if self.frames[idx].referenced {
                self.frames[idx].referenced = false;
            } else {
                break idx;
            }
        };
        self.write_back(victim)?;
        self.stats.evictions += 1;
        if let Some(old) = self.frames[victim].page {
            self.table.remove(&old.0);
        }
        self.install(victim, pid);
        Ok(victim)
    }

    fn install(&mut self, idx: usize, pid: PageId) {
        self.frames[idx].page = Some(pid);
        self.frames[idx].dirty = false;
        self.frames[idx].referenced = false;
        self.table.insert(pid.0, idx);
    }

    /// Writes frame `idx` back to disk if it is dirty.
    fn write_back(&mut self, idx: usize) -> io::Result<()> {
        if self.frames[idx].dirty {
            if let Some(pid) = self.frames[idx].page {
                self.stats.write_backs += 1;
                let data = std::mem::take(&mut self.frames[idx].data);
                let res = self.disk.write_page(pid, &data);
                self.frames[idx].data = data;
                res?;
                self.frames[idx].dirty = false;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::{get_u32, put_u32};

    #[test]
    fn pages_survive_eviction_pressure() {
        // 3 frames, 16 pages: every page gets its id written at offset 0 and
        // must read back correctly despite constant eviction.
        let pool = BufferPool::in_memory(3);
        let mut pids = Vec::new();
        for i in 0..16u32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| put_u32(p, 0, i * 7 + 1))
                .unwrap();
            pids.push(pid);
        }
        for (i, pid) in pids.iter().enumerate() {
            let v = pool.with_page(*pid, |p| get_u32(p, 0)).unwrap();
            assert_eq!(v, i as u32 * 7 + 1, "page {pid}");
        }
        let stats = pool.stats();
        assert!(stats.evictions > 0, "expected evictions with 3 frames");
        assert!(stats.write_backs > 0);
        assert!(stats.misses > 0);
    }

    #[test]
    fn repeated_access_hits_the_cache() {
        let pool = BufferPool::in_memory(4);
        let pid = pool.allocate_page().unwrap();
        pool.with_page_mut(pid, |p| put_u32(p, 8, 99)).unwrap();
        pool.reset_stats();
        for _ in 0..10 {
            let v = pool.with_page(pid, |p| get_u32(p, 8)).unwrap();
            assert_eq!(v, 99);
        }
        let stats = pool.stats();
        assert_eq!(stats.hits, 10);
        assert_eq!(stats.misses, 0);
        assert_eq!(stats.evictions, 0);
    }

    #[test]
    fn prefetch_loads_evicted_pages_back_without_demand_traffic() {
        let pool = BufferPool::in_memory(8);
        let mut pids = Vec::new();
        for i in 0..20u32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| put_u32(p, 0, i + 1)).unwrap();
            pids.push(pid);
        }
        // The earliest pages have been swept out by now.
        pool.reset_stats();
        pool.prefetch(&pids[0..4]);
        let stats = pool.stats();
        assert_eq!(stats.read_ahead_pages, 4);
        assert_eq!(stats.misses, 0, "prefetch must not count as demand misses");
        assert_eq!(stats.hits, 0);
        for (i, pid) in pids[0..4].iter().enumerate() {
            let v = pool.with_page(*pid, |p| get_u32(p, 0)).unwrap();
            assert_eq!(v, i as u32 + 1);
        }
        assert_eq!(pool.stats().hits, 4, "prefetched pages must be resident");
        // Prefetching resident pages is a no-op.
        pool.prefetch(&pids[0..4]);
        assert_eq!(pool.stats().read_ahead_pages, 4);
    }

    #[test]
    fn flush_all_persists_dirty_pages_to_disk() {
        let dir = std::env::temp_dir().join(format!("pathix-pool-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flush.pages");
        {
            let pool = BufferPool::new(DiskManager::create(&path).unwrap(), 4);
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| put_u32(p, 100, 0xC0FFEE))
                .unwrap();
            pool.flush_all().unwrap();
        }
        {
            let pool = BufferPool::new(DiskManager::open(&path).unwrap(), 4);
            let v = pool.with_page(PageId(0), |p| get_u32(p, 100)).unwrap();
            assert_eq!(v, 0xC0FFEE);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn minimum_capacity_is_enforced() {
        let pool = BufferPool::in_memory(0);
        assert_eq!(pool.capacity(), 2);
        let a = pool.allocate_page().unwrap();
        let b = pool.allocate_page().unwrap();
        let c = pool.allocate_page().unwrap();
        pool.with_page_mut(a, |p| put_u32(p, 0, 1)).unwrap();
        pool.with_page_mut(b, |p| put_u32(p, 0, 2)).unwrap();
        pool.with_page_mut(c, |p| put_u32(p, 0, 3)).unwrap();
        assert_eq!(pool.with_page(a, |p| get_u32(p, 0)).unwrap(), 1);
        assert_eq!(pool.with_page(b, |p| get_u32(p, 0)).unwrap(), 2);
        assert_eq!(pool.with_page(c, |p| get_u32(p, 0)).unwrap(), 3);
    }

    #[test]
    fn shared_across_threads() {
        use std::sync::Arc;
        let pool = Arc::new(BufferPool::in_memory(8));
        let mut pids = Vec::new();
        for i in 0..8u32 {
            let pid = pool.allocate_page().unwrap();
            pool.with_page_mut(pid, |p| put_u32(p, 0, i)).unwrap();
            pids.push(pid);
        }
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let pids = pids.clone();
                std::thread::spawn(move || {
                    for (i, pid) in pids.iter().enumerate() {
                        let v = pool.with_page(*pid, |p| get_u32(p, 0)).unwrap();
                        assert_eq!(v, i as u32);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }
}
