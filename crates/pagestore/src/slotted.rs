//! Slotted page layout for variable-length cells.
//!
//! Every B+tree node page uses the classic slotted layout: a fixed header,
//! a slot directory growing forward from the header, and cell contents
//! growing backward from the end of the page.
//!
//! ```text
//! 0        2        4          6        8        12
//! ┌────────┬────────┬──────────┬────────┬────────┬──────────────┬───···───┐
//! │ kind   │ count  │ free_end │ (pad)  │ next   │ slot dir ... │  cells  │
//! └────────┴────────┴──────────┴────────┴────────┴──────────────┴───···───┘
//!            u16      u16                 u32      4 bytes/slot   ← grows
//! ```
//!
//! * `kind` distinguishes meta / leaf / internal pages;
//! * `count` is the number of live slots;
//! * `free_end` is the lowest byte offset used by cell contents;
//! * `next` is the next-leaf page for leaves and the leftmost child for
//!   internal nodes.
//!
//! Cells are opaque byte strings to this module; the B+tree layer encodes
//! keys, values and child pointers inside them.

use crate::page::{get_u16, get_u32, put_u16, put_u32, PAGE_SIZE};

/// Byte offset where the slot directory begins.
pub const HEADER_SIZE: usize = 12;
/// Bytes per slot directory entry (`u16` offset + `u16` length).
pub const SLOT_SIZE: usize = 4;

/// Page kind: unused / zeroed page.
pub const KIND_FREE: u16 = 0;
/// Page kind: B+tree leaf node.
pub const KIND_LEAF: u16 = 1;
/// Page kind: B+tree internal node.
pub const KIND_INTERNAL: u16 = 2;
/// Page kind: B+tree metadata page.
pub const KIND_META: u16 = 3;

const OFF_KIND: usize = 0;
const OFF_COUNT: usize = 2;
const OFF_FREE_END: usize = 4;
const OFF_NEXT: usize = 8;

/// Initializes `page` as an empty slotted page of the given kind.
pub fn init(page: &mut [u8], kind: u16) {
    page.fill(0);
    put_u16(page, OFF_KIND, kind);
    put_u16(page, OFF_COUNT, 0);
    put_u16(page, OFF_FREE_END, PAGE_SIZE as u16);
    put_u32(page, OFF_NEXT, u32::MAX);
}

/// The page kind written by [`init`].
pub fn kind(page: &[u8]) -> u16 {
    get_u16(page, OFF_KIND)
}

/// Number of live cells.
pub fn cell_count(page: &[u8]) -> usize {
    get_u16(page, OFF_COUNT) as usize
}

/// The `next` pointer (next leaf / leftmost child), `u32::MAX` when unset.
pub fn next(page: &[u8]) -> u32 {
    get_u32(page, OFF_NEXT)
}

/// Sets the `next` pointer.
pub fn set_next(page: &mut [u8], next: u32) {
    put_u32(page, OFF_NEXT, next);
}

fn free_end(page: &[u8]) -> usize {
    let fe = get_u16(page, OFF_FREE_END) as usize;
    if fe == 0 {
        PAGE_SIZE
    } else {
        fe
    }
}

/// Bytes available for one more cell (content plus its slot entry).
pub fn free_space(page: &[u8]) -> usize {
    let dir_end = HEADER_SIZE + cell_count(page) * SLOT_SIZE;
    free_end(page).saturating_sub(dir_end)
}

/// `true` when a cell of `len` bytes still fits.
pub fn can_insert(page: &[u8], len: usize) -> bool {
    free_space(page) >= len + SLOT_SIZE
}

/// Bytes of cell payload a freshly initialized page can hold, assuming
/// `cells` cells (useful for computing node fan-out bounds).
pub fn payload_capacity(cells: usize) -> usize {
    PAGE_SIZE - HEADER_SIZE - cells * SLOT_SIZE
}

/// Returns the cell at `idx`.
///
/// # Panics
/// Panics if `idx` is out of bounds or the slot is corrupt.
pub fn cell(page: &[u8], idx: usize) -> &[u8] {
    assert!(idx < cell_count(page), "cell index {idx} out of bounds");
    let slot = HEADER_SIZE + idx * SLOT_SIZE;
    let off = get_u16(page, slot) as usize;
    let len = get_u16(page, slot + 2) as usize;
    &page[off..off + len]
}

/// Appends a cell at the end of the slot directory.
///
/// Returns `false` (leaving the page untouched) when it does not fit.
pub fn push_cell(page: &mut [u8], bytes: &[u8]) -> bool {
    insert_cell_at(page, cell_count(page), bytes)
}

/// Inserts a cell so that it becomes slot `idx`, shifting later slots right.
///
/// Returns `false` (leaving the page untouched) when it does not fit.
pub fn insert_cell_at(page: &mut [u8], idx: usize, bytes: &[u8]) -> bool {
    let count = cell_count(page);
    assert!(idx <= count, "slot index {idx} out of bounds for insert");
    if !can_insert(page, bytes.len()) {
        return false;
    }
    // Write the cell content just below the current free end.
    let new_end = free_end(page) - bytes.len();
    page[new_end..new_end + bytes.len()].copy_from_slice(bytes);
    // Shift the slot directory entries after idx one slot to the right.
    let dir_start = HEADER_SIZE + idx * SLOT_SIZE;
    let dir_end = HEADER_SIZE + count * SLOT_SIZE;
    page.copy_within(dir_start..dir_end, dir_start + SLOT_SIZE);
    put_u16(page, dir_start, new_end as u16);
    put_u16(page, dir_start + 2, bytes.len() as u16);
    put_u16(page, OFF_COUNT, (count + 1) as u16);
    put_u16(page, OFF_FREE_END, new_end as u16);
    true
}

/// Removes slot `idx`, shifting later slots left.
///
/// The cell's content bytes are *not* reclaimed until the page is rewritten
/// (the B+tree rewrites nodes wholesale on structural changes), so
/// [`free_space`] does not grow.
pub fn remove_cell(page: &mut [u8], idx: usize) {
    let count = cell_count(page);
    assert!(idx < count, "slot index {idx} out of bounds for remove");
    let dir_start = HEADER_SIZE + idx * SLOT_SIZE;
    let dir_end = HEADER_SIZE + count * SLOT_SIZE;
    page.copy_within(dir_start + SLOT_SIZE..dir_end, dir_start);
    put_u16(page, OFF_COUNT, (count - 1) as u16);
}

/// Reads every cell into owned byte vectors, in slot order.
pub fn read_cells(page: &[u8]) -> Vec<Vec<u8>> {
    (0..cell_count(page))
        .map(|i| cell(page, i).to_vec())
        .collect()
}

/// Re-initializes the page (same kind, preserved `next`) and writes `cells`
/// in order, compacting all free space.
///
/// # Panics
/// Panics if the cells collectively do not fit — callers must split first.
pub fn rewrite(page: &mut [u8], kind_value: u16, next_value: u32, cells: &[Vec<u8>]) {
    init(page, kind_value);
    set_next(page, next_value);
    for c in cells {
        assert!(
            push_cell(page, c),
            "rewrite overflow: {} cells / {} bytes do not fit in one page",
            cells.len(),
            cells.iter().map(Vec::len).sum::<usize>()
        );
    }
}

/// Total bytes a set of cells needs inside one page (contents + slots +
/// header); used by the B+tree to decide when to split.
pub fn required_size(cell_lens: impl IntoIterator<Item = usize>) -> usize {
    let mut total = HEADER_SIZE;
    for len in cell_lens {
        total += len + SLOT_SIZE;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::page::PageBuf;

    #[test]
    fn init_and_header_round_trip() {
        let mut p = PageBuf::zeroed();
        init(p.as_mut_slice(), KIND_LEAF);
        assert_eq!(kind(p.as_slice()), KIND_LEAF);
        assert_eq!(cell_count(p.as_slice()), 0);
        assert_eq!(next(p.as_slice()), u32::MAX);
        set_next(p.as_mut_slice(), 17);
        assert_eq!(next(p.as_slice()), 17);
        assert_eq!(free_space(p.as_slice()), PAGE_SIZE - HEADER_SIZE);
    }

    #[test]
    fn push_and_read_cells() {
        let mut p = PageBuf::zeroed();
        init(p.as_mut_slice(), KIND_LEAF);
        assert!(push_cell(p.as_mut_slice(), b"alpha"));
        assert!(push_cell(p.as_mut_slice(), b"b"));
        assert!(push_cell(p.as_mut_slice(), b"charlie"));
        assert_eq!(cell_count(p.as_slice()), 3);
        assert_eq!(cell(p.as_slice(), 0), b"alpha");
        assert_eq!(cell(p.as_slice(), 1), b"b");
        assert_eq!(cell(p.as_slice(), 2), b"charlie");
        assert_eq!(
            read_cells(p.as_slice()),
            vec![b"alpha".to_vec(), b"b".to_vec(), b"charlie".to_vec()]
        );
    }

    #[test]
    fn insert_at_keeps_order_and_remove_shifts() {
        let mut p = PageBuf::zeroed();
        init(p.as_mut_slice(), KIND_INTERNAL);
        assert!(push_cell(p.as_mut_slice(), b"b"));
        assert!(push_cell(p.as_mut_slice(), b"d"));
        assert!(insert_cell_at(p.as_mut_slice(), 1, b"c"));
        assert!(insert_cell_at(p.as_mut_slice(), 0, b"a"));
        let cells = read_cells(p.as_slice());
        assert_eq!(
            cells,
            vec![b"a".to_vec(), b"b".to_vec(), b"c".to_vec(), b"d".to_vec()]
        );
        remove_cell(p.as_mut_slice(), 2);
        assert_eq!(
            read_cells(p.as_slice()),
            vec![b"a".to_vec(), b"b".to_vec(), b"d".to_vec()]
        );
    }

    #[test]
    fn page_reports_full_rather_than_overflowing() {
        let mut p = PageBuf::zeroed();
        init(p.as_mut_slice(), KIND_LEAF);
        let cell_bytes = vec![7u8; 100];
        let mut inserted = 0usize;
        while push_cell(p.as_mut_slice(), &cell_bytes) {
            inserted += 1;
        }
        // 100-byte cells + 4-byte slots in a 4 KiB page minus the header.
        let expected = (PAGE_SIZE - HEADER_SIZE) / (100 + SLOT_SIZE);
        assert_eq!(inserted, expected);
        assert!(!can_insert(p.as_slice(), 100));
        // All cells are still intact.
        for i in 0..inserted {
            assert_eq!(cell(p.as_slice(), i), cell_bytes.as_slice());
        }
    }

    #[test]
    fn rewrite_compacts_and_preserves_next() {
        let mut p = PageBuf::zeroed();
        init(p.as_mut_slice(), KIND_LEAF);
        for i in 0..10u8 {
            assert!(push_cell(p.as_mut_slice(), &[i; 64]));
        }
        let before_free = free_space(p.as_slice());
        // Keep only every other cell and compact.
        let keep: Vec<Vec<u8>> = read_cells(p.as_slice()).into_iter().step_by(2).collect();
        rewrite(p.as_mut_slice(), KIND_LEAF, 42, &keep);
        assert_eq!(cell_count(p.as_slice()), 5);
        assert_eq!(next(p.as_slice()), 42);
        assert!(free_space(p.as_slice()) > before_free);
        assert_eq!(cell(p.as_slice(), 0), &[0u8; 64]);
        assert_eq!(cell(p.as_slice(), 4), &[8u8; 64]);
    }

    #[test]
    fn required_size_matches_fill_behaviour() {
        let lens = [100usize; 10];
        let needed = required_size(lens.iter().copied());
        assert_eq!(needed, HEADER_SIZE + 10 * 104);
        assert!(needed < PAGE_SIZE);
    }
}
