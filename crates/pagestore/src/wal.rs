//! The write-ahead log: segmented, CRC-framed group commit ahead of page
//! writeback.
//!
//! One [`CommitRecord`] per applied update batch is appended and
//! `sync_data`'d **before** any page of the batch may reach the page file
//! (including buffer-pool evictions — the caller appends before mutating the
//! paged tree at all). After a crash, [`Wal::replay`] returns every fully
//! committed record in commit order; the opener replays the ones whose
//! effects did not reach the pages (the paged tree's meta page records the
//! highest applied sequence number) or the graph checkpoint.
//!
//! ## Frame format
//!
//! Each record is framed as `[len: u32 LE | crc32: u32 LE | payload]`, where
//! the CRC covers the payload bytes. Replay stops at the first frame that is
//! truncated or fails its CRC — that frame is the torn tail of an append the
//! crash interrupted, and its batch was never acknowledged.
//!
//! ## Segments
//!
//! The log is a directory of append-only segment files
//! (`00000000000000000001.seg`, …): rotation keeps any single file small,
//! and a checkpoint truncates the whole log by deleting every segment and
//! starting a fresh one. Segment numbering never restarts within a log's
//! lifetime, so a half-finished truncation (some segments deleted, then a
//! crash) still replays the surviving records in order.

use crate::fault;
use pathix_graph::EdgeOp;
use pathix_graph::{LabelId, NodeId};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read, Write};
use std::path::{Path, PathBuf};

/// Bytes after which [`Wal::append`] rotates to a fresh segment file.
const SEGMENT_BYTES: u64 = 1 << 19;

/// Sanity bound on one record's payload: a frame announcing more is treated
/// as corruption (replay stops there) and appending one is refused.
const MAX_RECORD_BYTES: usize = 1 << 26;

const SEGMENT_SUFFIX: &str = ".seg";

/// CRC-32 (IEEE 802.3, reflected) over `bytes` — the checksum guarding every
/// WAL frame and the graph checkpoint file.
pub fn crc32(bytes: &[u8]) -> u32 {
    // Nibble-at-a-time table: 16 entries, built in const context so the
    // hot path is two lookups per byte with no runtime initialization.
    const TABLE: [u32; 16] = {
        let mut table = [0u32; 16];
        let mut i = 0;
        while i < 16 {
            let mut crc = i as u32;
            let mut bit = 0;
            while bit < 4 {
                crc = (crc >> 1) ^ if crc & 1 == 1 { 0xEDB8_8320 } else { 0 };
                bit += 1;
            }
            table[i] = crc;
            i += 1;
        }
        table
    };
    let mut crc = !0u32;
    for &byte in bytes {
        crc = (crc >> 4) ^ TABLE[((crc ^ byte as u32) & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (byte >> 4) as u32) & 0xF) as usize];
    }
    !crc
}

/// One committed update batch, exactly as the writer resolved it: the new
/// names it interned (in id order, so replay re-interns identically), the
/// effective edge operations, and the absolute walk-count writes the counting
/// rules produced. Replaying the record is idempotent — counts are absolute,
/// and the graph/tree sides each skip records their checkpoint already
/// covers.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CommitRecord {
    /// Monotonic commit sequence number (1-based; 0 is the bulk build).
    pub seq: u64,
    /// Node names interned by this batch, in ascending id order.
    pub new_nodes: Vec<String>,
    /// Label names interned by this batch, in ascending id order.
    pub new_labels: Vec<String>,
    /// Effective edge operations (no-ops excluded), in application order.
    pub ops: Vec<EdgeOp>,
    /// Absolute walk-count writes `(entry key, new count)` in application
    /// order; a count of 0 removes the key.
    pub counts: Vec<(Vec<u8>, u64)>,
    /// Edges effectively inserted by the batch.
    pub inserted_edges: u64,
    /// Edges effectively deleted by the batch.
    pub deleted_edges: u64,
}

fn put_bytes(out: &mut Vec<u8>, bytes: &[u8]) {
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

fn get_u32_at(bytes: &[u8], pos: &mut usize) -> io::Result<u32> {
    let end = pos.checked_add(4).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(corrupt("record truncated"));
    };
    let mut buf = [0u8; 4];
    buf.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u32::from_le_bytes(buf))
}

fn get_u64_at(bytes: &[u8], pos: &mut usize) -> io::Result<u64> {
    let end = pos.checked_add(8).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(corrupt("record truncated"));
    };
    let mut buf = [0u8; 8];
    buf.copy_from_slice(&bytes[*pos..end]);
    *pos = end;
    Ok(u64::from_le_bytes(buf))
}

fn get_bytes_at(bytes: &[u8], pos: &mut usize) -> io::Result<Vec<u8>> {
    let len = get_u32_at(bytes, pos)? as usize;
    let end = pos.checked_add(len).filter(|&e| e <= bytes.len());
    let Some(end) = end else {
        return Err(corrupt("record truncated"));
    };
    let out = bytes[*pos..end].to_vec();
    *pos = end;
    Ok(out)
}

fn get_string_at(bytes: &[u8], pos: &mut usize) -> io::Result<String> {
    String::from_utf8(get_bytes_at(bytes, pos)?).map_err(|_| corrupt("name is not UTF-8"))
}

fn corrupt(what: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("corrupt WAL: {what}"))
}

impl CommitRecord {
    /// Serializes the record into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.counts.len() * 24);
        out.extend_from_slice(&self.seq.to_le_bytes());
        out.extend_from_slice(&self.inserted_edges.to_le_bytes());
        out.extend_from_slice(&self.deleted_edges.to_le_bytes());
        out.extend_from_slice(&(self.new_nodes.len() as u32).to_le_bytes());
        for name in &self.new_nodes {
            put_bytes(&mut out, name.as_bytes());
        }
        out.extend_from_slice(&(self.new_labels.len() as u32).to_le_bytes());
        for name in &self.new_labels {
            put_bytes(&mut out, name.as_bytes());
        }
        out.extend_from_slice(&(self.ops.len() as u32).to_le_bytes());
        for op in &self.ops {
            out.extend_from_slice(&op.src.0.to_le_bytes());
            out.extend_from_slice(&op.label.0.to_le_bytes());
            out.extend_from_slice(&op.dst.0.to_le_bytes());
            out.push(op.insert as u8);
        }
        out.extend_from_slice(&(self.counts.len() as u32).to_le_bytes());
        for (key, count) in &self.counts {
            put_bytes(&mut out, key);
            out.extend_from_slice(&count.to_le_bytes());
        }
        out
    }

    /// Deserializes a frame payload produced by [`CommitRecord::encode`].
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        let pos = &mut 0usize;
        let seq = get_u64_at(bytes, pos)?;
        let inserted_edges = get_u64_at(bytes, pos)?;
        let deleted_edges = get_u64_at(bytes, pos)?;
        let node_len = get_u32_at(bytes, pos)? as usize;
        let mut new_nodes = Vec::with_capacity(node_len.min(1024));
        for _ in 0..node_len {
            new_nodes.push(get_string_at(bytes, pos)?);
        }
        let label_len = get_u32_at(bytes, pos)? as usize;
        let mut new_labels = Vec::with_capacity(label_len.min(1024));
        for _ in 0..label_len {
            new_labels.push(get_string_at(bytes, pos)?);
        }
        let op_len = get_u32_at(bytes, pos)? as usize;
        let mut ops = Vec::with_capacity(op_len.min(4096));
        for _ in 0..op_len {
            let src = NodeId(get_u32_at(bytes, pos)?);
            let label = {
                let end = pos.checked_add(2).filter(|&e| e <= bytes.len());
                let Some(end) = end else {
                    return Err(corrupt("record truncated"));
                };
                let mut buf = [0u8; 2];
                buf.copy_from_slice(&bytes[*pos..end]);
                *pos = end;
                LabelId(u16::from_le_bytes(buf))
            };
            let dst = NodeId(get_u32_at(bytes, pos)?);
            if *pos >= bytes.len() {
                return Err(corrupt("record truncated"));
            }
            let insert = bytes[*pos] != 0;
            *pos += 1;
            ops.push(if insert {
                EdgeOp::insert(src, label, dst)
            } else {
                EdgeOp::delete(src, label, dst)
            });
        }
        let count_len = get_u32_at(bytes, pos)? as usize;
        let mut counts = Vec::with_capacity(count_len.min(65536));
        for _ in 0..count_len {
            let key = get_bytes_at(bytes, pos)?;
            let count = get_u64_at(bytes, pos)?;
            counts.push((key, count));
        }
        if *pos != bytes.len() {
            return Err(corrupt("trailing bytes after record"));
        }
        Ok(CommitRecord {
            seq,
            new_nodes,
            new_labels,
            ops,
            counts,
            inserted_edges,
            deleted_edges,
        })
    }
}

/// Size and shape statistics of a [`Wal`].
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct WalStats {
    /// Segment files currently on disk.
    pub segments: u64,
    /// Bytes appended to the current segment.
    pub current_segment_bytes: u64,
    /// Records appended through this handle (not counting replayed history).
    pub records_appended: u64,
    /// `sync_data` calls performed through this handle.
    pub syncs: u64,
}

/// An append-only, segmented write-ahead log rooted at a directory.
#[derive(Debug)]
pub struct Wal {
    dir: PathBuf,
    file: File,
    current_segment: u64,
    segment_bytes: u64,
    segment_limit: u64,
    stats: WalStats,
}

/// Segment files of `dir` as `(segment number, path)`, ascending.
fn segments_in(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(stem) = name.strip_suffix(SEGMENT_SUFFIX) else {
            continue;
        };
        let Ok(number) = stem.parse::<u64>() else {
            continue;
        };
        segments.push((number, entry.path()));
    }
    segments.sort_unstable();
    Ok(segments)
}

fn segment_path(dir: &Path, number: u64) -> PathBuf {
    dir.join(format!("{number:020}{SEGMENT_SUFFIX}"))
}

impl Wal {
    /// Opens (creating if absent) the log rooted at `dir`, positioned to
    /// append after the last complete record.
    pub fn open<P: AsRef<Path>>(dir: P) -> io::Result<Self> {
        let dir = dir.as_ref().to_path_buf();
        fs::create_dir_all(&dir)?;
        let segments = segments_in(&dir)?;
        let (current_segment, path) = match segments.last() {
            Some(&(number, ref path)) => (number, path.clone()),
            None => (1, segment_path(&dir, 1)),
        };
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        let segment_bytes = file.metadata()?.len();
        Ok(Wal {
            dir,
            file,
            current_segment,
            segment_bytes,
            segment_limit: SEGMENT_BYTES,
            stats: WalStats {
                segments: segments.len().max(1) as u64,
                current_segment_bytes: segment_bytes,
                ..WalStats::default()
            },
        })
    }

    /// Appends one framed record. The record is not durable until
    /// [`Wal::sync`] returns.
    pub fn append(&mut self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_BYTES {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "WAL record of {} bytes exceeds the frame bound",
                    payload.len()
                ),
            ));
        }
        if self.segment_bytes >= self.segment_limit {
            self.rotate()?;
        }
        fault::hit("wal-append")?;
        let mut frame = Vec::with_capacity(8 + payload.len());
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&crc32(payload).to_le_bytes());
        frame.extend_from_slice(payload);
        self.file.write_all(&frame)?;
        self.segment_bytes += frame.len() as u64;
        self.stats.records_appended += 1;
        self.stats.current_segment_bytes = self.segment_bytes;
        Ok(())
    }

    /// Makes every appended record durable (`sync_data`).
    pub fn sync(&mut self) -> io::Result<()> {
        fault::hit("wal-sync")?;
        self.file.sync_data()?;
        self.stats.syncs += 1;
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        let next = self.current_segment + 1;
        let path = segment_path(&self.dir, next);
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        self.file = file;
        self.current_segment = next;
        self.segment_bytes = 0;
        self.stats.segments += 1;
        self.stats.current_segment_bytes = 0;
        Ok(())
    }

    /// Deletes every segment and starts a fresh one — the truncation step of
    /// a checkpoint, called only after the checkpoint itself is durable.
    /// Numbering continues from the next segment, so a crash that interrupts
    /// the deletions leaves a log whose surviving records still replay in
    /// order (and are skipped as already applied).
    pub fn reset(&mut self) -> io::Result<()> {
        let next = self.current_segment + 1;
        let path = segment_path(&self.dir, next);
        fault::hit("wal-reset")?;
        let file = OpenOptions::new()
            .create_new(true)
            .append(true)
            .open(&path)?;
        self.file = file;
        self.current_segment = next;
        self.segment_bytes = 0;
        self.stats.current_segment_bytes = 0;
        let mut kept = 0u64;
        for (number, path) in segments_in(&self.dir)? {
            if number == next {
                kept += 1;
                continue;
            }
            fault::hit("wal-truncate")?;
            fs::remove_file(&path)?;
        }
        self.stats.segments = kept;
        Ok(())
    }

    /// Statistics of this handle.
    pub fn stats(&self) -> WalStats {
        self.stats
    }

    /// Reads every fully committed record payload under `dir`, oldest first.
    ///
    /// A truncated or CRC-failing frame ends the replay (it is the torn tail
    /// of the append the crash interrupted); everything before it is intact.
    /// A missing directory replays as empty.
    pub fn replay<P: AsRef<Path>>(dir: P) -> io::Result<Vec<Vec<u8>>> {
        let dir = dir.as_ref();
        if !dir.exists() {
            return Ok(Vec::new());
        }
        let mut records = Vec::new();
        'segments: for (_, path) in segments_in(dir)? {
            let mut bytes = Vec::new();
            File::open(&path)?.read_to_end(&mut bytes)?;
            let mut pos = 0usize;
            while pos < bytes.len() {
                if bytes.len() - pos < 8 {
                    break 'segments;
                }
                let mut buf = [0u8; 4];
                buf.copy_from_slice(&bytes[pos..pos + 4]);
                let len = u32::from_le_bytes(buf) as usize;
                buf.copy_from_slice(&bytes[pos + 4..pos + 8]);
                let expected = u32::from_le_bytes(buf);
                if len > MAX_RECORD_BYTES || bytes.len() - pos - 8 < len {
                    break 'segments;
                }
                let payload = &bytes[pos + 8..pos + 8 + len];
                if crc32(payload) != expected {
                    break 'segments;
                }
                records.push(payload.to_vec());
                pos += 8 + len;
            }
        }
        Ok(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_wal_dir(tag: &str) -> PathBuf {
        static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let dir =
            std::env::temp_dir().join(format!("pathix-wal-{}-{}-{}", std::process::id(), tag, n));
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn append_sync_replay_round_trip() {
        let dir = temp_wal_dir("roundtrip");
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(b"first").unwrap();
            wal.append(b"second").unwrap();
            wal.sync().unwrap();
            assert_eq!(wal.stats().records_appended, 2);
        }
        // Reopening appends after the existing records.
        {
            let mut wal = Wal::open(&dir).unwrap();
            wal.append(b"third").unwrap();
            wal.sync().unwrap();
        }
        let records = Wal::replay(&dir).unwrap();
        assert_eq!(
            records,
            vec![b"first".to_vec(), b"second".to_vec(), b"third".to_vec()]
        );
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_dropped_not_an_error() {
        let dir = temp_wal_dir("torn");
        let mut wal = Wal::open(&dir).unwrap();
        wal.append(b"keep me").unwrap();
        wal.sync().unwrap();
        // Simulate a torn append: a frame header promising more bytes than
        // the file holds.
        let seg = segments_in(&dir).unwrap().pop().unwrap().1;
        let mut bytes = fs::read(&seg).unwrap();
        bytes.extend_from_slice(&100u32.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(b"way too short");
        fs::write(&seg, &bytes).unwrap();
        assert_eq!(Wal::replay(&dir).unwrap(), vec![b"keep me".to_vec()]);

        // A CRC failure also ends replay.
        let mut bytes = fs::read(&seg).unwrap();
        bytes.truncate(8 + b"keep me".len());
        let tail = bytes.len() - 1;
        bytes[tail] ^= 0xFF;
        fs::write(&seg, &bytes).unwrap();
        assert_eq!(Wal::replay(&dir).unwrap(), Vec::<Vec<u8>>::new());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_and_reset() {
        let dir = temp_wal_dir("rotate");
        let mut wal = Wal::open(&dir).unwrap();
        wal.segment_limit = 64;
        let payload = vec![7u8; 50];
        for _ in 0..5 {
            wal.append(&payload).unwrap();
        }
        wal.sync().unwrap();
        assert!(wal.stats().segments > 1, "small limit must rotate");
        assert_eq!(Wal::replay(&dir).unwrap().len(), 5);

        wal.reset().unwrap();
        assert_eq!(wal.stats().segments, 1);
        assert_eq!(Wal::replay(&dir).unwrap().len(), 0);
        // The log is still appendable after a reset.
        wal.append(b"after reset").unwrap();
        wal.sync().unwrap();
        assert_eq!(Wal::replay(&dir).unwrap(), vec![b"after reset".to_vec()]);
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn commit_record_codec_round_trips() {
        let record = CommitRecord {
            seq: 42,
            new_nodes: vec!["alice".to_string(), "bob".to_string()],
            new_labels: vec!["knows".to_string()],
            ops: vec![
                EdgeOp::insert(NodeId(0), LabelId(0), NodeId(1)),
                EdgeOp::delete(NodeId(1), LabelId(0), NodeId(0)),
            ],
            counts: vec![(vec![1, 2, 3], 7), (vec![9], 0)],
            inserted_edges: 1,
            deleted_edges: 1,
        };
        let bytes = record.encode();
        assert_eq!(CommitRecord::decode(&bytes).unwrap(), record);

        // Truncations at every prefix length decode to an error, never a
        // panic or a bogus record.
        for cut in 0..bytes.len() {
            assert!(CommitRecord::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let mut trailing = bytes.clone();
        trailing.push(0);
        assert!(CommitRecord::decode(&trailing).is_err());
    }
}
