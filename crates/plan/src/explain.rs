//! Human-readable plan rendering ("EXPLAIN" output).

use crate::cost::cost_plan;
use crate::plan::{JoinAlgorithm, PhysicalPlan};
use crate::planner::PlannerContext;
use pathix_exec::ScanOrientation;
use pathix_graph::Graph;
use pathix_index::PathIndexBackend;
use pathix_rpq::ast::format_label_path;

/// Renders a physical plan as an indented tree with label names, join
/// algorithms, scan orientations and cost estimates — the "life of a query"
/// view the paper's demonstration walks through.
pub fn explain<B: PathIndexBackend + ?Sized>(
    plan: &PhysicalPlan,
    graph: &Graph,
    ctx: &PlannerContext<'_, B>,
) -> String {
    let estimator = ctx.estimator();
    let mut out = String::new();
    render(plan, graph, ctx, &estimator, 0, &mut out);
    out
}

fn render<B: PathIndexBackend + ?Sized>(
    plan: &PhysicalPlan,
    graph: &Graph,
    ctx: &PlannerContext<'_, B>,
    estimator: &pathix_index::CardinalityEstimator<'_>,
    depth: usize,
    out: &mut String,
) {
    let indent = "  ".repeat(depth);
    let cost = cost_plan(plan, estimator);
    match plan {
        PhysicalPlan::IndexScan { path, orientation } => {
            let dir = match orientation {
                ScanOrientation::Forward => "forward",
                ScanOrientation::Inverse => "inverse",
            };
            out.push_str(&format!(
                "{indent}IndexScan [{}] ({dir}, est. rows {:.0})\n",
                format_label_path(path, graph),
                cost.cardinality
            ));
        }
        PhysicalPlan::Epsilon => {
            out.push_str(&format!(
                "{indent}Epsilon (identity over {} nodes)\n",
                ctx.node_count()
            ));
        }
        PhysicalPlan::Join {
            algorithm,
            left,
            right,
        } => {
            let name = match algorithm {
                JoinAlgorithm::Merge => "MergeJoin",
                JoinAlgorithm::Hash => "HashJoin",
            };
            out.push_str(&format!(
                "{indent}{name} (est. rows {:.0}, est. cost {:.0})\n",
                cost.cardinality, cost.cost
            ));
            render(left, graph, ctx, estimator, depth + 1, out);
            render(right, graph, ctx, estimator, depth + 1, out);
        }
        PhysicalPlan::Union(children) => {
            out.push_str(&format!(
                "{indent}Union of {} disjuncts (est. rows {:.0}, est. cost {:.0})\n",
                children.len(),
                cost.cardinality,
                cost.cost
            ));
            for child in children {
                render(child, graph, ctx, estimator, depth + 1, out);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_query, PlannerContext, Strategy};
    use pathix_datagen::paper_example_graph;
    use pathix_index::{EstimationMode, KPathIndex, PathHistogram};
    use pathix_rpq::{parse, to_disjuncts, RewriteOptions};

    #[test]
    fn explain_mentions_labels_joins_and_estimates() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            2,
            EstimationMode::default(),
        );
        let ctx = PlannerContext::new(&index, &hist);
        let expr = parse("knows/(knows/worksFor){2,4}/worksFor")
            .unwrap()
            .bind(&g)
            .unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::MinSupport, &disjuncts, &ctx);
        let text = explain(&plan, &g, &ctx);
        assert!(text.contains("Union of 3 disjuncts"));
        assert!(text.contains("IndexScan"));
        assert!(text.contains("knows"));
        assert!(text.contains("worksFor"));
        assert!(text.contains("Join"));
        assert!(text.contains("est. rows"));
        // Indentation shows tree structure.
        assert!(text.lines().any(|l| l.starts_with("    ")));
    }

    #[test]
    fn explain_epsilon_plan() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 1);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            1,
            EstimationMode::default(),
        );
        let ctx = PlannerContext::new(&index, &hist);
        let expr = parse("knows?").unwrap().bind(&g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::SemiNaive, &disjuncts, &ctx);
        let text = explain(&plan, &g, &ctx);
        assert!(text.contains("Epsilon"));
        assert!(text.contains("9 nodes"));
    }
}
