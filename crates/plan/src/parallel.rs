//! Parallel execution of a query's disjunct plans.
//!
//! After union pull-up a query is a union of independent label-path
//! disjuncts (Section 4 of the paper); their physical plans touch the index
//! read-only, so they can be evaluated concurrently. This module runs each
//! disjunct plan on a scoped `std::thread` and merges the results under the
//! paper's set semantics (sorted, duplicate-free pairs). Any backend error
//! raised by a worker aborts the query and is reported to the caller.

use crate::executor::open_stream;
use crate::plan::PhysicalPlan;
use pathix_exec::{Pair, PairStream};
use pathix_index::{BackendResult, PathIndexBackend};

/// Executes the disjunct plans of a query concurrently on up to `threads`
/// worker threads and merges their answers into one sorted, duplicate-free
/// pair list.
///
/// Passing a [`PhysicalPlan::Union`] runs each child in parallel; any other
/// plan shape is executed as-is on the calling thread. The backend only
/// needs to be `Sync` — all three built-in backends are (the paged index
/// serializes page access through its buffer-pool mutex).
pub fn execute_parallel<B: PathIndexBackend + Sync + ?Sized>(
    plan: &PhysicalPlan,
    index: &B,
    threads: usize,
) -> BackendResult<Vec<Pair>> {
    Ok(execute_parallel_with_stats(plan, index, threads)?.0)
}

/// [`execute_parallel`], additionally reporting how many pairs the workers
/// pulled from their operator trees before the final merge's duplicate
/// elimination — the parallel analogue of
/// [`crate::ExecutionStats::pairs_pulled`]. Workers pull the raw disjunct
/// outputs (the union's distinct runs in the merge instead of inside the
/// tree), so on union plans this can exceed the count a sequential drain of
/// the same plan reports.
pub fn execute_parallel_with_stats<B: PathIndexBackend + Sync + ?Sized>(
    plan: &PhysicalPlan,
    index: &B,
    threads: usize,
) -> BackendResult<(Vec<Pair>, usize)> {
    let children: &[PhysicalPlan] = match plan {
        PhysicalPlan::Union(children) if children.len() > 1 => children,
        other => {
            let mut stream = open_stream(other, index)?;
            let mut out = Vec::new();
            while let Some(pair) = stream.next_pair()? {
                out.push(pair);
            }
            let pulled = out.len();
            out.sort_unstable();
            out.dedup();
            return Ok((out, pulled));
        }
    };
    let threads = threads.max(1);
    let chunk_size = children.len().div_ceil(threads);

    let mut merged: Vec<Pair> = std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for chunk in children.chunks(chunk_size) {
            handles.push(scope.spawn(move || {
                let mut partial = Vec::new();
                for child in chunk {
                    let mut stream = open_stream(child, index)?;
                    while let Some(pair) = stream.next_pair()? {
                        partial.push(pair);
                    }
                }
                Ok(partial)
            }));
        }
        let mut all = Vec::new();
        for handle in handles {
            match handle.join().expect("disjunct worker panicked") {
                Ok(mut partial) => all.append(&mut partial),
                Err(e) => return Err(e),
            }
        }
        Ok(all)
    })?;

    let pulled = merged.len();
    merged.sort_unstable();
    merged.dedup();
    Ok((merged, pulled))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::execute;
    use crate::planner::{plan_query, PlannerContext, Strategy};
    use pathix_datagen::paper_example_graph;
    use pathix_index::{EstimationMode, KPathIndex, PathHistogram};
    use pathix_rpq::{parse, to_disjuncts, RewriteOptions};

    fn setup() -> (pathix_graph::Graph, KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let histogram = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            2,
            EstimationMode::default(),
        );
        (g, index, histogram)
    }

    fn plans_for(
        query: &str,
        g: &pathix_graph::Graph,
        ctx: &PlannerContext<'_, KPathIndex>,
    ) -> PhysicalPlan {
        let expr = parse(query).unwrap().bind(g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        plan_query(Strategy::MinSupport, &disjuncts, ctx)
    }

    #[test]
    fn parallel_execution_matches_sequential() {
        let (g, index, histogram) = setup();
        let ctx = PlannerContext::new(&index, &histogram);
        for query in [
            "knows/knows/worksFor",
            "(supervisor|worksFor|worksFor-){4,5}",
            "knows{1,4}",
            "supervisor/worksFor-",
        ] {
            let plan = plans_for(query, &g, &ctx);
            let sequential = execute(&plan, &index).unwrap();
            for threads in [1, 2, 8] {
                let parallel = execute_parallel(&plan, &index, threads).unwrap();
                assert_eq!(parallel, sequential, "query {query}, threads {threads}");
            }
        }
    }

    #[test]
    fn non_union_plans_run_inline() {
        let (g, index, histogram) = setup();
        let ctx = PlannerContext::new(&index, &histogram);
        let plan = plans_for("knows/worksFor", &g, &ctx);
        let result = execute_parallel(&plan, &index, 4).unwrap();
        assert_eq!(result, execute(&plan, &index).unwrap());
    }
}
