//! The minJoin strategy: minimal number of index lookups.
//!
//! Section 5 of the paper describes minJoin as "similar to minSupport but
//! also aims to minimize the number of joins". We realize that as follows:
//!
//! 1. a disjunct of length `n` is cut into exactly `⌈n / k⌉` chunks (the
//!    minimum possible), each of length at most k;
//! 2. every such segmentation is enumerated, and for each one a join tree is
//!    built greedily starting from the most selective chunk and repeatedly
//!    absorbing the adjacent chunk whose estimated relation is smaller;
//! 3. the segmentation with the cheapest costed plan wins.
//!
//! With the minimal chunk count fixed, the histogram still decides *where*
//! the chunk boundaries fall and in which order the joins run — the
//! selectivity-awareness it shares with minSupport.

use crate::cost::cost_plan;
use crate::plan::PhysicalPlan;
use crate::planner::PlannerContext;
use pathix_graph::SignedLabel;
use pathix_index::{CardinalityEstimator, PathIndexBackend};
use pathix_rpq::LabelPath;

/// Plans one non-empty disjunct with the minJoin strategy.
pub fn plan_disjunct<B: PathIndexBackend + ?Sized>(
    disjunct: &LabelPath,
    ctx: &PlannerContext<'_, B>,
) -> PhysicalPlan {
    debug_assert!(!disjunct.is_empty());
    let k = ctx.k();
    if disjunct.len() <= k {
        return PhysicalPlan::scan(disjunct.clone());
    }
    let estimator = ctx.estimator();
    let n = disjunct.len();
    let chunk_count = n.div_ceil(k);

    let mut best: Option<(f64, PhysicalPlan)> = None;
    for lens in segmentations(n, chunk_count, k) {
        let chunks = cut(disjunct, &lens);
        let plan = greedy_join_tree(&chunks, ctx, &estimator);
        let cost = cost_plan(&plan, &estimator).cost;
        let better = match &best {
            Some((best_cost, _)) => cost < *best_cost,
            None => true,
        };
        if better {
            best = Some((cost, plan));
        }
    }
    best.expect("at least one segmentation exists").1
}

/// All ways to write `n` as an ordered sum of exactly `parts` integers in
/// `1..=k`.
fn segmentations(n: usize, parts: usize, k: usize) -> Vec<Vec<usize>> {
    let mut out = Vec::new();
    let mut current = Vec::with_capacity(parts);
    fn go(
        remaining: usize,
        parts_left: usize,
        k: usize,
        current: &mut Vec<usize>,
        out: &mut Vec<Vec<usize>>,
    ) {
        if parts_left == 0 {
            if remaining == 0 {
                out.push(current.clone());
            }
            return;
        }
        for len in 1..=k.min(remaining) {
            // Prune: the rest must still be coverable.
            let rest = remaining - len;
            if rest > (parts_left - 1) * k {
                continue;
            }
            if rest < parts_left - 1 {
                continue;
            }
            current.push(len);
            go(rest, parts_left - 1, k, current, out);
            current.pop();
        }
    }
    go(n, parts, k, &mut current, &mut out);
    out
}

fn cut(disjunct: &[SignedLabel], lens: &[usize]) -> Vec<LabelPath> {
    let mut chunks = Vec::with_capacity(lens.len());
    let mut offset = 0;
    for &len in lens {
        chunks.push(disjunct[offset..offset + len].to_vec());
        offset += len;
    }
    debug_assert_eq!(offset, disjunct.len());
    chunks
}

/// Builds a join tree over adjacent chunks, starting from the most selective
/// chunk and expanding toward whichever neighbor is estimated smaller.
fn greedy_join_tree<B: PathIndexBackend + ?Sized>(
    chunks: &[LabelPath],
    ctx: &PlannerContext<'_, B>,
    estimator: &CardinalityEstimator<'_>,
) -> PhysicalPlan {
    debug_assert!(!chunks.is_empty());
    let histogram = ctx.histogram();
    let card = |chunk: &LabelPath| {
        histogram
            .estimated_cardinality(chunk)
            .unwrap_or(f64::INFINITY)
    };
    // Seed with the most selective chunk.
    let mut seed = 0;
    for (i, chunk) in chunks.iter().enumerate() {
        if card(chunk) < card(&chunks[seed]) {
            seed = i;
        }
    }
    let mut lo = seed;
    let mut hi = seed;
    let mut plan = PhysicalPlan::scan(chunks[seed].clone());
    let mut plan_card = card(&chunks[seed]);
    while lo > 0 || hi + 1 < chunks.len() {
        let left_candidate = (lo > 0).then(|| card(&chunks[lo - 1]));
        let right_candidate = (hi + 1 < chunks.len()).then(|| card(&chunks[hi + 1]));
        let take_left = match (left_candidate, right_candidate) {
            (Some(l), Some(r)) => l <= r,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (None, None) => unreachable!("loop condition guarantees a neighbor"),
        };
        if take_left {
            lo -= 1;
            let chunk_card = card(&chunks[lo]);
            plan = PhysicalPlan::compose(PhysicalPlan::scan(chunks[lo].clone()), plan);
            plan_card = estimator.join_cardinality(chunk_card, plan_card);
        } else {
            hi += 1;
            let chunk_card = card(&chunks[hi]);
            plan = PhysicalPlan::compose(plan, PhysicalPlan::scan(chunks[hi].clone()));
            plan_card = estimator.join_cardinality(plan_card, chunk_card);
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::Graph;
    use pathix_index::{EstimationMode, KPathIndex, PathHistogram};

    fn fixture(k: usize) -> (Graph, KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, k);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            k,
            EstimationMode::Exact,
        );
        (g, index, hist)
    }

    fn sl(g: &Graph, name: &str) -> SignedLabel {
        SignedLabel::forward(g.label_id(name).unwrap())
    }

    #[test]
    fn segmentations_enumerate_compositions() {
        assert_eq!(segmentations(6, 2, 3), vec![vec![3, 3]]);
        let mut s = segmentations(5, 2, 3);
        s.sort();
        assert_eq!(s, vec![vec![2, 3], vec![3, 2]]);
        let s = segmentations(7, 3, 3);
        assert_eq!(s.len(), 6); // 1+3+3, 3+1+3, 3+3+1, 2+2+3, 2+3+2, 3+2+2
        for lens in &s {
            assert_eq!(lens.iter().sum::<usize>(), 7);
            assert!(lens.iter().all(|&l| (1..=3).contains(&l)));
        }
    }

    #[test]
    fn uses_the_minimum_number_of_scans() {
        let (g, index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let k = sl(&g, "knows");
        let w = sl(&g, "worksFor");
        for len in 1usize..=9 {
            let disjunct: LabelPath = (0..len).map(|i| if i % 2 == 0 { k } else { w }).collect();
            let plan = plan_disjunct(&disjunct, &ctx);
            assert_eq!(plan.scan_count(), len.div_ceil(3), "length {len}");
            assert_eq!(plan.join_count(), len.div_ceil(3) - 1, "length {len}");
        }
    }

    #[test]
    fn scanned_chunks_reassemble_the_disjunct() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let k = sl(&g, "knows");
        let w = sl(&g, "worksFor");
        let s = sl(&g, "supervisor");
        let disjunct = vec![k, w, s, k, w];
        let plan = plan_disjunct(&disjunct, &ctx);

        fn collect(plan: &PhysicalPlan, out: &mut Vec<LabelPath>) {
            match plan {
                PhysicalPlan::IndexScan { path, .. } => out.push(path.clone()),
                PhysicalPlan::Join { left, right, .. } => {
                    collect(left, out);
                    collect(right, out);
                }
                _ => {}
            }
        }
        let mut chunks = Vec::new();
        collect(&plan, &mut chunks);
        assert_eq!(chunks.concat(), disjunct);
    }

    #[test]
    fn selective_chunks_are_joined_first() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let k = sl(&g, "knows");
        let s = sl(&g, "supervisor");
        // The supervisor label is the rarest; the chunk containing it should
        // sit at the bottom of the join tree (joined first).
        let disjunct = vec![k, k, k, k, k, s];
        let plan = plan_disjunct(&disjunct, &ctx);
        fn scan_depths(plan: &PhysicalPlan, depth: usize, out: &mut Vec<(usize, LabelPath)>) {
            match plan {
                PhysicalPlan::IndexScan { path, .. } => out.push((depth, path.clone())),
                PhysicalPlan::Join { left, right, .. } => {
                    scan_depths(left, depth + 1, out);
                    scan_depths(right, depth + 1, out);
                }
                _ => {}
            }
        }
        let mut depths = Vec::new();
        scan_depths(&plan, 0, &mut depths);
        let max_depth = depths.iter().map(|(d, _)| *d).max().unwrap();
        let s_depth = depths
            .iter()
            .find(|(_, p)| p.contains(&s))
            .map(|(d, _)| *d)
            .expect("a chunk contains the supervisor label");
        assert_eq!(
            s_depth, max_depth,
            "most selective chunk should be joined first: {depths:?}"
        );
    }

    #[test]
    fn short_disjunct_is_a_single_scan() {
        let (g, index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let plan = plan_disjunct(&vec![sl(&g, "knows")], &ctx);
        assert!(matches!(plan, PhysicalPlan::IndexScan { .. }));
    }
}
