//! The naive strategy: k fixed at 1.
//!
//! The paper's naive method indexes edge labels only ("which corresponds to
//! automaton-based evaluation"): every disjunct is cut into single-label
//! scans that are composed left to right. It runs against any k-path index
//! because length-1 paths are always present, so its runtime does not change
//! with k — exactly the flat "naive" line of Figure 2.

use crate::plan::PhysicalPlan;
use crate::planner::PlannerContext;
use pathix_index::PathIndexBackend;
use pathix_rpq::LabelPath;

/// Plans one non-empty disjunct with single-label scans composed left to
/// right.
pub fn plan_disjunct<B: PathIndexBackend + ?Sized>(
    disjunct: &LabelPath,
    _ctx: &PlannerContext<'_, B>,
) -> PhysicalPlan {
    debug_assert!(!disjunct.is_empty());
    let mut plan = PhysicalPlan::scan(vec![disjunct[0]]);
    for &step in &disjunct[1..] {
        plan = PhysicalPlan::compose(plan, PhysicalPlan::scan(vec![step]));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinAlgorithm;
    use crate::planner::PlannerContext;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::SignedLabel;
    use pathix_index::{EstimationMode, KPathIndex, PathHistogram};

    fn ctx_fixture(k: usize) -> (KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, k);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            k,
            EstimationMode::Exact,
        );
        (index, hist)
    }

    #[test]
    fn every_scan_is_a_single_label() {
        let (index, hist) = ctx_fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let disjunct: LabelPath = (0..5).map(|c| SignedLabel::from_code(c % 4)).collect();
        let plan = plan_disjunct(&disjunct, &ctx);
        assert_eq!(plan.scan_count(), 5);
        assert_eq!(plan.join_count(), 4);
        assert_eq!(plan.max_scanned_path_len(), 1);
    }

    #[test]
    fn first_join_is_merge_rest_are_hash() {
        let (index, hist) = ctx_fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let disjunct: LabelPath = (0..4).map(SignedLabel::from_code).collect();
        let plan = plan_disjunct(&disjunct, &ctx);
        // Left-deep tree: only the innermost (first) join has two leaf scans.
        assert_eq!(plan.merge_join_count(), 1);
        assert_eq!(plan.join_count(), 3);
        match plan {
            PhysicalPlan::Join { algorithm, .. } => assert_eq!(algorithm, JoinAlgorithm::Hash),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn single_label_disjunct_is_just_a_scan() {
        let (index, hist) = ctx_fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let disjunct = vec![SignedLabel::from_code(0)];
        let plan = plan_disjunct(&disjunct, &ctx);
        assert!(matches!(plan, PhysicalPlan::IndexScan { .. }));
    }
}
