//! The semi-naive strategy: left-to-right length-k chunking.
//!
//! Section 4 of the paper: each disjunct is processed from left to right,
//! consuming k labels at a time; the first join can exploit the index sort
//! order (by scanning the inverse of the leading chunk) and is a merge join,
//! subsequent joins take an intermediate result on the left and are hash
//! joins. This reproduces the example plans of the paper, e.g. for
//! `kkwkwkww` with k = 3:
//!
//! ```text
//! [ I(w⁻k⁻k⁻) ⋈merge I(kwk) ] ⋈hash I(ww)
//! ```

use crate::plan::PhysicalPlan;
use crate::planner::PlannerContext;
use pathix_index::PathIndexBackend;
use pathix_rpq::LabelPath;

/// Splits a disjunct into consecutive chunks of at most `k` labels.
pub fn chunk_left_to_right(disjunct: &LabelPath, k: usize) -> Vec<LabelPath> {
    disjunct.chunks(k.max(1)).map(<[_]>::to_vec).collect()
}

/// Plans one non-empty disjunct by composing its length-k chunks left to
/// right.
pub fn plan_disjunct<B: PathIndexBackend + ?Sized>(
    disjunct: &LabelPath,
    ctx: &PlannerContext<'_, B>,
) -> PhysicalPlan {
    debug_assert!(!disjunct.is_empty());
    let chunks = chunk_left_to_right(disjunct, ctx.k());
    let mut iter = chunks.into_iter();
    let mut plan = PhysicalPlan::scan(iter.next().expect("non-empty disjunct"));
    for chunk in iter {
        plan = PhysicalPlan::compose(plan, PhysicalPlan::scan(chunk));
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::JoinAlgorithm;
    use pathix_datagen::paper_example_graph;
    use pathix_exec::ScanOrientation;
    use pathix_graph::SignedLabel;
    use pathix_index::{EstimationMode, KPathIndex, PathHistogram};

    fn fixture(k: usize) -> (KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, k);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            k,
            EstimationMode::Exact,
        );
        (index, hist)
    }

    fn path_of_len(n: usize) -> LabelPath {
        (0..n)
            .map(|i| SignedLabel::from_code((i % 4) as u16))
            .collect()
    }

    #[test]
    fn chunking_is_greedy_from_the_left() {
        let p = path_of_len(8);
        let chunks = chunk_left_to_right(&p, 3);
        let lens: Vec<usize> = chunks.iter().map(Vec::len).collect();
        assert_eq!(lens, vec![3, 3, 2]);
        let rejoined: LabelPath = chunks.concat();
        assert_eq!(rejoined, p);
    }

    #[test]
    fn short_disjunct_is_a_single_scan() {
        let (index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let plan = plan_disjunct(&path_of_len(3), &ctx);
        assert!(matches!(plan, PhysicalPlan::IndexScan { .. }));
        assert_eq!(plan.max_scanned_path_len(), 3);
    }

    #[test]
    fn paper_example_join_mix_for_length_eight() {
        // kkwkwkww (length 8) with k = 3: merge then hash (Section 4).
        let (index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let plan = plan_disjunct(&path_of_len(8), &ctx);
        assert_eq!(plan.join_count(), 2);
        assert_eq!(plan.merge_join_count(), 1);
        match &plan {
            PhysicalPlan::Join {
                algorithm, left, ..
            } => {
                assert_eq!(*algorithm, JoinAlgorithm::Hash);
                assert_eq!(left.merge_join_count(), 1);
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn leading_chunk_is_scanned_inverted_for_the_merge_join() {
        let (index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let plan = plan_disjunct(&path_of_len(6), &ctx);
        match &plan {
            PhysicalPlan::Join { left, right, .. } => match (left.as_ref(), right.as_ref()) {
                (
                    PhysicalPlan::IndexScan {
                        orientation: o1, ..
                    },
                    PhysicalPlan::IndexScan {
                        orientation: o2, ..
                    },
                ) => {
                    assert_eq!(*o1, ScanOrientation::Inverse);
                    assert_eq!(*o2, ScanOrientation::Forward);
                }
                other => panic!("unexpected children {other:?}"),
            },
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn number_of_scans_is_ceil_n_over_k() {
        let (index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        for n in 1..=10 {
            let plan = plan_disjunct(&path_of_len(n), &ctx);
            assert_eq!(plan.scan_count(), n.div_ceil(3), "length {n}");
        }
    }
}
