//! # pathix-plan
//!
//! Query planning and execution for RPQs over the k-path index: the paper's
//! four evaluation strategies, the cost model that drives the
//! histogram-guided ones, and the executor that turns physical plans into
//! `pathix-exec` operator trees.
//!
//! A query arrives as its list of label-path **disjuncts** (the output of
//! `pathix_rpq::to_disjuncts`); each strategy turns one disjunct into a
//! [`PhysicalPlan`] of index scans and joins, and [`plan_query`] unions the
//! per-disjunct plans:
//!
//! | Strategy | Module | Paper description |
//! |----------|--------|-------------------|
//! | [`Strategy::Naive`] | [`naive`] | k fixed at 1: scans of single edge labels only (automaton-equivalent). |
//! | [`Strategy::SemiNaive`] | [`semi_naive`] | Left-to-right chunks of length k; merge join when the index sort order can be used, hash join otherwise. |
//! | [`Strategy::MinSupport`] | [`min_support`] | Recursive split on the most selective length-k sub-path (per the histogram), costing the alternative join orders. |
//! | [`Strategy::MinJoin`] | [`min_join`] | Minimal number of index lookups (⌈n/k⌉ chunks), segmentation and join order chosen by cost. |
//!
//! ```
//! use pathix_datagen::paper_example_graph;
//! use pathix_index::{EstimationMode, KPathIndex, PathHistogram};
//! use pathix_plan::{plan_query, execute, PlannerContext, Strategy};
//! use pathix_rpq::{parse, to_disjuncts, RewriteOptions};
//!
//! let g = paper_example_graph();
//! let index = KPathIndex::build(&g, 2);
//! let hist = PathHistogram::build(
//!     index.per_path_counts(), index.paths_k_size(), 2, EstimationMode::default());
//! let ctx = PlannerContext::new(&index, &hist);
//! let expr = parse("knows/worksFor").unwrap().bind(&g).unwrap();
//! let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
//! let plan = plan_query(Strategy::MinSupport, &disjuncts, &ctx);
//! // Execution is fallible: disk-resident backends surface I/O errors.
//! let result = execute(&plan, &index).unwrap();
//! assert!(!result.is_empty());
//! ```

pub mod cost;
pub mod executor;
pub mod explain;
pub mod min_join;
pub mod min_support;
pub mod naive;
pub mod parallel;
pub mod plan;
pub mod planner;
pub mod semi_naive;

pub use cost::{cost_plan, PlanCost};
pub use executor::{
    execute, execute_pairwise, execute_with_stats, open_stream, open_stream_cancellable,
    ExecutionStats,
};
pub use explain::explain;
pub use parallel::{execute_parallel, execute_parallel_with_stats};
pub use plan::{JoinAlgorithm, PhysicalPlan};
pub use planner::{plan_disjunct, plan_query, PlannerContext, Strategy};
