//! Turning physical plans into `pathix-exec` operator trees and running them.
//!
//! Execution is generic over the [`PathIndexBackend`], so the same physical
//! plan runs unchanged against the in-memory, paged or compressed index.
//! Every entry point returns a `Result`: disk-resident backends surface I/O
//! failures as [`pathix_index::BackendError`]s instead of panicking.

use crate::plan::{JoinAlgorithm, PhysicalPlan};
use pathix_exec::{
    collect_pairs, BoxedPairStream, CancelGuard, CancelToken, DistinctOp, EpsilonScanOp,
    HashJoinOp, IndexScanOp, MergeJoinOp, Pair, PairBatch, PairStream, UnionAllOp,
};
use pathix_index::{BackendResult, PathIndexBackend};
use std::time::{Duration, Instant};

/// Executes `plan` against `index`, returning the answer as a sorted,
/// duplicate-free pair list (the paper's set semantics).
pub fn execute<B: PathIndexBackend + ?Sized>(
    plan: &PhysicalPlan,
    index: &B,
) -> BackendResult<Vec<Pair>> {
    collect_pairs(open_stream(plan, index)?)
}

/// Timing and size information recorded by [`execute_with_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecutionStats {
    /// Wall-clock time spent in the operator tree.
    pub elapsed: Duration,
    /// Number of result pairs after duplicate elimination.
    pub result_pairs: usize,
    /// Number of pairs pulled from the root of the operator tree, before
    /// the executor's final sort/dedup and before any consumer-side `limit`.
    /// (Union plans carry a distinct operator inside the tree, so their root
    /// already emits deduplicated pairs; join-rooted plans can emit
    /// duplicates.) A consumer that stops early pulls fewer pairs than a
    /// full drain, which makes early termination observable.
    pub pairs_pulled: usize,
    /// Number of joins in the executed plan.
    pub joins: usize,
    /// How many of those were merge joins.
    pub merge_joins: usize,
}

/// Executes `plan` and reports execution statistics along with the result.
pub fn execute_with_stats<B: PathIndexBackend + ?Sized>(
    plan: &PhysicalPlan,
    index: &B,
) -> BackendResult<(Vec<Pair>, ExecutionStats)> {
    let start = Instant::now();
    let mut stream = open_stream(plan, index)?;
    let mut result = Vec::new();
    let mut batch = PairBatch::new();
    while stream.next_batch(&mut batch)? > 0 {
        result.extend(batch.iter());
    }
    let pairs_pulled = result.len();
    result.sort_unstable();
    result.dedup();
    let stats = ExecutionStats {
        elapsed: start.elapsed(),
        result_pairs: result.len(),
        pairs_pulled,
        joins: plan.join_count(),
        merge_joins: plan.merge_join_count(),
    };
    Ok((result, stats))
}

/// Executes `plan` pair-at-a-time (no batching anywhere above the backend),
/// returning the sorted, duplicate-free answer plus the number of pairs
/// pulled from the root.
///
/// This is the pre-vectorization execution mode, kept as the reference for
/// differential tests and as the baseline the `scan_join` experiment
/// measures the batched engine against.
pub fn execute_pairwise<B: PathIndexBackend + ?Sized>(
    plan: &PhysicalPlan,
    index: &B,
) -> BackendResult<(Vec<Pair>, usize)> {
    let mut stream = open_stream(plan, index)?;
    let mut result = Vec::new();
    while let Some(pair) = stream.next_pair()? {
        result.push(pair);
    }
    let pairs_pulled = result.len();
    result.sort_unstable();
    result.dedup();
    Ok((result, pairs_pulled))
}

/// Recursively builds the operator tree for a plan and returns its root as a
/// pull-based pair stream.
///
/// This is the streaming entry point: callers that want incremental results
/// (cursors, `limit`, `exists`) pull pairs one at a time instead of
/// materializing the whole answer via [`execute`]. The stream borrows both
/// the plan and the index.
pub fn open_stream<'a, B: PathIndexBackend + ?Sized>(
    plan: &'a PhysicalPlan,
    index: &'a B,
) -> BackendResult<BoxedPairStream<'a>> {
    build_stream(plan, index, None)
}

/// [`open_stream`] with cooperative cancellation: every operator in the tree
/// is wrapped in a [`CancelGuard`] sharing `token`, so a tripped token (or an
/// expired deadline) interrupts the stream at the next batch boundary — even
/// deep inside a selective join that pulls many child batches per output
/// pair. The cancellation surfaces as a backend error whose backend name is
/// [`pathix_exec::CANCEL_BACKEND`].
pub fn open_stream_cancellable<'a, B: PathIndexBackend + ?Sized>(
    plan: &'a PhysicalPlan,
    index: &'a B,
    token: &CancelToken,
) -> BackendResult<BoxedPairStream<'a>> {
    build_stream(plan, index, Some(token))
}

fn build_stream<'a, B: PathIndexBackend + ?Sized>(
    plan: &'a PhysicalPlan,
    index: &'a B,
    token: Option<&CancelToken>,
) -> BackendResult<BoxedPairStream<'a>> {
    let stream: BoxedPairStream<'a> = match plan {
        PhysicalPlan::IndexScan { path, orientation } => {
            Box::new(IndexScanOp::new(index, path, *orientation)?)
        }
        PhysicalPlan::Epsilon => Box::new(EpsilonScanOp::new(index.node_count())),
        PhysicalPlan::Join {
            algorithm,
            left,
            right,
        } => {
            let l = build_stream(left, index, token)?;
            let r = build_stream(right, index, token)?;
            match algorithm {
                JoinAlgorithm::Merge => Box::new(MergeJoinOp::new(l, r)),
                JoinAlgorithm::Hash => Box::new(HashJoinOp::new(l, r)),
            }
        }
        PhysicalPlan::Union(children) => {
            let streams: Vec<BoxedPairStream<'a>> = children
                .iter()
                .map(|child| build_stream(child, index, token))
                .collect::<BackendResult<_>>()?;
            Box::new(DistinctOp::new(Box::new(UnionAllOp::new(streams))))
        }
    };
    Ok(match token {
        Some(token) => Box::new(CancelGuard::new(stream, token.clone())),
        None => stream,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::{plan_query, PlannerContext, Strategy};
    use pathix_datagen::paper_example_graph;
    use pathix_graph::{Graph, NodeId};
    use pathix_index::{naive_path_eval, EstimationMode, KPathIndex, PathHistogram};
    use pathix_rpq::{parse, to_disjuncts, RewriteOptions};

    fn fixture(k: usize) -> (Graph, KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, k);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            k,
            EstimationMode::default(),
        );
        (g, index, hist)
    }

    /// Reference answer: union of the per-disjunct reference evaluations.
    fn reference(g: &Graph, query: &str, star_bound: u32) -> Vec<Pair> {
        let expr = parse(query).unwrap().bind(g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::with_star_bound(star_bound)).unwrap();
        let mut out = Vec::new();
        for d in disjuncts {
            out.extend(naive_path_eval(g, &d));
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    #[test]
    fn all_strategies_agree_with_the_reference_on_paper_queries() {
        let queries = [
            "knows",
            "knows/worksFor",
            "supervisor/worksFor-",
            "knows/(knows/worksFor){2,4}/worksFor",
            "(supervisor|worksFor|worksFor-){4,5}",
            "knows-/knows",
            "worksFor?",
            "knows{0,3}",
        ];
        for k in 1..=3 {
            let (g, index, hist) = fixture(k);
            let ctx = PlannerContext::new(&index, &hist);
            for query in queries {
                let expected = reference(&g, query, 4);
                let expr = parse(query).unwrap().bind(&g).unwrap();
                let disjuncts = to_disjuncts(&expr, RewriteOptions::with_star_bound(4)).unwrap();
                for strategy in Strategy::all() {
                    let plan = plan_query(strategy, &disjuncts, &ctx);
                    let result = execute(&plan, &index).unwrap();
                    assert_eq!(
                        result, expected,
                        "strategy {strategy} disagrees on {query:?} with k={k}"
                    );
                }
            }
        }
    }

    #[test]
    fn paper_worked_example_supervisor_works_for_inverse() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let expr = parse("supervisor/worksFor-").unwrap().bind(&g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::MinSupport, &disjuncts, &ctx);
        let result = execute(&plan, &index).unwrap();
        let kim = g.node_id("kim").unwrap();
        let sue = g.node_id("sue").unwrap();
        assert_eq!(result, vec![(kim, sue)]);
    }

    #[test]
    fn epsilon_query_returns_identity() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let expr = parse("()").unwrap().bind(&g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::SemiNaive, &disjuncts, &ctx);
        let result = execute(&plan, &index).unwrap();
        assert_eq!(result.len(), g.node_count());
        assert!(result.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn execute_with_stats_reports_plan_shape() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let expr = parse("knows/worksFor/knows/worksFor")
            .unwrap()
            .bind(&g)
            .unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::SemiNaive, &disjuncts, &ctx);
        let (result, stats) = execute_with_stats(&plan, &index).unwrap();
        assert_eq!(stats.result_pairs, result.len());
        assert!(stats.pairs_pulled >= stats.result_pairs);
        assert_eq!(stats.joins, 1);
        assert_eq!(stats.merge_joins, 1);
    }

    #[test]
    fn queries_with_no_matches_return_empty() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        // supervisor/supervisor has no 2-path in the example graph (only one
        // supervisor edge exists).
        let expr = parse("supervisor/supervisor").unwrap().bind(&g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        for strategy in Strategy::all() {
            let plan = plan_query(strategy, &disjuncts, &ctx);
            assert!(
                execute(&plan, &index).unwrap().is_empty(),
                "strategy {strategy}"
            );
        }
    }

    #[test]
    fn execution_works_through_a_trait_object() {
        let (g, index, hist) = fixture(2);
        let dyn_index: &dyn PathIndexBackend = &index;
        let ctx = PlannerContext::new(dyn_index, &hist);
        let expr = parse("knows/worksFor").unwrap().bind(&g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::MinJoin, &disjuncts, &ctx);
        let via_dyn = execute(&plan, dyn_index).unwrap();
        let via_concrete = execute(&plan, &index).unwrap();
        assert_eq!(via_dyn, via_concrete);
    }

    #[test]
    fn results_are_sorted_and_unique() {
        let (g, index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let expr = parse("(knows|worksFor){1,3}").unwrap().bind(&g).unwrap();
        let disjuncts = to_disjuncts(&expr, RewriteOptions::default()).unwrap();
        let plan = plan_query(Strategy::MinJoin, &disjuncts, &ctx);
        let result = execute(&plan, &index).unwrap();
        assert!(result.windows(2).all(|w| w[0] < w[1]));
        assert!(result
            .iter()
            .all(|&(a, b)| a.0 < g.node_count() as u32 && b.0 < g.node_count() as u32));
        let _ = NodeId(0); // silence unused import lint paths in some cfgs
    }
}
