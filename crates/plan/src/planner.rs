//! Strategy selection and whole-query planning.

use crate::plan::PhysicalPlan;
use crate::{min_join, min_support, naive, semi_naive};
use pathix_index::{CardinalityEstimator, PathHistogram, PathIndexBackend};
use pathix_rpq::LabelPath;

/// The four evaluation strategies of the paper (Sections 4 and 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// k fixed at 1: only single edge labels are scanned, equivalent to
    /// automaton-based evaluation.
    Naive,
    /// Left-to-right chunking into length-k segments.
    SemiNaive,
    /// Recursive split on the most selective length-k sub-path.
    MinSupport,
    /// Minimal number of index lookups, segmentation chosen by cost.
    MinJoin,
}

impl Strategy {
    /// All strategies in the order the paper reports them.
    pub fn all() -> [Strategy; 4] {
        [
            Strategy::Naive,
            Strategy::SemiNaive,
            Strategy::MinSupport,
            Strategy::MinJoin,
        ]
    }

    /// The name used in the paper's figures.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Naive => "naive",
            Strategy::SemiNaive => "semi-naive",
            Strategy::MinSupport => "minSupport",
            Strategy::MinJoin => "minJoin",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Everything a strategy needs to plan: the index backend (for k and the
/// node count) and the histogram (for selectivity estimates).
///
/// The context is generic over the [`PathIndexBackend`], so the same
/// strategies plan against the in-memory, paged and compressed indexes;
/// `B: ?Sized` additionally admits `dyn PathIndexBackend`.
pub struct PlannerContext<'a, B: PathIndexBackend + ?Sized> {
    index: &'a B,
    histogram: &'a PathHistogram,
}

impl<B: PathIndexBackend + ?Sized> Clone for PlannerContext<'_, B> {
    fn clone(&self) -> Self {
        *self
    }
}

impl<B: PathIndexBackend + ?Sized> Copy for PlannerContext<'_, B> {}

impl<B: PathIndexBackend + ?Sized> std::fmt::Debug for PlannerContext<'_, B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PlannerContext")
            .field("backend", &self.index.backend_name())
            .field("k", &self.k())
            .field("node_count", &self.node_count())
            .finish()
    }
}

impl<'a, B: PathIndexBackend + ?Sized> PlannerContext<'a, B> {
    /// Creates a context over an index backend and its histogram.
    pub fn new(index: &'a B, histogram: &'a PathHistogram) -> Self {
        PlannerContext { index, histogram }
    }

    /// The index locality parameter k.
    pub fn k(&self) -> usize {
        self.index.k()
    }

    /// Number of nodes of the indexed graph.
    pub fn node_count(&self) -> usize {
        self.index.node_count()
    }

    /// The histogram used for selectivity estimates.
    pub fn histogram(&self) -> &'a PathHistogram {
        self.histogram
    }

    /// The index backend being planned against.
    pub fn index(&self) -> &'a B {
        self.index
    }

    /// A cardinality estimator over the histogram.
    pub fn estimator(&self) -> CardinalityEstimator<'a> {
        CardinalityEstimator::new(self.histogram, self.node_count())
    }
}

/// Plans a single disjunct (a label path; the empty path is ε).
pub fn plan_disjunct<B: PathIndexBackend + ?Sized>(
    strategy: Strategy,
    disjunct: &LabelPath,
    ctx: &PlannerContext<'_, B>,
) -> PhysicalPlan {
    if disjunct.is_empty() {
        return PhysicalPlan::Epsilon;
    }
    match strategy {
        Strategy::Naive => naive::plan_disjunct(disjunct, ctx),
        Strategy::SemiNaive => semi_naive::plan_disjunct(disjunct, ctx),
        Strategy::MinSupport => min_support::plan_disjunct(disjunct, ctx),
        Strategy::MinJoin => min_join::plan_disjunct(disjunct, ctx),
    }
}

/// Plans a whole query given its disjuncts: the union of the per-disjunct
/// plans (a single disjunct skips the union node).
pub fn plan_query<B: PathIndexBackend + ?Sized>(
    strategy: Strategy,
    disjuncts: &[LabelPath],
    ctx: &PlannerContext<'_, B>,
) -> PhysicalPlan {
    let mut plans: Vec<PhysicalPlan> = disjuncts
        .iter()
        .map(|d| plan_disjunct(strategy, d, ctx))
        .collect();
    match plans.len() {
        0 => PhysicalPlan::Union(Vec::new()),
        1 => plans.pop().expect("one plan"),
        _ => PhysicalPlan::Union(plans),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::SignedLabel;
    use pathix_index::{EstimationMode, KPathIndex};

    fn fixture() -> (KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            2,
            EstimationMode::Exact,
        );
        (index, hist)
    }

    #[test]
    fn strategy_names_match_the_paper() {
        let names: Vec<_> = Strategy::all().iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["naive", "semi-naive", "minSupport", "minJoin"]);
        assert_eq!(Strategy::MinJoin.to_string(), "minJoin");
    }

    #[test]
    fn empty_disjunct_plans_to_epsilon() {
        let (index, hist) = fixture();
        let ctx = PlannerContext::new(&index, &hist);
        for s in Strategy::all() {
            assert_eq!(plan_disjunct(s, &Vec::new(), &ctx), PhysicalPlan::Epsilon);
        }
    }

    #[test]
    fn single_disjunct_skips_union() {
        let (index, hist) = fixture();
        let ctx = PlannerContext::new(&index, &hist);
        let d = vec![SignedLabel::from_code(0)];
        let plan = plan_query(Strategy::SemiNaive, &[d], &ctx);
        assert!(!matches!(plan, PhysicalPlan::Union(_)));
    }

    #[test]
    fn multiple_disjuncts_form_a_union() {
        let (index, hist) = fixture();
        let ctx = PlannerContext::new(&index, &hist);
        let d1 = vec![SignedLabel::from_code(0)];
        let d2 = vec![SignedLabel::from_code(2)];
        let plan = plan_query(Strategy::SemiNaive, &[d1, d2], &ctx);
        match plan {
            PhysicalPlan::Union(children) => assert_eq!(children.len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn context_works_through_a_trait_object() {
        let (index, hist) = fixture();
        let dyn_index: &dyn PathIndexBackend = &index;
        let ctx = PlannerContext::new(dyn_index, &hist);
        assert_eq!(ctx.k(), 2);
        assert_eq!(ctx.node_count(), 9);
        let d = vec![SignedLabel::from_code(0), SignedLabel::from_code(2)];
        let plan = plan_query(Strategy::MinSupport, &[d], &ctx);
        assert!(plan.scan_count() >= 1);
    }

    #[test]
    fn context_accessors() {
        let (index, hist) = fixture();
        let ctx = PlannerContext::new(&index, &hist);
        assert_eq!(ctx.k(), 2);
        assert_eq!(ctx.node_count(), 9);
        assert_eq!(ctx.estimator().node_count(), 9);
        assert!(format!("{ctx:?}").contains("memory"));
    }
}
