//! Physical plan representation.

use pathix_exec::{ScanOrientation, Sortedness};
use pathix_rpq::LabelPath;

/// The join algorithm chosen for a composition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinAlgorithm {
    /// Merge join — requires the left input sorted by target and the right
    /// input sorted by source.
    Merge,
    /// Hash join — no order requirements; the right input is built into a
    /// hash table.
    Hash,
}

/// A physical execution plan for an RPQ (or one of its disjuncts).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PhysicalPlan {
    /// A prefix scan of the k-path index for one label path of length ≤ k.
    IndexScan {
        /// The label path to scan (in its semantic, non-inverted form).
        path: LabelPath,
        /// Whether the scan reads `p` or `p⁻` (target-sorted).
        orientation: ScanOrientation,
    },
    /// The identity relation ε.
    Epsilon,
    /// Composition of two sub-plans on their shared middle node.
    Join {
        /// Merge or hash.
        algorithm: JoinAlgorithm,
        /// Producer of the path prefix.
        left: Box<PhysicalPlan>,
        /// Producer of the path suffix.
        right: Box<PhysicalPlan>,
    },
    /// Union of the plans of all disjuncts (set semantics restored by the
    /// executor's final distinct).
    Union(Vec<PhysicalPlan>),
}

impl PhysicalPlan {
    /// A forward index scan leaf.
    pub fn scan(path: LabelPath) -> PhysicalPlan {
        PhysicalPlan::IndexScan {
            path,
            orientation: ScanOrientation::Forward,
        }
    }

    /// The order in which this plan emits pairs.
    pub fn sortedness(&self) -> Sortedness {
        match self {
            PhysicalPlan::IndexScan { orientation, .. } => match orientation {
                ScanOrientation::Forward => Sortedness::BySource,
                ScanOrientation::Inverse => Sortedness::ByTarget,
            },
            PhysicalPlan::Epsilon => Sortedness::Both,
            PhysicalPlan::Join { .. } | PhysicalPlan::Union(_) => Sortedness::Unsorted,
        }
    }

    /// Composes two plans on their shared middle node, flipping the
    /// orientation of leaf index scans so that a merge join can be used
    /// whenever possible (the paper's "invert the sub-expression to obtain
    /// the correct sort order"), and falling back to a hash join otherwise.
    pub fn compose(left: PhysicalPlan, right: PhysicalPlan) -> PhysicalPlan {
        let left = left.oriented_for_target();
        let right = right.oriented_for_source();
        let algorithm = if left.sortedness().is_by_target() && right.sortedness().is_by_source() {
            JoinAlgorithm::Merge
        } else {
            JoinAlgorithm::Hash
        };
        PhysicalPlan::Join {
            algorithm,
            left: Box::new(left),
            right: Box::new(right),
        }
    }

    /// Re-orients a leaf scan so its output is target-sorted (scan `p⁻`).
    fn oriented_for_target(self) -> PhysicalPlan {
        match self {
            PhysicalPlan::IndexScan { path, .. } => PhysicalPlan::IndexScan {
                path,
                orientation: ScanOrientation::Inverse,
            },
            other => other,
        }
    }

    /// Re-orients a leaf scan so its output is source-sorted (scan `p`).
    fn oriented_for_source(self) -> PhysicalPlan {
        match self {
            PhysicalPlan::IndexScan { path, .. } => PhysicalPlan::IndexScan {
                path,
                orientation: ScanOrientation::Forward,
            },
            other => other,
        }
    }

    /// Total number of joins in the plan.
    pub fn join_count(&self) -> usize {
        match self {
            PhysicalPlan::IndexScan { .. } | PhysicalPlan::Epsilon => 0,
            PhysicalPlan::Join { left, right, .. } => 1 + left.join_count() + right.join_count(),
            PhysicalPlan::Union(children) => children.iter().map(PhysicalPlan::join_count).sum(),
        }
    }

    /// Number of merge joins in the plan.
    pub fn merge_join_count(&self) -> usize {
        match self {
            PhysicalPlan::IndexScan { .. } | PhysicalPlan::Epsilon => 0,
            PhysicalPlan::Join {
                algorithm,
                left,
                right,
            } => {
                usize::from(*algorithm == JoinAlgorithm::Merge)
                    + left.merge_join_count()
                    + right.merge_join_count()
            }
            PhysicalPlan::Union(children) => {
                children.iter().map(PhysicalPlan::merge_join_count).sum()
            }
        }
    }

    /// Number of index-scan leaves in the plan.
    pub fn scan_count(&self) -> usize {
        match self {
            PhysicalPlan::IndexScan { .. } => 1,
            PhysicalPlan::Epsilon => 0,
            PhysicalPlan::Join { left, right, .. } => left.scan_count() + right.scan_count(),
            PhysicalPlan::Union(children) => children.iter().map(PhysicalPlan::scan_count).sum(),
        }
    }

    /// Length of the longest label path scanned by any leaf.
    pub fn max_scanned_path_len(&self) -> usize {
        match self {
            PhysicalPlan::IndexScan { path, .. } => path.len(),
            PhysicalPlan::Epsilon => 0,
            PhysicalPlan::Join { left, right, .. } => left
                .max_scanned_path_len()
                .max(right.max_scanned_path_len()),
            PhysicalPlan::Union(children) => children
                .iter()
                .map(PhysicalPlan::max_scanned_path_len)
                .max()
                .unwrap_or(0),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_graph::SignedLabel;

    fn p(codes: &[u16]) -> LabelPath {
        codes.iter().map(|&c| SignedLabel::from_code(c)).collect()
    }

    #[test]
    fn compose_two_scans_is_a_merge_join() {
        let plan = PhysicalPlan::compose(PhysicalPlan::scan(p(&[0])), PhysicalPlan::scan(p(&[2])));
        match &plan {
            PhysicalPlan::Join {
                algorithm,
                left,
                right,
            } => {
                assert_eq!(*algorithm, JoinAlgorithm::Merge);
                assert_eq!(left.sortedness(), Sortedness::ByTarget);
                assert_eq!(right.sortedness(), Sortedness::BySource);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(plan.join_count(), 1);
        assert_eq!(plan.merge_join_count(), 1);
        assert_eq!(plan.scan_count(), 2);
    }

    #[test]
    fn compose_with_intermediate_result_is_a_hash_join() {
        let inner = PhysicalPlan::compose(PhysicalPlan::scan(p(&[0])), PhysicalPlan::scan(p(&[2])));
        let outer = PhysicalPlan::compose(inner, PhysicalPlan::scan(p(&[4])));
        match &outer {
            PhysicalPlan::Join { algorithm, .. } => assert_eq!(*algorithm, JoinAlgorithm::Hash),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(outer.join_count(), 2);
        assert_eq!(outer.merge_join_count(), 1);
    }

    #[test]
    fn compose_scan_with_epsilon_still_merges() {
        // Epsilon is sorted both ways, so it satisfies either side.
        let plan = PhysicalPlan::compose(PhysicalPlan::Epsilon, PhysicalPlan::scan(p(&[0])));
        match &plan {
            PhysicalPlan::Join { algorithm, .. } => assert_eq!(*algorithm, JoinAlgorithm::Merge),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn counters_on_union_plans() {
        let d1 = PhysicalPlan::compose(PhysicalPlan::scan(p(&[0, 2])), PhysicalPlan::scan(p(&[4])));
        let d2 = PhysicalPlan::scan(p(&[0]));
        let union = PhysicalPlan::Union(vec![d1, d2, PhysicalPlan::Epsilon]);
        assert_eq!(union.join_count(), 1);
        assert_eq!(union.scan_count(), 3);
        assert_eq!(union.max_scanned_path_len(), 2);
        assert_eq!(union.sortedness(), Sortedness::Unsorted);
    }
}
