//! The cost model driving the histogram-guided strategies.
//!
//! Costs are expressed in "pairs touched": an index scan costs its estimated
//! cardinality, a join costs its inputs plus its estimated output, and a hash
//! join additionally pays for building the hash table on its right input.
//! Cardinalities come from the k-path histogram via
//! [`pathix_index::CardinalityEstimator`].

use crate::plan::{JoinAlgorithm, PhysicalPlan};
use pathix_index::CardinalityEstimator;

/// Estimated cardinality and cumulative cost of a plan.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlanCost {
    /// Estimated number of distinct output pairs.
    pub cardinality: f64,
    /// Estimated total work to produce them.
    pub cost: f64,
}

/// Costs a physical plan bottom-up.
pub fn cost_plan(plan: &PhysicalPlan, estimator: &CardinalityEstimator<'_>) -> PlanCost {
    match plan {
        PhysicalPlan::IndexScan { path, .. } => {
            let cardinality = estimator.path_cardinality(path);
            PlanCost {
                cardinality,
                cost: cardinality,
            }
        }
        PhysicalPlan::Epsilon => {
            let n = estimator.node_count() as f64;
            PlanCost {
                cardinality: n,
                cost: n,
            }
        }
        PhysicalPlan::Join {
            algorithm,
            left,
            right,
        } => {
            let l = cost_plan(left, estimator);
            let r = cost_plan(right, estimator);
            let cardinality = estimator.join_cardinality(l.cardinality, r.cardinality);
            let mut cost = l.cost + r.cost + l.cardinality + r.cardinality + cardinality;
            if *algorithm == JoinAlgorithm::Hash {
                // Building the hash table touches the right input once more.
                cost += r.cardinality;
            }
            PlanCost { cardinality, cost }
        }
        PhysicalPlan::Union(children) => {
            let mut cardinality = 0.0;
            let mut cost = 0.0;
            for child in children {
                let c = cost_plan(child, estimator);
                cardinality += c.cardinality;
                cost += c.cost;
            }
            // Final duplicate elimination touches every produced pair.
            PlanCost {
                cardinality,
                cost: cost + cardinality,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_graph::SignedLabel;
    use pathix_index::{EstimationMode, PathHistogram};

    fn sl(code: u16) -> SignedLabel {
        SignedLabel::from_code(code)
    }

    fn estimator_fixture() -> (PathHistogram, usize) {
        let counts = vec![
            (vec![sl(0)], 100),
            (vec![sl(2)], 10),
            (vec![sl(0), sl(2)], 50),
            (vec![sl(2), sl(0)], 40),
        ];
        (
            PathHistogram::build(&counts, 1000, 2, EstimationMode::Exact),
            100,
        )
    }

    #[test]
    fn scan_cost_is_its_cardinality() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        let c = cost_plan(&PhysicalPlan::scan(vec![sl(0)]), &est);
        assert_eq!(c.cardinality, 100.0);
        assert_eq!(c.cost, 100.0);
    }

    #[test]
    fn hash_join_costs_more_than_merge_join() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        let merge = PhysicalPlan::Join {
            algorithm: JoinAlgorithm::Merge,
            left: Box::new(PhysicalPlan::scan(vec![sl(0)])),
            right: Box::new(PhysicalPlan::scan(vec![sl(2)])),
        };
        let hash = PhysicalPlan::Join {
            algorithm: JoinAlgorithm::Hash,
            left: Box::new(PhysicalPlan::scan(vec![sl(0)])),
            right: Box::new(PhysicalPlan::scan(vec![sl(2)])),
        };
        let cm = cost_plan(&merge, &est);
        let ch = cost_plan(&hash, &est);
        assert_eq!(cm.cardinality, ch.cardinality);
        assert!(ch.cost > cm.cost);
    }

    #[test]
    fn join_cardinality_uses_independence_assumption() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        let plan = PhysicalPlan::compose(
            PhysicalPlan::scan(vec![sl(0)]),
            PhysicalPlan::scan(vec![sl(2)]),
        );
        let c = cost_plan(&plan, &est);
        assert!((c.cardinality - 100.0 * 10.0 / 100.0).abs() < 1e-9);
    }

    #[test]
    fn selective_scans_produce_cheaper_plans() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        let cheap = cost_plan(&PhysicalPlan::scan(vec![sl(2)]), &est);
        let pricey = cost_plan(&PhysicalPlan::scan(vec![sl(0)]), &est);
        assert!(cheap.cost < pricey.cost);
    }

    #[test]
    fn union_cost_sums_children_plus_dedup() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        let union = PhysicalPlan::Union(vec![
            PhysicalPlan::scan(vec![sl(0)]),
            PhysicalPlan::scan(vec![sl(2)]),
        ]);
        let c = cost_plan(&union, &est);
        assert_eq!(c.cardinality, 110.0);
        assert_eq!(c.cost, 100.0 + 10.0 + 110.0);
    }

    /// Regression test for the zero-estimate degeneration: a label path
    /// absent from the histogram used to estimate 0, so every plan containing
    /// it cost ~0 and the `minSupport`/`minJoin` cost comparison could not
    /// tell candidates apart. With the floor of 1 the ordering stays strict.
    #[test]
    fn absent_paths_floor_at_one_so_cost_ordering_never_degenerates() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        // sl(9) is absent from the histogram.
        let absent = PhysicalPlan::scan(vec![sl(9)]);
        let c = cost_plan(&absent, &est);
        assert_eq!(c.cardinality, 1.0, "absent paths estimate the floor");
        assert!(c.cost >= 1.0);

        // A join involving the absent path still costs strictly more than the
        // bare scans it contains — zero estimates used to collapse this sum.
        let join = PhysicalPlan::compose(
            PhysicalPlan::scan(vec![sl(0)]),
            PhysicalPlan::scan(vec![sl(9)]),
        );
        let cj = cost_plan(&join, &est);
        let scan0 = cost_plan(&PhysicalPlan::scan(vec![sl(0)]), &est);
        assert!(cj.cost > scan0.cost, "{cj:?} vs {scan0:?}");
        assert!(cj.cardinality > 0.0);

        // And two candidates that differ only in a known sub-path keep their
        // strict cost order even when both contain the absent path.
        let cheap = PhysicalPlan::compose(
            PhysicalPlan::scan(vec![sl(2)]),
            PhysicalPlan::scan(vec![sl(9)]),
        );
        let pricey = PhysicalPlan::compose(
            PhysicalPlan::scan(vec![sl(0)]),
            PhysicalPlan::scan(vec![sl(9)]),
        );
        assert!(
            cost_plan(&cheap, &est).cost < cost_plan(&pricey, &est).cost,
            "cost ordering must not degenerate on paths with no statistics"
        );
    }

    #[test]
    fn epsilon_costs_node_count() {
        let (h, n) = estimator_fixture();
        let est = CardinalityEstimator::new(&h, n);
        let c = cost_plan(&PhysicalPlan::Epsilon, &est);
        assert_eq!(c.cardinality, n as f64);
    }
}
