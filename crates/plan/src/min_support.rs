//! The minSupport strategy: recursive splitting on the most selective
//! length-k sub-path.
//!
//! Following Section 4 of the paper, a disjunct `D` longer than k is split
//! around its most selective contiguous length-k sub-path `D'` (per the
//! histogram `sel_{G,k}`), the two remaining pieces are planned recursively,
//! and the alternative join orders around `D'` are costed, keeping the
//! cheapest. Scanning `D'` versus its inverse `D'⁻` (the paper's third and
//! fourth alternatives) is handled inside [`PhysicalPlan::compose`], which
//! orients leaf scans to enable merge joins automatically.

use crate::cost::cost_plan;
use crate::plan::PhysicalPlan;
use crate::planner::PlannerContext;
use pathix_index::{CardinalityEstimator, PathIndexBackend};
use pathix_rpq::LabelPath;

/// Plans one non-empty disjunct with the minSupport strategy.
pub fn plan_disjunct<B: PathIndexBackend + ?Sized>(
    disjunct: &LabelPath,
    ctx: &PlannerContext<'_, B>,
) -> PhysicalPlan {
    let estimator = ctx.estimator();
    plan_rec(disjunct, ctx, &estimator)
}

fn plan_rec<B: PathIndexBackend + ?Sized>(
    disjunct: &[pathix_graph::SignedLabel],
    ctx: &PlannerContext<'_, B>,
    estimator: &CardinalityEstimator<'_>,
) -> PhysicalPlan {
    debug_assert!(!disjunct.is_empty());
    let k = ctx.k();
    if disjunct.len() <= k {
        return PhysicalPlan::scan(disjunct.to_vec());
    }

    // Step 2: find the most selective length-k window.
    let split = most_selective_window(disjunct, k, ctx);
    let d_prime = &disjunct[split..split + k];
    let d_left = &disjunct[..split];
    let d_right = &disjunct[split + k..];

    // Step 3: recur on the left and right remainders.
    let left_plan = (!d_left.is_empty()).then(|| plan_rec(d_left, ctx, estimator));
    let right_plan = (!d_right.is_empty()).then(|| plan_rec(d_right, ctx, estimator));
    let pivot = PhysicalPlan::scan(d_prime.to_vec());

    // Step 4: cost the alternative join orders and keep the cheapest.
    match (left_plan, right_plan) {
        (None, None) => pivot,
        (Some(l), None) => PhysicalPlan::compose(l, pivot),
        (None, Some(r)) => PhysicalPlan::compose(pivot, r),
        (Some(l), Some(r)) => {
            let left_first =
                PhysicalPlan::compose(PhysicalPlan::compose(l.clone(), pivot.clone()), r.clone());
            let right_first = PhysicalPlan::compose(l, PhysicalPlan::compose(pivot, r));
            let c_left = cost_plan(&left_first, estimator).cost;
            let c_right = cost_plan(&right_first, estimator).cost;
            if c_left <= c_right {
                left_first
            } else {
                right_first
            }
        }
    }
}

/// Index of the most selective (smallest estimated cardinality) length-k
/// window of `disjunct`; ties break toward the leftmost window.
fn most_selective_window<B: PathIndexBackend + ?Sized>(
    disjunct: &[pathix_graph::SignedLabel],
    k: usize,
    ctx: &PlannerContext<'_, B>,
) -> usize {
    let histogram = ctx.histogram();
    let mut best_index = 0;
    let mut best_estimate = f64::INFINITY;
    for start in 0..=disjunct.len() - k {
        let window = &disjunct[start..start + k];
        let estimate = histogram
            .estimated_cardinality(window)
            .unwrap_or(f64::INFINITY);
        if estimate < best_estimate {
            best_estimate = estimate;
            best_index = start;
        }
    }
    best_index
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::planner::PlannerContext;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::{Graph, SignedLabel};
    use pathix_index::{EstimationMode, KPathIndex, PathHistogram};

    fn fixture(k: usize) -> (Graph, KPathIndex, PathHistogram) {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, k);
        let hist = PathHistogram::build(
            index.per_path_counts(),
            index.paths_k_size(),
            k,
            EstimationMode::Exact,
        );
        (g, index, hist)
    }

    fn sl(g: &Graph, name: &str, backward: bool) -> SignedLabel {
        let id = g.label_id(name).unwrap();
        if backward {
            SignedLabel::backward(id)
        } else {
            SignedLabel::forward(id)
        }
    }

    #[test]
    fn short_disjuncts_are_single_scans() {
        let (g, index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let k = sl(&g, "knows", false);
        let plan = plan_disjunct(&vec![k, k], &ctx);
        assert!(matches!(plan, PhysicalPlan::IndexScan { .. }));
    }

    #[test]
    fn split_prefers_the_most_selective_window() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let knows = sl(&g, "knows", false);
        let sup = sl(&g, "supervisor", false);
        // supervisor has a single edge, so any window containing it is far
        // more selective than knows/knows.
        let disjunct = vec![knows, knows, knows, sup];
        let idx = most_selective_window(&disjunct, 2, &ctx);
        assert_eq!(idx, 2, "window [knows, supervisor] should win");
    }

    #[test]
    fn plans_cover_the_whole_disjunct() {
        let (g, index, hist) = fixture(2);
        let ctx = PlannerContext::new(&index, &hist);
        let knows = sl(&g, "knows", false);
        let works = sl(&g, "worksFor", false);
        for len in 1usize..=7 {
            let disjunct: LabelPath = (0..len)
                .map(|i| if i % 2 == 0 { knows } else { works })
                .collect();
            let plan = plan_disjunct(&disjunct, &ctx);
            // Scanned labels, re-concatenated in order, must equal the
            // disjunct.
            let mut scanned = Vec::new();
            collect_scans_in_order(&plan, &mut scanned);
            let rebuilt: LabelPath = scanned.concat();
            assert_eq!(rebuilt, disjunct, "length {len}");
            // minSupport does not minimize the number of lookups (that is
            // minJoin's job) but it can never need more scans than labels.
            assert!(plan.scan_count() >= len.div_ceil(2).max(1));
            assert!(plan.scan_count() <= len);
        }
    }

    fn collect_scans_in_order(plan: &PhysicalPlan, out: &mut Vec<LabelPath>) {
        match plan {
            PhysicalPlan::IndexScan { path, .. } => out.push(path.clone()),
            PhysicalPlan::Epsilon => {}
            PhysicalPlan::Join { left, right, .. } => {
                collect_scans_in_order(left, out);
                collect_scans_in_order(right, out);
            }
            PhysicalPlan::Union(children) => {
                for c in children {
                    collect_scans_in_order(c, out);
                }
            }
        }
    }

    #[test]
    fn produces_at_least_one_merge_join_on_long_disjuncts() {
        let (g, index, hist) = fixture(3);
        let ctx = PlannerContext::new(&index, &hist);
        let knows = sl(&g, "knows", false);
        let works = sl(&g, "worksFor", false);
        let disjunct = vec![knows, knows, works, knows, works, works];
        let plan = plan_disjunct(&disjunct, &ctx);
        assert!(plan.join_count() >= 1);
        assert!(plan.merge_join_count() >= 1);
    }
}
