//! Structural invariant auditing.
//!
//! The k-path index `I_{G,k}` is stored under four representations, and the
//! paper's correctness argument leans on structural invariants each of them
//! maintains across mutations: sorted per-path relations, tight chunk and
//! segment fences, superset-preserving source blooms, and a copy-on-write
//! page graph whose retired pages stay unreachable from live snapshots.
//! The differential harnesses only compare *answers*, so a latent corruption
//! that happens to cancel out on the probed shapes would ship silently.
//!
//! This crate defines the vocabulary those checks share: a backend
//! implements [`StructuralAudit`] and walks its own structures, recording
//! every invariant it evaluates — and every violation it finds — into an
//! [`AuditReport`]. The report is structured (backend, location, invariant
//! name, detail) so harnesses can assert on it and the CLI can print it.
//!
//! The crate is a leaf on purpose: it depends on nothing, so every storage
//! crate can implement the trait without dependency cycles.

use std::fmt;
use std::time::{Duration, Instant};

/// A single violated invariant, attributed to the structure that broke it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditViolation {
    /// The audited backend (e.g. `"memory"`, `"paged-btree"`).
    pub backend: String,
    /// Where inside the backend the violation sits (a path, a page id, a
    /// segment index) — human-readable, not machine-parsed.
    pub location: String,
    /// The short stable name of the broken invariant (e.g.
    /// `"chunk-sorted"`, `"free-reachable-disjoint"`).
    pub invariant: &'static str,
    /// What exactly was observed.
    pub detail: String,
}

impl fmt::Display for AuditViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {} at {}: {}",
            self.backend, self.invariant, self.location, self.detail
        )
    }
}

/// Per-backend accounting: how many invariant evaluations ran, how many
/// failed, and how long the walk took.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditSection {
    /// The audited backend's name.
    pub backend: String,
    /// Number of individual invariant evaluations performed.
    pub checks: u64,
    /// Number of violations recorded in this section.
    pub violations: u64,
    /// Wall-clock time spent walking this backend.
    pub elapsed: Duration,
}

/// The result of auditing one or more structures.
///
/// A report accumulates across backends: callers open a section per backend
/// with [`AuditReport::run`] (which times the walk), and implementations
/// record evaluations through [`AuditReport::check`] /
/// [`AuditReport::violation`].
#[derive(Debug, Default)]
pub struct AuditReport {
    violations: Vec<AuditViolation>,
    sections: Vec<AuditSection>,
    current: Option<OpenSection>,
}

#[derive(Debug)]
struct OpenSection {
    backend: String,
    checks: u64,
    violations: u64,
    started: Instant,
}

impl AuditReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// Audit `subject` under the given backend name, timing the walk and
    /// recording it as a section.
    pub fn run(&mut self, backend: &str, subject: &dyn StructuralAudit) {
        self.begin(backend);
        subject.audit(self);
        self.end();
    }

    /// Open a section by hand (prefer [`AuditReport::run`]). A section left
    /// open is closed implicitly by the next `begin` or by accessors.
    pub fn begin(&mut self, backend: &str) {
        self.end();
        self.current = Some(OpenSection {
            backend: backend.to_string(),
            checks: 0,
            violations: 0,
            started: Instant::now(),
        });
    }

    /// Close the open section, if any.
    pub fn end(&mut self) {
        if let Some(open) = self.current.take() {
            self.sections.push(AuditSection {
                backend: open.backend,
                checks: open.checks,
                violations: open.violations,
                elapsed: open.started.elapsed(),
            });
        }
    }

    /// Evaluate one invariant: counts the check, and records a violation
    /// with `detail()` when `ok` is false. The detail closure only runs on
    /// failure so the pass path stays allocation-free.
    pub fn check(
        &mut self,
        invariant: &'static str,
        location: &str,
        ok: bool,
        detail: impl FnOnce() -> String,
    ) {
        self.count_check();
        if !ok {
            self.record(invariant, location, detail());
        }
    }

    /// Record a violation directly (for checks whose evaluation already
    /// happened elsewhere). Also counts as one evaluation.
    pub fn violation(&mut self, invariant: &'static str, location: &str, detail: String) {
        self.count_check();
        self.record(invariant, location, detail);
    }

    fn count_check(&mut self) {
        if self.current.is_none() {
            self.begin("unattributed");
        }
        if let Some(open) = &mut self.current {
            open.checks += 1;
        }
    }

    fn record(&mut self, invariant: &'static str, location: &str, detail: String) {
        let backend = self
            .current
            .as_ref()
            .map(|open| open.backend.clone())
            .unwrap_or_else(|| "unattributed".to_string());
        if let Some(open) = &mut self.current {
            open.violations += 1;
        }
        self.violations.push(AuditViolation {
            backend,
            location: location.to_string(),
            invariant,
            detail,
        });
    }

    /// True when no violation was recorded.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }

    /// Every recorded violation, in discovery order.
    pub fn violations(&self) -> &[AuditViolation] {
        &self.violations
    }

    /// Total number of invariant evaluations across all sections.
    pub fn checks(&self) -> u64 {
        let open = self.current.as_ref().map(|o| o.checks).unwrap_or(0);
        self.sections.iter().map(|s| s.checks).sum::<u64>() + open
    }

    /// Closed per-backend sections (call [`AuditReport::end`] first if a
    /// section is still open).
    pub fn sections(&self) -> &[AuditSection] {
        &self.sections
    }

    /// Panic with a readable listing unless the report is clean. Test
    /// harnesses use this as their post-batch gate.
    pub fn assert_clean(&self, context: &str) {
        assert!(
            self.is_clean(),
            "structural audit failed ({context}): {} violation(s) across {} check(s)\n{}",
            self.violations.len(),
            self.checks(),
            self
        );
    }
}

impl fmt::Display for AuditReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for section in &self.sections {
            writeln!(
                f,
                "  {:<14} {:>6} checks  {:>3} violations  {:>9.3?}",
                section.backend, section.checks, section.violations, section.elapsed
            )?;
        }
        for violation in &self.violations {
            writeln!(f, "  VIOLATION {violation}")?;
        }
        Ok(())
    }
}

/// A structure that can verify its own invariants.
///
/// Implementations walk the complete structure (every chunk, page, segment)
/// and record each invariant evaluation in the report; they must not panic
/// on corrupt input — the whole point is to *report* corruption.
pub trait StructuralAudit {
    /// Verify every structural invariant, recording results in `report`.
    fn audit(&self, report: &mut AuditReport);
}

#[cfg(test)]
mod tests {
    use super::*;

    struct TwoChecks;

    impl StructuralAudit for TwoChecks {
        fn audit(&self, report: &mut AuditReport) {
            report.check("always-holds", "here", true, || unreachable!());
            report.check("always-broken", "there", false, || "saw 7, want 6".into());
        }
    }

    #[test]
    fn report_accumulates_sections_checks_and_violations() {
        let mut report = AuditReport::new();
        report.run("test-backend", &TwoChecks);
        assert!(!report.is_clean());
        assert_eq!(report.checks(), 2);
        assert_eq!(report.sections().len(), 1);
        let section = &report.sections()[0];
        assert_eq!(section.backend, "test-backend");
        assert_eq!(section.checks, 2);
        assert_eq!(section.violations, 1);
        let violation = &report.violations()[0];
        assert_eq!(violation.invariant, "always-broken");
        assert_eq!(violation.backend, "test-backend");
        assert_eq!(violation.location, "there");
        assert!(violation.detail.contains("saw 7"));
    }

    #[test]
    fn clean_report_asserts_quietly_and_display_lists_violations() {
        let mut clean = AuditReport::new();
        clean.begin("b");
        clean.check("ok", "x", true, String::new);
        clean.end();
        clean.assert_clean("unit");

        let mut dirty = AuditReport::new();
        dirty.begin("b");
        dirty.violation("broken", "page 3", "fence misses key".into());
        dirty.end();
        let text = format!("{dirty}");
        assert!(text.contains("broken"), "{text}");
        assert!(text.contains("page 3"), "{text}");
        let caught = std::panic::catch_unwind(|| dirty.assert_clean("unit"));
        assert!(caught.is_err());
    }
}
