//! Galloping versus linear advancement inside the merge join, on skewed
//! inputs — the micro-counterpart of experiment X11's join workloads.
//!
//! The left input emits a few widely-spaced keys; the right input is a dense
//! run of keys. Linear advancement walks every right pair between two left
//! keys, galloping doubles its stride and finishes the same skip in
//! O(log gap). The wider the skew, the bigger the gap. The inputs are
//! borrowed slices (not per-iteration clones), so the measurement isolates
//! join advancement.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_exec::{collect_pairs, MergeJoinOp, Pair, PairBatch, PairStream, Sortedness};
use pathix_graph::NodeId;
use pathix_index::BackendResult;

/// A zero-copy stream over a pre-built, pre-sorted pair slice.
struct SliceStream<'a> {
    pairs: &'a [Pair],
    pos: usize,
    sortedness: Sortedness,
}

impl<'a> SliceStream<'a> {
    fn new(pairs: &'a [Pair], sortedness: Sortedness) -> Self {
        SliceStream {
            pairs,
            pos: 0,
            sortedness,
        }
    }
}

impl PairStream for SliceStream<'_> {
    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        batch.clear();
        let take = batch.capacity().min(self.pairs.len() - self.pos);
        batch.extend_from_pairs(&self.pairs[self.pos..self.pos + take]);
        self.pos += take;
        Ok(take)
    }

    fn sortedness(&self) -> Sortedness {
        self.sortedness
    }
}

/// Left side: `matches` pairs whose targets are `stride` apart.
fn sparse_left(matches: u32, stride: u32) -> Vec<Pair> {
    (0..matches)
        .map(|i| (NodeId(i), NodeId(i * stride)))
        .collect()
}

/// Right side: one pair per source over the whole dense domain.
fn dense_right(n: u32) -> Vec<Pair> {
    (0..n).map(|s| (NodeId(s), NodeId(0))).collect()
}

fn merge_advancement(c: &mut Criterion) {
    let mut group = c.benchmark_group("merge_gallop");
    group
        .sample_size(20)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    const MATCHES: u32 = 256;
    for stride in [16u32, 256, 4096] {
        let left = sparse_left(MATCHES, stride);
        let right = dense_right(MATCHES * stride);
        let expected = MATCHES as usize;
        for (name, gallop) in [("gallop", true), ("linear", false)] {
            group.bench_with_input(
                BenchmarkId::new(name, format!("stride-{stride}")),
                &gallop,
                |b, &gallop| {
                    b.iter(|| {
                        let join = MergeJoinOp::with_advancement(
                            Box::new(SliceStream::new(&left, Sortedness::ByTarget)),
                            Box::new(SliceStream::new(&right, Sortedness::BySource)),
                            gallop,
                        );
                        let out = collect_pairs(join).expect("join failed");
                        assert_eq!(out.len(), expected);
                        out.len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, merge_advancement);
criterion_main!(benches);
