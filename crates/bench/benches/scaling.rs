//! Criterion bench for experiment X2: query time vs graph size
//! (Barabási–Albert graphs, k = 2, a fixed mixed workload).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::datasets::build_ba;
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::{WorkloadConfig, WorkloadGenerator};

fn scaling_bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for nodes in [500usize, 1_000, 2_000] {
        let graph = build_ba(nodes, 7);
        let db = PathDb::build(graph.clone(), PathDbConfig::with_k(2));
        let mut generator = WorkloadGenerator::new(
            &graph,
            WorkloadConfig {
                max_chain_len: 4,
                max_recursion: 2,
                seed: 1234,
                ..Default::default()
            },
        );
        let workload = generator.generate_mixed(6);
        for strategy in Strategy::all() {
            group.bench_with_input(
                BenchmarkId::new(strategy.name(), nodes),
                &workload,
                |b, workload| {
                    b.iter(|| {
                        let mut total = 0usize;
                        for q in workload {
                            total += db
                                .run(&q.text, QueryOptions::with_strategy(strategy))
                                .unwrap()
                                .len();
                        }
                        criterion::black_box(total)
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, scaling_bench);
criterion_main!(benches);
