//! Criterion bench for experiment S6: path-index evaluation vs the Datalog
//! baseline on the Advogato queries (small scale — the baseline is orders of
//! magnitude slower, which is the point).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::build_advogato_db;
use pathix_core::{QueryOptions, Strategy};
use pathix_datagen::advogato_queries;

fn datalog_bench(c: &mut Criterion) {
    let scale = 0.01;
    let db = build_advogato_db(scale, 3);
    let queries = advogato_queries();
    let mut group = c.benchmark_group("datalog_speedup");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for q in queries.iter().take(4) {
        group.bench_with_input(
            BenchmarkId::new("index_minSupport", &q.name),
            &q.text,
            |b, text| {
                b.iter(|| {
                    let r = db
                        .run(text, QueryOptions::with_strategy(Strategy::MinSupport))
                        .unwrap();
                    criterion::black_box(r.len())
                })
            },
        );
        group.bench_with_input(BenchmarkId::new("datalog", &q.name), &q.text, |b, text| {
            b.iter(|| {
                let r = db.query_datalog(text).unwrap();
                criterion::black_box(r.len())
            })
        });
    }
    group.finish();
}

criterion_group!(benches, datalog_bench);
criterion_main!(benches);
