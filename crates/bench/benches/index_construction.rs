//! Criterion bench for experiment X1: k-path index construction time vs k.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::{bench_scale, build_advogato};
use pathix_core::{PathDb, PathDbConfig};

fn index_construction_bench(c: &mut Criterion) {
    let scale = (bench_scale() * 0.3).clamp(0.005, 0.1);
    let graph = build_advogato(scale);
    let mut group = c.benchmark_group("index_construction");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for k in 1..=3usize {
        group.bench_with_input(BenchmarkId::new("build", k), &k, |b, &k| {
            b.iter(|| {
                let db = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
                criterion::black_box(db.stats().index.entries)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, index_construction_bench);
criterion_main!(benches);
