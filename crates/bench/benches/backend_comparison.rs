//! Query latency of the same RPQ workload across the three index backends
//! (in-memory B+tree, paged buffer-pool B+tree, compressed pair blocks) on
//! the Advogato-like dataset — the bench counterpart of experiment X7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::{bench_scale, build_advogato};
use pathix_core::{BackendChoice, PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;

fn backend_configs() -> Vec<(&'static str, BackendChoice)> {
    vec![
        ("memory", BackendChoice::Memory),
        ("paged", BackendChoice::PagedInMemory { pool_frames: 256 }),
        ("compressed", BackendChoice::Compressed),
    ]
}

fn backend_query_latency(c: &mut Criterion) {
    let scale = bench_scale();
    let graph = build_advogato(scale);
    let queries = advogato_queries();
    let mut group = c.benchmark_group("backend_comparison");
    group
        .sample_size(10)
        .warm_up_time(std::time::Duration::from_millis(200))
        .measurement_time(std::time::Duration::from_secs(2));
    for (name, backend) in backend_configs() {
        let config = PathDbConfig::with_k(2).with_backend(backend);
        let db = PathDb::try_build(graph.clone(), config).expect("backend build failed");
        for query in &queries {
            group.bench_with_input(
                BenchmarkId::new(name, &query.name),
                &query.text,
                |b, text| {
                    b.iter(|| {
                        db.run(text, QueryOptions::with_strategy(Strategy::MinSupport))
                            .expect("query failed")
                            .len()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, backend_query_latency);
criterion_main!(benches);
