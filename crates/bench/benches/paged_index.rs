//! Criterion bench for experiment X6: the k-path index on disk — paged
//! B+tree construction, compressed-block construction and scan latency of the
//! three representations (in-memory B+tree, paged B+tree, compressed blocks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::{bench_scale, build_advogato};
use pathix_graph::SignedLabel;
use pathix_index::KPathIndex;
use pathix_pagestore::{CompressedPathStore, PagedPathIndex};

fn paged_index_bench(c: &mut Criterion) {
    let scale = (bench_scale() * 0.3).clamp(0.005, 0.1);
    let graph = build_advogato(scale);
    let k = 2;

    let mut group = c.benchmark_group("paged_index_build");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(2));
    group.bench_function(BenchmarkId::new("in_memory_btree", k), |b| {
        b.iter(|| criterion::black_box(KPathIndex::build(&graph, k).stats().entries))
    });
    group.bench_function(BenchmarkId::new("paged_btree", k), |b| {
        b.iter(|| {
            criterion::black_box(
                PagedPathIndex::build_in_memory(&graph, k, 256)
                    .expect("paged build")
                    .len(),
            )
        })
    });
    group.bench_function(BenchmarkId::new("compressed_blocks", k), |b| {
        b.iter(|| criterion::black_box(CompressedPathStore::build(&graph, k).path_count()))
    });
    group.finish();

    // Scan latency of one 2-path across the three representations.
    let memory = KPathIndex::build(&graph, k);
    let paged = PagedPathIndex::build_in_memory(&graph, k, 256).expect("paged build");
    let compressed = CompressedPathStore::from_index(&memory);
    let journeyer = SignedLabel::forward(
        graph
            .label_id("journeyer")
            .expect("advogato graphs have the journeyer label"),
    );
    let path = vec![journeyer, journeyer];

    let mut group = c.benchmark_group("paged_index_scan");
    group.sample_size(20);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    group.bench_function("in_memory_btree", |b| {
        b.iter(|| criterion::black_box(memory.scan_path(&path).count()))
    });
    group.bench_function("paged_btree_warm", |b| {
        b.iter(|| criterion::black_box(paged.scan_path(&path).expect("scan").len()))
    });
    group.bench_function("compressed_blocks", |b| {
        b.iter(|| criterion::black_box(compressed.scan_path(&path).count()))
    });
    group.finish();
}

criterion_group!(benches, paged_index_bench);
criterion_main!(benches);
