//! Criterion bench for experiment X5: the native pipeline versus the
//! relational deployment (the paper's RPQ→SQL translation executed by the
//! `pathix-sql` engine) on the Advogato query workload.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::{bench_scale, build_advogato};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use pathix_sql::SqlPathDb;

fn sql_vs_native_bench(c: &mut Criterion) {
    let scale = (bench_scale() * 0.2).clamp(0.005, 0.05);
    let graph = build_advogato(scale);
    let native = PathDb::build(graph, PathDbConfig::with_k(3));
    let relational = SqlPathDb::from_path_db(&native).unwrap();

    let mut group = c.benchmark_group("sql_vs_native");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for q in advogato_queries().iter().take(4) {
        group.bench_with_input(
            BenchmarkId::new("native_minSupport", &q.name),
            &q.text,
            |b, t| {
                b.iter(|| {
                    criterion::black_box(
                        native
                            .run(t, QueryOptions::with_strategy(Strategy::MinSupport))
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("path_index_sql", &q.name),
            &q.text,
            |b, t| b.iter(|| criterion::black_box(relational.query_pairs(t).unwrap().len())),
        );
    }
    group.finish();
}

criterion_group!(benches, sql_vs_native_bench);
criterion_main!(benches);
