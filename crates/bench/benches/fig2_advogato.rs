//! Criterion bench for experiment F2 (Figure 2): the eight Advogato queries
//! under each strategy, for k ∈ {1, 2, 3}.
//!
//! Group/function ids follow `k{K}/{query}/{strategy}` so `cargo bench` output
//! can be read directly as the figure's series.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::{bench_scale, build_advogato_db};
use pathix_core::{QueryOptions, Strategy};
use pathix_datagen::advogato_queries;

fn fig2_bench(c: &mut Criterion) {
    // Criterion repeats each measurement many times; use a reduced scale so a
    // full sweep stays in CI-friendly territory.
    let scale = (bench_scale() * 0.3).clamp(0.005, 0.1);
    let queries = advogato_queries();
    for k in 1..=3usize {
        let db = build_advogato_db(scale, k);
        let mut group = c.benchmark_group(format!("fig2/k{k}"));
        group.sample_size(10);
        group.warm_up_time(std::time::Duration::from_millis(300));
        group.measurement_time(std::time::Duration::from_secs(1));
        for q in &queries {
            for strategy in Strategy::all() {
                group.bench_with_input(
                    BenchmarkId::new(&q.name, strategy.name()),
                    &q.text,
                    |b, text| {
                        b.iter(|| {
                            let result =
                                db.run(text, QueryOptions::with_strategy(strategy)).unwrap();
                            criterion::black_box(result.len())
                        })
                    },
                );
            }
        }
        group.finish();
    }
}

criterion_group!(benches, fig2_bench);
criterion_main!(benches);
