//! Criterion bench for experiment X3: the value of the histogram — semi-naive
//! (no statistics) vs minSupport with equi-depth vs exact statistics.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use pathix_bench::{bench_scale, build_advogato};
use pathix_core::{EstimationMode, PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;

fn ablation_bench(c: &mut Criterion) {
    let scale = (bench_scale() * 0.3).clamp(0.005, 0.1);
    let graph = build_advogato(scale);
    let equi = PathDb::build(
        graph.clone(),
        PathDbConfig {
            estimation: EstimationMode::EquiDepth { buckets: 32 },
            ..PathDbConfig::with_k(3)
        },
    );
    let exact = PathDb::build(
        graph,
        PathDbConfig {
            estimation: EstimationMode::Exact,
            ..PathDbConfig::with_k(3)
        },
    );
    let queries = advogato_queries();
    let mut group = c.benchmark_group("histogram_ablation");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_millis(300));
    group.measurement_time(std::time::Duration::from_secs(1));
    for q in queries.iter().take(4) {
        group.bench_with_input(
            BenchmarkId::new("semi_naive_no_stats", &q.name),
            &q.text,
            |b, t| {
                b.iter(|| {
                    criterion::black_box(
                        equi.run(t, QueryOptions::with_strategy(Strategy::SemiNaive))
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("minSupport_equi_depth", &q.name),
            &q.text,
            |b, t| {
                b.iter(|| {
                    criterion::black_box(
                        equi.run(t, QueryOptions::with_strategy(Strategy::MinSupport))
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("minSupport_exact", &q.name),
            &q.text,
            |b, t| {
                b.iter(|| {
                    criterion::black_box(
                        exact
                            .run(t, QueryOptions::with_strategy(Strategy::MinSupport))
                            .unwrap()
                            .len(),
                    )
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, ablation_bench);
criterion_main!(benches);
