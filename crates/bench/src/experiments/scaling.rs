//! Experiment **X2** (extension, thesis-style): query time as a function of
//! graph size on Barabási–Albert graphs, for the four strategies.

use crate::datasets::build_ba;
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::{WorkloadConfig, WorkloadGenerator};

/// One `(graph size, strategy)` measurement, averaged over a query workload.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    /// Nodes in the graph.
    pub nodes: usize,
    /// Edges in the graph.
    pub edges: usize,
    /// Index locality parameter.
    pub k: usize,
    /// Strategy name.
    pub strategy: String,
    /// Mean query time over the workload in milliseconds.
    pub mean_ms: f64,
    /// Total answers over the workload.
    pub total_answers: usize,
}

/// The X2 report.
#[derive(Debug, Clone)]
pub struct ScalingReport {
    /// The graph sizes measured.
    pub sizes: Vec<usize>,
    /// All rows.
    pub rows: Vec<ScalingRow>,
}

/// Runs the scaling experiment over the given node counts with a k = 2
/// index and a fixed mixed workload of 8 queries.
pub fn scaling(sizes: &[usize]) -> ScalingReport {
    let k = 2;
    println!("== X2: scaling with graph size (Barabási–Albert, k = {k})\n");
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "nodes",
        "edges",
        "naive (ms)",
        "semi-naive (ms)",
        "minSupport (ms)",
        "minJoin (ms)",
    ]);
    for &nodes in sizes {
        let graph = build_ba(nodes, 7);
        let db = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
        let mut generator = WorkloadGenerator::new(
            &graph,
            WorkloadConfig {
                max_chain_len: 4,
                max_recursion: 2,
                seed: 1234,
                ..Default::default()
            },
        );
        let workload = generator.generate_mixed(8);
        let mut cells = vec![nodes.to_string(), graph.edge_count().to_string()];
        for strategy in Strategy::all() {
            let mut total_ms = 0.0;
            let mut total_answers = 0;
            for q in &workload {
                let result = db
                    .run(&q.text, QueryOptions::with_strategy(strategy))
                    .unwrap();
                total_ms += result.stats.elapsed.as_secs_f64() * 1e3;
                total_answers += result.len();
            }
            let mean_ms = total_ms / workload.len() as f64;
            cells.push(format!("{mean_ms:.3}"));
            rows.push(ScalingRow {
                nodes,
                edges: graph.edge_count(),
                k,
                strategy: strategy.name().to_owned(),
                mean_ms,
                total_answers,
            });
        }
        table.push_row(cells);
    }
    println!("{}", table.render());
    println!(
        "expected shape: all strategies grow with graph size; the histogram-guided strategies \
         stay below naive throughout.\n"
    );
    let report = ScalingReport {
        sizes: sizes.to_vec(),
        rows,
    };
    write_json("scaling", &report);
    report
}

crate::impl_to_json!(ScalingRow {
    nodes,
    edges,
    k,
    strategy,
    mean_ms,
    total_answers
});
crate::impl_to_json!(ScalingReport { sizes, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_runs_on_small_sizes() {
        let report = scaling(&[50, 100]);
        assert_eq!(report.rows.len(), 2 * 4);
        assert!(report.rows.iter().all(|r| r.mean_ms >= 0.0));
    }
}
