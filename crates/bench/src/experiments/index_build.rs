//! Experiment **X1** (extension, thesis-style): k-path index construction
//! cost and size as a function of k, on the Advogato-like graph and a
//! Barabási–Albert graph.

use crate::datasets::{build_advogato, build_ba};
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig};
use pathix_graph::Graph;
use std::time::Instant;

/// One `(dataset, k)` measurement.
#[derive(Debug, Clone)]
pub struct IndexBuildRow {
    /// Dataset name.
    pub dataset: String,
    /// Nodes in the graph.
    pub nodes: usize,
    /// Edges in the graph.
    pub edges: usize,
    /// Locality parameter.
    pub k: usize,
    /// Index entries (`⟨p, a, b⟩` triples).
    pub entries: u64,
    /// Distinct label paths indexed.
    pub paths: usize,
    /// Chunks of the in-memory backend's shared-run index (X1 builds
    /// `Memory`, whose runs are cut into bounded `Arc`-shared chunks).
    pub chunks: usize,
    /// Approximate key bytes stored.
    pub approx_bytes: u64,
    /// Wall-clock construction time in milliseconds (enumeration +
    /// histogram + bulk load).
    pub build_ms: f64,
}

/// The X1 report.
#[derive(Debug, Clone)]
pub struct IndexBuildReport {
    /// Scale used for the Advogato-like dataset.
    pub scale: f64,
    /// All rows.
    pub rows: Vec<IndexBuildRow>,
}

fn measure(
    name: &str,
    graph: &Graph,
    ks: &[usize],
    rows: &mut Vec<IndexBuildRow>,
    table: &mut Table,
) {
    for &k in ks {
        let start = Instant::now();
        let db = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        let stats = db.stats().index;
        // X1 always builds the in-memory backend: chunked shared runs.
        let chunks = db
            .index()
            .as_memory()
            .map(|index| index.chunk_count())
            .unwrap_or(0);
        table.push_row(vec![
            name.to_owned(),
            k.to_string(),
            stats.entries.to_string(),
            stats.distinct_paths.to_string(),
            chunks.to_string(),
            format!("{:.1}", stats.approx_bytes as f64 / (1024.0 * 1024.0)),
            format!("{build_ms:.0}"),
        ]);
        rows.push(IndexBuildRow {
            dataset: name.to_owned(),
            nodes: graph.node_count(),
            edges: graph.edge_count(),
            k,
            entries: stats.entries,
            paths: stats.distinct_paths,
            chunks,
            approx_bytes: stats.approx_bytes,
            build_ms,
        });
    }
}

/// Runs the index construction experiment.
pub fn index_construction(scale: f64, ks: &[usize]) -> IndexBuildReport {
    println!("== X1: index construction cost and size vs k\n");
    let advogato = build_advogato(scale);
    let ba = build_ba((2_000.0 * scale.max(0.05)).round() as usize, 42);
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "dataset",
        "k",
        "entries",
        "paths",
        "chunks",
        "size (MiB)",
        "build (ms)",
    ]);
    measure("advogato-like", &advogato, ks, &mut rows, &mut table);
    measure("barabasi-albert", &ba, ks, &mut rows, &mut table);
    println!("{}", table.render());
    println!(
        "expected shape: entries and build time grow sharply with k (the price paid for the \
         query-time speedups of F2).\n"
    );
    let report = IndexBuildReport { scale, rows };
    write_json("index_construction", &report);
    report
}

crate::impl_to_json!(IndexBuildRow {
    dataset,
    nodes,
    edges,
    k,
    entries,
    paths,
    chunks,
    approx_bytes,
    build_ms
});
crate::impl_to_json!(IndexBuildReport { scale, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_construction_runs_at_tiny_scale() {
        let report = index_construction(0.01, &[1, 2]);
        assert_eq!(report.rows.len(), 4);
        // Entries grow with k within a dataset.
        assert!(report.rows[1].entries > report.rows[0].entries);
        assert!(report.rows[3].entries > report.rows[2].entries);
    }
}
