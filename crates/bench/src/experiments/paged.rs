//! Experiment **X6** (extension): index size on disk and compression — the
//! dimension of the companion study the paper cites (reference \[14\]).
//!
//! For k ∈ {1, 2, 3} the k-path index is materialized three ways:
//!
//! * the in-memory B+tree the query pipeline uses (approximate key bytes),
//! * a paged B+tree in 4 KiB pages behind a buffer pool (pages / bytes on
//!   disk),
//! * delta/varint-compressed per-path pair blocks (bytes + compression
//!   ratio).
//!
//! A second table reports buffer-pool behaviour of a cold versus warm index
//! scan with a deliberately small pool.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_graph::SignedLabel;
use pathix_index::KPathIndex;
use pathix_pagestore::{CompressedPathStore, PagedPathIndex};
use std::time::Instant;

/// One `(k)` size measurement.
#[derive(Debug, Clone)]
pub struct PagedRow {
    /// Locality parameter.
    pub k: usize,
    /// Index entries.
    pub entries: u64,
    /// In-memory approximate key bytes.
    pub memory_bytes: u64,
    /// Pages of the paged B+tree.
    pub pages: u32,
    /// Bytes on disk of the paged B+tree.
    pub disk_bytes: u64,
    /// Bytes of the compressed per-path blocks.
    pub compressed_bytes: u64,
    /// Compression ratio versus one entry per pair.
    pub compression_ratio: f64,
    /// Paged build time in milliseconds.
    pub paged_build_ms: f64,
}

/// The X6 report.
#[derive(Debug, Clone)]
pub struct PagedReport {
    /// Scale factor used.
    pub scale: f64,
    /// Size rows per k.
    pub rows: Vec<PagedRow>,
    /// Cold-scan misses with an 8-frame pool (k = 2).
    pub cold_misses: u64,
    /// Warm-scan misses with an 8-frame pool (k = 2).
    pub warm_misses: u64,
}

/// Runs the on-disk size / compression experiment at the given scale.
pub fn paged_index(scale: f64) -> PagedReport {
    let graph = build_advogato(scale);
    println!(
        "== X6: index size on disk and compression (scale {scale}: {} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "k",
        "entries",
        "memory keys (KiB)",
        "paged (pages)",
        "paged (KiB)",
        "compressed (KiB)",
        "ratio",
        "paged build (ms)",
    ]);
    for k in 1..=3usize {
        let memory = KPathIndex::build(&graph, k);
        let start = Instant::now();
        let paged = PagedPathIndex::build_in_memory(&graph, k, 256).unwrap();
        let paged_build_ms = start.elapsed().as_secs_f64() * 1e3;
        let compressed = CompressedPathStore::from_index(&memory);
        let cstats = compressed.stats();
        let stats = paged.stats();
        let row = PagedRow {
            k,
            entries: stats.entries,
            memory_bytes: memory.stats().approx_bytes as u64,
            pages: stats.tree.pages,
            disk_bytes: stats.tree.bytes_on_disk,
            compressed_bytes: cstats.compressed_bytes,
            compression_ratio: cstats.ratio(),
            paged_build_ms,
        };
        table.push_row(vec![
            k.to_string(),
            row.entries.to_string(),
            format!("{:.1}", row.memory_bytes as f64 / 1024.0),
            row.pages.to_string(),
            format!("{:.1}", row.disk_bytes as f64 / 1024.0),
            format!("{:.1}", row.compressed_bytes as f64 / 1024.0),
            format!("{:.2}x", row.compression_ratio),
            format!("{:.1}", row.paged_build_ms),
        ]);
        rows.push(row);
    }
    println!("{}", table.render());

    // Buffer-pool behaviour: cold vs warm scan of a 2-path with 8 frames.
    let paged = PagedPathIndex::build_in_memory(&graph, 2, 8).unwrap();
    let journeyer = SignedLabel::forward(
        graph
            .label_id("journeyer")
            .unwrap_or_else(|| graph.labels().next().expect("graph has labels")),
    );
    let path = [journeyer, journeyer];
    paged.reset_pool_stats();
    let _ = paged.scan_path(&path).unwrap();
    let cold = paged.pool_stats();
    paged.reset_pool_stats();
    let _ = paged.scan_path(&path).unwrap();
    let warm = paged.pool_stats();
    println!(
        "buffer pool (8 frames, k = 2): cold scan {} misses / {} hits, repeated scan {} misses / {} hits\n",
        cold.misses, cold.hits, warm.misses, warm.hits
    );
    println!(
        "expected shape: entries and bytes grow sharply with k; the compressed blocks are \
         several times smaller than the per-entry layout; a warm scan misses (far) less than a \
         cold one.\n"
    );

    let report = PagedReport {
        scale,
        rows,
        cold_misses: cold.misses,
        warm_misses: warm.misses,
    };
    write_json("paged_index", &report);
    report
}

crate::impl_to_json!(PagedRow {
    k,
    entries,
    memory_bytes,
    pages,
    disk_bytes,
    compressed_bytes,
    compression_ratio,
    paged_build_ms
});
crate::impl_to_json!(PagedReport {
    scale,
    rows,
    cold_misses,
    warm_misses
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paged_experiment_runs_at_tiny_scale() {
        let report = paged_index(0.005);
        assert_eq!(report.rows.len(), 3);
        assert!(report.rows.iter().all(|r| r.compression_ratio > 1.0));
        assert!(report.rows[2].entries >= report.rows[0].entries);
    }
}
