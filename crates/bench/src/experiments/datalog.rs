//! Experiment **S6**: the paper's Section 6 claim that path-index evaluation
//! is on average ~1200× faster than Datalog-based evaluation (approach 2) on
//! the Advogato queries.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use std::time::Instant;

/// One query measured under the index pipeline and the Datalog baseline.
#[derive(Debug, Clone)]
pub struct DatalogRow {
    /// Query name.
    pub query: String,
    /// minSupport (k = 3) execution time in milliseconds.
    pub index_ms: f64,
    /// Datalog semi-naive evaluation time in milliseconds.
    pub datalog_ms: f64,
    /// `datalog_ms / index_ms`.
    pub speedup: f64,
    /// Answer count (identical for both routes).
    pub answers: usize,
}

/// The full S6 report.
#[derive(Debug, Clone)]
pub struct DatalogReport {
    /// Scale used (the Datalog baseline is much slower, so this experiment
    /// defaults to a smaller graph than F2).
    pub scale: f64,
    /// Index locality parameter used for the path-index side.
    pub k: usize,
    /// Per-query measurements.
    pub rows: Vec<DatalogRow>,
    /// Geometric mean of the speedups.
    pub geometric_mean_speedup: f64,
    /// Arithmetic mean of the speedups (the paper reports an average).
    pub mean_speedup: f64,
}

/// Runs the Datalog comparison at the given scale with a k = 3 index.
pub fn datalog_speedup(scale: f64) -> DatalogReport {
    let k = 3;
    let graph = build_advogato(scale);
    println!(
        "== S6: path index (minSupport, k={k}) vs Datalog baseline \
         (scale {scale}: {} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    let db = PathDb::build(graph, PathDbConfig::with_k(k));
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "query",
        "index (ms)",
        "datalog (ms)",
        "speedup",
        "answers",
    ]);
    for q in advogato_queries() {
        let result = db
            .run(&q.text, QueryOptions::with_strategy(Strategy::MinSupport))
            .unwrap();
        let index_ms = result.stats.elapsed.as_secs_f64() * 1e3;

        let start = Instant::now();
        let datalog_answer = db.query_datalog(&q.text).unwrap();
        let datalog_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            datalog_answer.len(),
            result.len(),
            "Datalog and index answers must agree for {}",
            q.name
        );
        let speedup = datalog_ms / index_ms.max(1e-6);
        table.push_row(vec![
            q.name.clone(),
            format!("{index_ms:.3}"),
            format!("{datalog_ms:.1}"),
            format!("{speedup:.0}x"),
            result.len().to_string(),
        ]);
        rows.push(DatalogRow {
            query: q.name.clone(),
            index_ms,
            datalog_ms,
            speedup,
            answers: result.len(),
        });
    }
    println!("{}", table.render());
    let mean_speedup = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    let geometric_mean_speedup =
        (rows.iter().map(|r| r.speedup.ln()).sum::<f64>() / rows.len() as f64).exp();
    println!(
        "average speedup: {mean_speedup:.0}x (arithmetic), {geometric_mean_speedup:.0}x (geometric); \
         the paper reports ~1200x on the full dataset.\n"
    );
    let report = DatalogReport {
        scale,
        k,
        rows,
        geometric_mean_speedup,
        mean_speedup,
    };
    write_json("datalog_speedup", &report);
    report
}

crate::impl_to_json!(DatalogRow {
    query,
    index_ms,
    datalog_ms,
    speedup,
    answers
});
crate::impl_to_json!(DatalogReport {
    scale,
    k,
    rows,
    geometric_mean_speedup,
    mean_speedup
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn datalog_comparison_runs_at_tiny_scale() {
        let report = datalog_speedup(0.005);
        assert_eq!(report.rows.len(), 8);
        assert!(report.mean_speedup > 0.0);
        assert!(report.rows.iter().all(|r| r.datalog_ms >= 0.0));
    }
}
