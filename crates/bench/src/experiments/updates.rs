//! Experiment **X10** (extension): live `PathDb::apply` update throughput
//! versus rebuilding the database from scratch, swept across all four
//! storage backends.
//!
//! X9 measured the raw index delta rules; this experiment measures the whole
//! serving path a live deployment actually exercises: [`PathDb::apply`]
//! validates the batch, routes it through the counting index, keeps the graph
//! adjacency in sync, refreshes the histogram under the configured policy and
//! publishes a fresh immutable snapshot (epoch bump plus O(Δ) chunk rebuilds
//! with structural sharing on the memory backend, copy-on-write B+tree key
//! deltas with page writeback on the paged backends, overlay entries with
//! threshold compaction on the compressed store). The alternative — the only
//! way a read-only database can stay fresh — is a full [`PathDb::build`] per
//! batch. Queries running between batches confirm both routes answer
//! identically, the backend sweep reports per-backend apply throughput and
//! post-update query latency, and the publish sweep pins the O(Δ) claim:
//! fixed-size batches cost the same on a 10× larger index.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{BackendChoice, HistogramRefresh, PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_graph::{Graph, LabelId, NodeId};
use pathix_index::GraphUpdate;
use std::time::Instant;

/// One `(batch size)` measurement.
#[derive(Debug, Clone)]
pub struct UpdatesRow {
    /// Updates per `apply` batch.
    pub batch: usize,
    /// Batches applied.
    pub batches: usize,
    /// Mean time of one `PathDb::apply` batch, in milliseconds.
    pub apply_ms: f64,
    /// Updates applied per second through `apply`.
    pub updates_per_s: f64,
    /// Time of one full `PathDb::build` over the same graph, in milliseconds.
    pub rebuild_ms: f64,
    /// `rebuild_ms / apply_ms` — how much cheaper staying fresh is per batch.
    pub speedup_vs_rebuild: f64,
}

/// One backend of the storage sweep: apply throughput and post-update query
/// latency on the same update stream.
#[derive(Debug, Clone)]
pub struct BackendUpdatesRow {
    /// Backend short name (`memory`, `paged`, `on-disk`, `compressed`).
    pub backend: String,
    /// Mean time of one `PathDb::apply` batch, in milliseconds.
    pub apply_ms: f64,
    /// Updates applied per second through `apply`.
    pub updates_per_s: f64,
    /// Mean post-update query latency, in milliseconds.
    pub query_ms: f64,
    /// Epoch the database reached after the sweep.
    pub epoch: u64,
}

/// One point of the publish-latency-vs-index-size sweep: the same fixed-size
/// batches applied to databases whose index differs by an order of magnitude.
#[derive(Debug, Clone)]
pub struct PublishSweepRow {
    /// Backend short name (`memory`, `paged`).
    pub backend: String,
    /// Advogato-like scale of this point.
    pub scale: f64,
    /// Graph nodes at this point.
    pub nodes: usize,
    /// Graph edges at this point.
    pub edges: usize,
    /// Index entries at this point.
    pub index_entries: u64,
    /// Mean index-entry transitions per batch (the Δ publish is
    /// proportional to) — must stay comparable across scales for the sweep
    /// to isolate publish cost.
    pub delta_entries_per_batch: f64,
    /// Mean time of one fixed-size `PathDb::apply` batch (delta rules +
    /// publish), in milliseconds.
    pub apply_ms: f64,
}

/// The X10 report.
#[derive(Debug, Clone)]
pub struct UpdatesReport {
    /// Advogato-like scale factor.
    pub scale: f64,
    /// Locality parameter used.
    pub k: usize,
    /// Epoch the live database reached.
    pub final_epoch: u64,
    /// All rows.
    pub rows: Vec<UpdatesRow>,
    /// Per-backend sweep rows.
    pub backends: Vec<BackendUpdatesRow>,
    /// Publish-latency-vs-index-size sweep (fixed batch size, 1× and 10×
    /// graphs): the O(Δ) publish acceptance check.
    pub publish_sweep: Vec<PublishSweepRow>,
}

/// Every `step`-th edge of the graph as `(src, label, dst)` triples.
fn edge_sample(graph: &Graph, step: usize) -> Vec<(NodeId, LabelId, NodeId)> {
    graph
        .labels()
        .flat_map(|l| graph.edges(l).map(move |(s, d)| (s, l, d)))
        .step_by(step.max(1))
        .collect()
}

/// Runs the live-update throughput experiment at the given scale with
/// locality `k`.
pub fn live_updates(scale: f64, k: usize) -> UpdatesReport {
    let graph = build_advogato(scale);
    println!(
        "== X10: PathDb::apply throughput vs full rebuild (scale {scale}: {} nodes, {} edges, \
         k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );

    let start = Instant::now();
    let db = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
    let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;

    // The update stream: a slice of existing edges, deleted and re-inserted,
    // so the database ends every round where it started.
    let sample = edge_sample(&graph, graph.edge_count() / 256);
    let query = "journeyer/journeyer";
    let reference = db.query(query).unwrap().len();

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "batch",
        "apply (ms/batch)",
        "updates/s",
        "rebuild (ms)",
        "speedup vs rebuild",
    ]);
    for &batch in &[1usize, 16, 128] {
        let rounds: Vec<Vec<GraphUpdate>> = sample
            .chunks(batch)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&(src, label, dst)| GraphUpdate::DeleteEdge { src, label, dst })
                    .collect()
            })
            .collect();
        let reinserts: Vec<Vec<GraphUpdate>> = sample
            .chunks(batch)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&(src, label, dst)| GraphUpdate::InsertEdge { src, label, dst })
                    .collect()
            })
            .collect();

        let start = Instant::now();
        let mut applied = 0usize;
        let mut batches = 0usize;
        for round in rounds.iter().chain(reinserts.iter()) {
            let stats = db.apply(round).unwrap();
            applied += (stats.inserted + stats.deleted) as usize;
            batches += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let apply_ms = elapsed * 1e3 / batches.max(1) as f64;
        let updates_per_s = applied as f64 / elapsed.max(1e-9);
        let speedup = rebuild_ms / apply_ms.max(1e-9);

        // Delete + re-insert restores the edge set: the live database must
        // still agree with the original build.
        assert_eq!(
            db.query(query).unwrap().len(),
            reference,
            "batch {batch}: answers diverged after the update rounds"
        );

        table.push_row(vec![
            batch.to_string(),
            format!("{apply_ms:.2}"),
            format!("{updates_per_s:.0}"),
            format!("{rebuild_ms:.1}"),
            format!("{speedup:.1}x"),
        ]);
        rows.push(UpdatesRow {
            batch,
            batches,
            apply_ms,
            updates_per_s,
            rebuild_ms,
            speedup_vs_rebuild: speedup,
        });
    }
    println!("{}", table.render());

    // Prepared-query staleness check at bench scale: a plan compiled before
    // an update keeps answering correctly after it.
    let prepared = db.prepare(query).unwrap();
    let before = prepared.run(&db, QueryOptions::with_strategy(Strategy::MinSupport));
    let &(src, label, dst) = sample.first().expect("non-empty sample");
    db.apply(&[GraphUpdate::DeleteEdge { src, label, dst }])
        .unwrap();
    let after = prepared.run(&db, QueryOptions::with_strategy(Strategy::MinSupport));
    db.apply(&[GraphUpdate::InsertEdge { src, label, dst }])
        .unwrap();
    println!(
        "prepared query across an update: {} answers before, {} after the delete (epoch {})\n",
        before.map(|r| r.len()).unwrap_or(0),
        after.map(|r| r.len()).unwrap_or(0),
        db.epoch()
    );
    println!(
        "expected shape: staying fresh after every single update (batch 1) beats a rebuild per \
         update, and updates/s grows with batch size as the per-batch bookkeeping (histogram \
         refresh, snapshot swap) amortizes. Publishing is O(batch), not O(index): the memory \
         backend rebuilds only the chunks the batch touched and re-shares the rest, so the \
         apply-vs-rebuild gap now reflects the paper's locality claim directly — rebuild re-joins \
         every path relation of the whole graph while apply touches only the batch's \
         k-neighborhoods. Answers match the rebuilt database throughout.\n"
    );

    let backends = backend_sweep(&graph, k, &sample, query);
    let publish_sweep = publish_sweep(scale, k);

    let report = UpdatesReport {
        scale,
        k,
        final_epoch: db.epoch(),
        rows,
        backends,
        publish_sweep,
    };
    write_json("live_updates", &report);
    report
}

/// Applies the **same fixed-size batches** to a database built at 1× and at
/// 10× the base scale, on the memory and paged backends. Because publishing
/// is O(Δ) everywhere — chunk rebuilds with structural sharing on memory,
/// page-level copy-on-write on paged — the per-batch apply latency must stay
/// flat (within ~2×) while the index grows an order of magnitude; before this
/// work the memory backend paid an O(index) freeze per publish, which made
/// this very sweep grow linearly.
fn publish_sweep(base_scale: f64, k: usize) -> Vec<PublishSweepRow> {
    const BATCH: usize = 64;
    const ROUNDS: usize = 8;
    let scales = [base_scale, base_scale * 10.0];
    let mut rows: Vec<PublishSweepRow> = Vec::new();
    let mut table = Table::new(vec![
        "backend",
        "scale",
        "entries",
        "delta entries/batch",
        "apply (ms/batch)",
        "vs 1x",
    ]);
    println!(
        "-- publish sweep: {BATCH}-update batches ({ROUNDS} delete + {ROUNDS} re-insert rounds) \
         at 1x and 10x index size\n"
    );
    for &scale in &scales {
        let graph = build_advogato(scale);
        // A *comparable* update stream at both sizes: the cost of the
        // paper's update rule is proportional to the k-neighborhood of the
        // changed edge, so the sweep holds that variable fixed by updating
        // the lowest-degree edges (uniform edge sampling would bias toward
        // hubs, whose neighborhoods — and thus Δ itself — grow with the
        // graph; that measures the workload, not the publish machinery).
        let mut degree = vec![0u32; graph.node_count()];
        for (src, _, dst) in edge_sample(&graph, 1) {
            degree[src.index()] += 1;
            degree[dst.index()] += 1;
        }
        let mut candidates = edge_sample(&graph, 1);
        candidates.sort_by_key(|&(src, _, dst)| degree[src.index()] + degree[dst.index()]);
        let sample: Vec<(NodeId, LabelId, NodeId)> =
            candidates.into_iter().take(ROUNDS * BATCH).collect();
        let choices: Vec<(&str, BackendChoice)> = vec![
            ("memory", BackendChoice::Memory),
            ("paged", BackendChoice::PagedInMemory { pool_frames: 256 }),
        ];
        for (name, choice) in choices {
            // Manual histogram refresh: the sweep isolates the index publish
            // (the O(Δ) claim under test); the default every-batch histogram
            // rebuild is policy, measured by the main X10 rows above.
            let config = PathDbConfig::with_k(k)
                .with_backend(choice)
                .with_histogram_refresh(HistogramRefresh::Manual);
            let db = PathDb::try_build(graph.clone(), config).expect("backend build failed");
            // Warm up the writer: the first apply seeds the counting index
            // (a one-time O(index) cost every route pays, not publish cost).
            let &(src, label, dst) = sample.first().expect("non-empty sample");
            db.apply(&[GraphUpdate::DeleteEdge { src, label, dst }])
                .unwrap();
            db.apply(&[GraphUpdate::InsertEdge { src, label, dst }])
                .unwrap();

            let rounds: Vec<Vec<GraphUpdate>> = sample
                .chunks(BATCH)
                .map(|chunk| {
                    chunk
                        .iter()
                        .map(|&(src, label, dst)| GraphUpdate::DeleteEdge { src, label, dst })
                        .collect()
                })
                .chain(sample.chunks(BATCH).map(|chunk| {
                    chunk
                        .iter()
                        .map(|&(src, label, dst)| GraphUpdate::InsertEdge { src, label, dst })
                        .collect()
                }))
                .collect();
            let start = Instant::now();
            let mut delta_entries = 0u64;
            for round in &rounds {
                delta_entries += db.apply(round).unwrap().delta_entries;
            }
            let apply_ms = start.elapsed().as_secs_f64() * 1e3 / rounds.len().max(1) as f64;
            let delta_entries_per_batch = delta_entries as f64 / rounds.len().max(1) as f64;

            let baseline: Option<f64> = rows.iter().find(|r| r.backend == name).map(|r| r.apply_ms);
            let vs_base = match baseline {
                Some(b) => format!("{:.2}x", apply_ms / b.max(1e-9)),
                None => "1.00x".to_owned(),
            };
            table.push_row(vec![
                name.to_string(),
                format!("{scale}"),
                db.stats().index.entries.to_string(),
                format!("{delta_entries_per_batch:.0}"),
                format!("{apply_ms:.3}"),
                vs_base,
            ]);
            rows.push(PublishSweepRow {
                backend: name.to_string(),
                scale,
                nodes: graph.node_count(),
                edges: graph.edge_count(),
                index_entries: db.stats().index.entries,
                delta_entries_per_batch,
                apply_ms,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: apply latency per fixed-size batch stays flat (within ~2x) as the index \
         grows 10x on both backends — the memory publish rebuilds only the touched chunks and \
         re-shares the rest behind Arcs, and the paged publish copy-on-writes only the dirtied \
         pages. An O(index) publish (the old snapshot freeze) would scale with the right column \
         instead.\n"
    );
    rows
}

/// Applies the same delete/re-insert stream through every storage backend
/// and reports per-backend apply throughput and post-update query latency.
fn backend_sweep(
    graph: &Graph,
    k: usize,
    sample: &[(NodeId, LabelId, NodeId)],
    query: &str,
) -> Vec<BackendUpdatesRow> {
    let disk_path = std::env::temp_dir().join(format!("pathix-x10-{}.pages", std::process::id()));
    let choices: Vec<(&str, BackendChoice)> = vec![
        ("memory", BackendChoice::Memory),
        ("paged", BackendChoice::PagedInMemory { pool_frames: 256 }),
        (
            "on-disk",
            BackendChoice::OnDisk {
                path: disk_path.clone(),
                pool_frames: 256,
            },
        ),
        ("compressed", BackendChoice::Compressed),
    ];

    let batch = 64usize;
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "backend",
        "apply (ms/batch)",
        "updates/s",
        "post-update query (ms)",
    ]);
    println!("-- backend sweep: {batch}-update batches (delete + re-insert), same stream\n");
    for (name, choice) in choices {
        let db = PathDb::try_build(graph.clone(), PathDbConfig::with_k(k).with_backend(choice))
            .expect("backend build failed");
        let reference = db.query(query).unwrap().len();

        let rounds: Vec<Vec<GraphUpdate>> = sample
            .chunks(batch)
            .map(|chunk| {
                chunk
                    .iter()
                    .map(|&(src, label, dst)| GraphUpdate::DeleteEdge { src, label, dst })
                    .collect()
            })
            .chain(sample.chunks(batch).map(|chunk| {
                chunk
                    .iter()
                    .map(|&(src, label, dst)| GraphUpdate::InsertEdge { src, label, dst })
                    .collect()
            }))
            .collect();

        let start = Instant::now();
        let mut applied = 0usize;
        for round in &rounds {
            let stats = db.apply(round).unwrap();
            applied += (stats.inserted + stats.deleted) as usize;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let apply_ms = elapsed * 1e3 / rounds.len().max(1) as f64;
        let updates_per_s = applied as f64 / elapsed.max(1e-9);

        // Delete + re-insert restores the edge set: answers must match the
        // build, on every backend.
        assert_eq!(
            db.query(query).unwrap().len(),
            reference,
            "{name}: answers diverged after the update rounds"
        );
        let queries = 16usize;
        let start = Instant::now();
        for _ in 0..queries {
            let _ = db
                .run(query, QueryOptions::with_strategy(Strategy::MinSupport))
                .unwrap();
        }
        let query_ms = start.elapsed().as_secs_f64() * 1e3 / queries as f64;

        table.push_row(vec![
            name.to_string(),
            format!("{apply_ms:.2}"),
            format!("{updates_per_s:.0}"),
            format!("{query_ms:.3}"),
        ]);
        rows.push(BackendUpdatesRow {
            backend: name.to_string(),
            apply_ms,
            updates_per_s,
            query_ms,
            epoch: db.epoch(),
        });
    }
    println!("{}", table.render());
    println!(
        "expected shape: every backend absorbs the same stream (the counting delta enumeration \
         runs once per batch regardless of backend); memory pays O(touched chunks) per publish, \
         the paged backends pay key-level tree maintenance with page-level copy-on-write plus \
         writeback (on-disk adds the file sync), and the compressed store pays overlay inserts \
         with occasional block-rewrite compactions. Post-update query latency shows each \
         representation's read cost over identical data.\n"
    );
    let _ = std::fs::remove_file(&disk_path);
    rows
}

crate::impl_to_json!(UpdatesRow {
    batch,
    batches,
    apply_ms,
    updates_per_s,
    rebuild_ms,
    speedup_vs_rebuild
});
crate::impl_to_json!(BackendUpdatesRow {
    backend,
    apply_ms,
    updates_per_s,
    query_ms,
    epoch
});
crate::impl_to_json!(PublishSweepRow {
    backend,
    scale,
    nodes,
    edges,
    index_entries,
    delta_entries_per_batch,
    apply_ms
});
crate::impl_to_json!(UpdatesReport {
    scale,
    k,
    final_epoch,
    rows,
    backends,
    publish_sweep
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn live_updates_experiment_runs_at_tiny_scale() {
        let report = live_updates(0.01, 2);
        assert_eq!(report.rows.len(), 3);
        assert!(report.final_epoch > 0);
        for row in &report.rows {
            assert!(row.batches > 0);
            assert!(row.apply_ms > 0.0);
            assert!(row.updates_per_s > 0.0);
            assert!(row.rebuild_ms > 0.0);
        }
        // The backend sweep covers all four storage backends, and each of
        // them absorbed the whole stream (epoch > 0).
        let names: Vec<&str> = report.backends.iter().map(|r| r.backend.as_str()).collect();
        assert_eq!(names, ["memory", "paged", "on-disk", "compressed"]);
        for row in &report.backends {
            assert!(row.apply_ms > 0.0, "{}", row.backend);
            assert!(row.updates_per_s > 0.0, "{}", row.backend);
            assert!(row.query_ms > 0.0, "{}", row.backend);
            assert!(row.epoch > 0, "{}", row.backend);
        }
        // The publish sweep covers memory and paged at 1x and 10x, and the
        // larger point really indexes an order of magnitude more entries.
        assert_eq!(report.publish_sweep.len(), 4);
        for backend in ["memory", "paged"] {
            let points: Vec<_> = report
                .publish_sweep
                .iter()
                .filter(|r| r.backend == backend)
                .collect();
            assert_eq!(points.len(), 2, "{backend}");
            assert!(
                points[1].index_entries > points[0].index_entries * 3,
                "{backend}"
            );
            assert!(points.iter().all(|r| r.apply_ms > 0.0), "{backend}");
        }
        // Machine-readable output for the CI artifact.
        use crate::report::ToJson;
        let json = report.to_json();
        assert!(json.contains("\"publish_sweep\""), "{json}");
        assert!(json.contains("\"apply_ms\""), "{json}");
    }
}
