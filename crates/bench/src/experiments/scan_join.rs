//! Experiment **X11** (extension): the vectorized scan/join engine versus
//! pair-at-a-time execution, swept across all four storage backends.
//!
//! Three workload families per backend over the same Advogato-like graph:
//!
//! * **unbound-scan** — drain one hot 2-path of the index. Baseline pulls
//!   the operator tree one pair at a time ([`execute_pairwise`]); the
//!   vectorized engine pulls [`PairBatch`]-sized slices straight out of the
//!   backend ([`execute`]).
//! * **bound-probe** — `source = ?` lookups on the same path. Baseline is
//!   what an engine without skip metadata must do: decode the whole path
//!   list and filter. The vectorized path uses the per-chunk min/max fences,
//!   the per-path source bloom and the per-segment fences of the compressed
//!   store to bypass everything the probe cannot match.
//! * **join-2/3/4** — composition chains (merge join at the bottom, hash
//!   joins above), pairwise versus batched.
//!
//! Each row reports the skip counters the batched run generated
//! (`chunks_skipped` on the memory backend, `blocks_skipped` on the
//! compressed store, `read_ahead_pages` on the paged backends) so the
//! speedups are attributable to work actually bypassed, not just loop
//! overhead.
//!
//! [`PairBatch`]: pathix_index::backend::PairBatch

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{
    BackendChoice, NodeId, PathDb, PathDbConfig, PathIndexBackend, PhysicalPlan, SignedLabel,
};
use pathix_plan::{execute, execute_pairwise};
use std::time::Instant;

/// One `(backend, workload)` measurement.
#[derive(Debug, Clone)]
pub struct ScanJoinRow {
    /// Backend short name (`memory`, `paged`, `on-disk`, `compressed`).
    pub backend: String,
    /// Workload short name (`unbound-scan`, `bound-probe`, `join-2`, …).
    pub workload: String,
    /// Result pairs (or probe hits) the workload produces, as a sanity
    /// anchor that both routes did the same work.
    pub result_pairs: usize,
    /// Pair-at-a-time (or decode-and-filter) time, in milliseconds.
    pub baseline_ms: f64,
    /// Vectorized time, in milliseconds.
    pub batched_ms: f64,
    /// `baseline_ms / batched_ms`.
    pub speedup: f64,
    /// Memory-backend chunks the batched run skipped via fences/bloom.
    pub chunks_skipped: u64,
    /// Compressed-store segments the batched run skipped via fences.
    pub blocks_skipped: u64,
    /// Pages the paged backends pulled in via read-ahead during the run.
    pub read_ahead_pages: u64,
}

/// The X11 report.
#[derive(Debug, Clone)]
pub struct ScanJoinReport {
    /// Advogato-like scale factor.
    pub scale: f64,
    /// Locality parameter used.
    pub k: usize,
    /// All rows, grouped by backend.
    pub rows: Vec<ScanJoinRow>,
}

/// Mean wall-clock milliseconds of `f` over a warmup run plus `reps` timed
/// runs.
fn time_ms<T>(reps: usize, mut f: impl FnMut() -> T) -> f64 {
    let _ = f();
    let start = Instant::now();
    for _ in 0..reps {
        let _ = f();
    }
    start.elapsed().as_secs_f64() * 1e3 / reps.max(1) as f64
}

/// Probe sources: a spread of real node ids plus ids past the node range, so
/// the fences and the bloom both get exercised (present sources skip the
/// chunks before/after their run, absent sources are rejected outright).
fn probe_sources(node_count: usize, probes: usize) -> Vec<NodeId> {
    let step = (node_count / probes.max(1)).max(1);
    let mut sources: Vec<NodeId> = (0..node_count)
        .step_by(step)
        .take(probes)
        .map(|i| NodeId(i as u32))
        .collect();
    for i in 0..probes / 4 {
        sources.push(NodeId(u32::MAX - 1 - i as u32));
    }
    sources
}

/// Runs the vectorized-engine experiment at the given scale with locality
/// `k` (the hot paths are 2-paths, so `k` must be ≥ 2).
pub fn scan_join(scale: f64, k: usize) -> ScanJoinReport {
    assert!(k >= 2, "scan_join probes 2-paths; build with k >= 2");
    let graph = build_advogato(scale);
    println!(
        "== X11: vectorized scan/join engine vs pair-at-a-time (scale {scale}: {} nodes, {} \
         edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );

    let journeyer = SignedLabel::forward(
        graph
            .label_id("journeyer")
            .unwrap_or_else(|| graph.labels().next().expect("graph has labels")),
    );
    let hot_path: Vec<SignedLabel> = vec![journeyer, journeyer];
    let leaf = || PhysicalPlan::scan(hot_path.clone());
    // Join chains compose 1-path leaves: a dense social graph's 2-path
    // relation composed four times approaches the full cross product, which
    // would measure materialization, not join advancement.
    let jleaf = || PhysicalPlan::scan(vec![journeyer]);
    let join2 = PhysicalPlan::compose(jleaf(), jleaf());
    let join3 = PhysicalPlan::compose(join2.clone(), jleaf());
    let join4 = PhysicalPlan::compose(join3.clone(), jleaf());
    // Few probes at bench scale keep the decode-everything baseline (the
    // whole point of the comparison) from dominating the harness runtime.
    let sources = probe_sources(graph.node_count(), if scale < 0.05 { 16 } else { 48 });
    let reps = 2usize;

    let disk_path = std::env::temp_dir().join(format!("pathix-x11-{}.pages", std::process::id()));
    // Small buffer pools: the index must not fit, otherwise the warmup runs
    // leave every page resident and neither route touches the page store
    // (read-ahead would measure nothing).
    let choices: Vec<(&str, BackendChoice)> = vec![
        ("memory", BackendChoice::Memory),
        ("paged", BackendChoice::PagedInMemory { pool_frames: 64 }),
        (
            "on-disk",
            BackendChoice::OnDisk {
                path: disk_path.clone(),
                pool_frames: 64,
            },
        ),
        ("compressed", BackendChoice::Compressed),
    ];

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "backend",
        "workload",
        "pairs",
        "baseline (ms)",
        "batched (ms)",
        "speedup",
        "chunks skip",
        "blocks skip",
        "read-ahead",
    ]);
    for (name, choice) in choices {
        let db = PathDb::try_build(graph.clone(), PathDbConfig::with_k(k).with_backend(choice))
            .expect("backend build failed");
        let snapshot = db.snapshot();
        let index = snapshot.index();

        let mut push = |workload: &str,
                        result_pairs: usize,
                        baseline_ms: f64,
                        batched_ms: f64,
                        before: pathix_core::StorageStats| {
            let after = db.stats().storage;
            let row = ScanJoinRow {
                backend: name.to_string(),
                workload: workload.to_string(),
                result_pairs,
                baseline_ms,
                batched_ms,
                speedup: baseline_ms / batched_ms.max(1e-9),
                chunks_skipped: after.chunks_skipped.saturating_sub(before.chunks_skipped),
                blocks_skipped: after.blocks_skipped.saturating_sub(before.blocks_skipped),
                read_ahead_pages: after
                    .read_ahead_pages
                    .saturating_sub(before.read_ahead_pages),
            };
            eprintln!(
                "   {}/{}: {:.3} ms -> {:.3} ms ({:.1}x)",
                row.backend, row.workload, row.baseline_ms, row.batched_ms, row.speedup
            );
            table.push_row(vec![
                row.backend.clone(),
                row.workload.clone(),
                row.result_pairs.to_string(),
                format!("{:.3}", row.baseline_ms),
                format!("{:.3}", row.batched_ms),
                format!("{:.1}x", row.speedup),
                row.chunks_skipped.to_string(),
                row.blocks_skipped.to_string(),
                row.read_ahead_pages.to_string(),
            ]);
            rows.push(row);
        };

        // Unbound scan: one hot path, drained whole.
        let plan = leaf();
        let baseline_ms = time_ms(reps, || execute_pairwise(&plan, index).unwrap());
        let before = db.stats().storage;
        let batched_ms = time_ms(reps, || execute(&plan, index).unwrap());
        let pairs = execute(&plan, index).unwrap().len();
        assert_eq!(
            execute_pairwise(&plan, index).unwrap().0.len(),
            pairs,
            "{name}: unbound scan routes disagree"
        );
        push("unbound-scan", pairs, baseline_ms, batched_ms, before);

        // Bound probes: the decode-and-filter baseline against the fenced
        // `scan_path_from` fast path, over the same probe set.
        let filter_probe = |s: NodeId| -> usize {
            let mut hits = 0usize;
            for pair in index.scan_path(&hot_path).unwrap() {
                let (src, _) = pair.unwrap();
                match src.cmp(&s) {
                    std::cmp::Ordering::Less => {}
                    std::cmp::Ordering::Equal => hits += 1,
                    std::cmp::Ordering::Greater => break,
                }
            }
            hits
        };
        let fenced_probe = |s: NodeId| index.scan_path_from(&hot_path, s).unwrap().len();
        for &s in sources.iter().step_by(8) {
            assert_eq!(
                filter_probe(s),
                fenced_probe(s),
                "{name}: probe routes disagree on source {s:?}"
            );
        }
        let baseline_ms = time_ms(reps, || {
            sources.iter().map(|&s| filter_probe(s)).sum::<usize>()
        });
        let before = db.stats().storage;
        let batched_ms = time_ms(reps, || {
            sources.iter().map(|&s| fenced_probe(s)).sum::<usize>()
        });
        let hits = sources.iter().map(|&s| fenced_probe(s)).sum::<usize>();
        push("bound-probe", hits, baseline_ms, batched_ms, before);

        // Join chains: merge join at the bottom, hash joins stacked above.
        for (workload, plan) in [("join-2", &join2), ("join-3", &join3), ("join-4", &join4)] {
            let baseline_ms = time_ms(reps, || execute_pairwise(plan, index).unwrap());
            let before = db.stats().storage;
            let batched_ms = time_ms(reps, || execute(plan, index).unwrap());
            let pairs = execute(plan, index).unwrap();
            let (pairwise, _) = execute_pairwise(plan, index).unwrap();
            assert_eq!(pairs, pairwise, "{name}: {workload} routes disagree");
            push(workload, pairs.len(), baseline_ms, batched_ms, before);
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: batched execution beats pair-at-a-time on every backend — unbound scans \
         and join chains save the per-pair virtual dispatch (the operators move {}-pair slices), \
         and bound probes win structurally: the baseline decodes the whole path list per probe \
         while the fences, the source bloom and the segment min/max bounds let the index bypass \
         every chunk the probe cannot match (the skip columns count exactly that). The paged \
         backends additionally prefetch upcoming leaves during range scans (read-ahead column).\n",
        pathix_index::backend::BATCH_CAPACITY
    );

    let _ = std::fs::remove_file(&disk_path);
    let report = ScanJoinReport { scale, k, rows };
    write_json("scan_join", &report);
    report
}

crate::impl_to_json!(ScanJoinRow {
    backend,
    workload,
    result_pairs,
    baseline_ms,
    batched_ms,
    speedup,
    chunks_skipped,
    blocks_skipped,
    read_ahead_pages
});
crate::impl_to_json!(ScanJoinReport { scale, k, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_join_experiment_runs_at_tiny_scale() {
        let report = scan_join(0.01, 2);
        // 4 backends x 5 workloads.
        assert_eq!(report.rows.len(), 20);
        let names: Vec<&str> = report
            .rows
            .iter()
            .map(|r| r.backend.as_str())
            .collect::<Vec<_>>();
        for backend in ["memory", "paged", "on-disk", "compressed"] {
            assert_eq!(names.iter().filter(|n| **n == backend).count(), 5);
        }
        for row in &report.rows {
            assert!(row.baseline_ms > 0.0, "{}/{}", row.backend, row.workload);
            assert!(row.batched_ms > 0.0, "{}/{}", row.backend, row.workload);
            assert!(row.speedup > 0.0, "{}/{}", row.backend, row.workload);
        }
        // The probes exercise the skip machinery: the memory backend skips
        // chunks (the absent probe sources are bloom-rejected), and the
        // compressed store skips fenced segments.
        let probe = |backend: &str| {
            report
                .rows
                .iter()
                .find(|r| r.backend == backend && r.workload == "bound-probe")
                .expect("probe row")
        };
        assert!(probe("memory").chunks_skipped > 0);
        assert!(probe("compressed").blocks_skipped > 0);
        // Machine-readable output for the CI artifact.
        use crate::report::ToJson;
        let json = report.to_json();
        assert!(json.contains("\"speedup\""), "{json}");
        assert!(json.contains("\"bound-probe\""), "{json}");
    }
}
