//! Experiment **X9** (extension): incremental index maintenance versus full
//! rebuild.
//!
//! The paper builds `I_{G,k}` once; this experiment quantifies the follow-up
//! question a deployment immediately faces — what a single edge update costs
//! when the index is maintained with the counting delta rules of
//! [`pathix_index::IncrementalKPathIndex`], compared against rebuilding the
//! whole index from scratch after every change.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_graph::{Graph, LabelId, NodeId};
use pathix_index::{IncrementalKPathIndex, KPathIndex};
use std::time::Instant;

/// One `(k, batch)` measurement.
#[derive(Debug, Clone)]
pub struct IncrementalRow {
    /// Locality parameter.
    pub k: usize,
    /// Index entries before the update batch.
    pub entries: usize,
    /// Number of edges deleted and re-inserted.
    pub batch: usize,
    /// Mean time of one incremental deletion, in microseconds.
    pub delete_us: f64,
    /// Mean time of one incremental insertion, in microseconds.
    pub insert_us: f64,
    /// Time of one full `KPathIndex::build` over the same graph, in
    /// milliseconds.
    pub rebuild_ms: f64,
    /// `rebuild_ms * 1000 / insert_us` — how many incremental insertions one
    /// rebuild pays for.
    pub rebuild_per_insert: f64,
}

/// The X9 report.
#[derive(Debug, Clone)]
pub struct IncrementalReport {
    /// Advogato-like scale factor.
    pub scale: f64,
    /// All rows.
    pub rows: Vec<IncrementalRow>,
}

/// Every `step`-th edge of the graph, used as the update batch.
fn update_batch(graph: &Graph, step: usize) -> Vec<(NodeId, LabelId, NodeId)> {
    graph
        .labels()
        .flat_map(|l| graph.edges(l).map(move |(s, d)| (s, l, d)))
        .step_by(step.max(1))
        .collect()
}

/// Runs the incremental maintenance experiment for `k ∈ {1, 2}` (k = 3 is
/// excluded: replaying tens of millions of walk deltas is exactly the
/// workload the experiment shows one should avoid rebuilding for).
pub fn incremental_maintenance(scale: f64) -> IncrementalReport {
    let graph = build_advogato(scale);
    println!(
        "== X9: incremental maintenance vs rebuild (scale {scale}: {} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "k",
        "entries",
        "batch",
        "delete (µs/edge)",
        "insert (µs/edge)",
        "rebuild (ms)",
        "rebuilds avoided per insert",
    ]);
    for k in [1usize, 2] {
        let start = Instant::now();
        let rebuilt = KPathIndex::build(&graph, k);
        let rebuild_ms = start.elapsed().as_secs_f64() * 1e3;

        let mut live = IncrementalKPathIndex::from_graph(&graph, k);
        let entries = live.entry_count();
        assert_eq!(
            entries,
            rebuilt.stats().entries,
            "seeding must match a rebuild"
        );

        let batch = update_batch(&graph, graph.edge_count() / 200);
        let start = Instant::now();
        for &(src, label, dst) in &batch {
            live.delete_edge(src, label, dst);
        }
        let delete_us = start.elapsed().as_secs_f64() * 1e6 / batch.len().max(1) as f64;
        let start = Instant::now();
        for &(src, label, dst) in &batch {
            live.insert_edge(src, label, dst);
        }
        let insert_us = start.elapsed().as_secs_f64() * 1e6 / batch.len().max(1) as f64;
        assert_eq!(
            live.entry_count(),
            entries,
            "delete + re-insert must restore the index"
        );

        let rebuild_per_insert = rebuild_ms * 1e3 / insert_us.max(1e-9);
        table.push_row(vec![
            k.to_string(),
            entries.to_string(),
            batch.len().to_string(),
            format!("{delete_us:.1}"),
            format!("{insert_us:.1}"),
            format!("{rebuild_ms:.1}"),
            format!("{rebuild_per_insert:.0}"),
        ]);
        rows.push(IncrementalRow {
            k,
            entries,
            batch: batch.len(),
            delete_us,
            insert_us,
            rebuild_ms,
            rebuild_per_insert,
        });
    }
    println!("{}", table.render());
    println!(
        "expected shape: a single incremental update costs microseconds to low milliseconds \
         (it only touches the k-neighborhood of the edge), orders of magnitude less than the \
         full rebuild that would otherwise be needed to stay fresh; the per-update cost grows \
         with k (larger neighborhoods), so the ratio narrows as k increases but stays large.\n"
    );
    let report = IncrementalReport { scale, rows };
    write_json("incremental_maintenance", &report);
    report
}

crate::impl_to_json!(IncrementalRow {
    k,
    entries,
    batch,
    delete_us,
    insert_us,
    rebuild_ms,
    rebuild_per_insert
});
crate::impl_to_json!(IncrementalReport { scale, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn incremental_maintenance_runs_at_tiny_scale() {
        let report = incremental_maintenance(0.01);
        assert_eq!(report.rows.len(), 2);
        for row in &report.rows {
            assert!(row.batch > 0);
            assert!(row.insert_us > 0.0 && row.delete_us > 0.0);
            assert!(row.rebuild_ms > 0.0);
        }
        // The k = 2 index is strictly larger than the k = 1 index.
        assert!(report.rows[1].entries > report.rows[0].entries);
    }
}
