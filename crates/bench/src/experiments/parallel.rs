//! Experiment **X7** (extension): parallel index construction and parallel
//! disjunct execution.
//!
//! The paper's index is built once and queried many times; this experiment
//! measures how much of the build cost threads can recover (the path
//! enumeration partitions cleanly by first label) and whether running a
//! query's disjunct plans concurrently pays off on union-heavy queries.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_index::KPathIndex;
use std::time::Instant;

/// Build-time rows per thread count.
#[derive(Debug, Clone)]
pub struct ParallelBuildRow {
    /// Worker threads used.
    pub threads: usize,
    /// Wall-clock build time in milliseconds.
    pub build_ms: f64,
    /// Speed-up over the single-threaded parallel build.
    pub speedup: f64,
}

/// Query rows comparing sequential and parallel disjunct execution.
#[derive(Debug, Clone)]
pub struct ParallelQueryRow {
    /// Query name.
    pub query: String,
    /// Number of disjuncts after rewriting.
    pub disjuncts: usize,
    /// Sequential execution (ms).
    pub sequential_ms: f64,
    /// Parallel execution with 4 threads (ms).
    pub parallel_ms: f64,
}

/// The X7 report.
#[derive(Debug, Clone)]
pub struct ParallelReport {
    /// Scale factor used.
    pub scale: f64,
    /// Locality parameter.
    pub k: usize,
    /// Build-time rows.
    pub build: Vec<ParallelBuildRow>,
    /// Query rows.
    pub queries: Vec<ParallelQueryRow>,
}

/// Runs the parallelism experiment at the given scale (k = 3).
pub fn parallel(scale: f64) -> ParallelReport {
    let k = 3;
    let graph = build_advogato(scale);
    println!(
        "== X7: parallel index construction and disjunct execution \
         (scale {scale}: {} nodes, {} edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );

    // Build-time sweep.
    let mut build_rows = Vec::new();
    let mut build_table = Table::new(vec!["threads", "build (ms)", "speedup"]);
    let mut baseline_ms = None;
    for threads in [1usize, 2, 4] {
        let start = Instant::now();
        let index = KPathIndex::build_parallel(&graph, k, threads);
        let build_ms = start.elapsed().as_secs_f64() * 1e3;
        assert!(index.stats().entries > 0);
        let base = *baseline_ms.get_or_insert(build_ms);
        let speedup = base / build_ms;
        build_table.push_row(vec![
            threads.to_string(),
            format!("{build_ms:.1}"),
            format!("{speedup:.2}x"),
        ]);
        build_rows.push(ParallelBuildRow {
            threads,
            build_ms,
            speedup,
        });
    }
    println!("{}", build_table.render());

    // Query sweep on union-heavy queries.
    let db = PathDb::build(graph, PathDbConfig::with_k(k));
    let queries = [
        ("U1", "journeyer{1,4}"),
        ("U2", "(journeyer|journeyer-){1,3}"),
        ("U3", "apprentice/(journeyer|master){2,3}"),
    ];
    let mut query_rows = Vec::new();
    let mut query_table = Table::new(vec![
        "query",
        "disjuncts",
        "sequential (ms)",
        "4 threads (ms)",
    ]);
    for (name, text) in queries {
        // Skip queries whose labels this dataset does not have.
        let Ok(expr) = db.compile(text) else { continue };
        let disjuncts = db.disjuncts(&expr).map(|d| d.len()).unwrap_or(0);
        let Ok(sequential) = db.run(text, QueryOptions::with_strategy(Strategy::MinSupport)) else {
            continue;
        };
        let start = Instant::now();
        let parallel_result = db
            .run(
                text,
                QueryOptions::with_strategy(Strategy::MinSupport).threads(4),
            )
            .unwrap();
        let parallel_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(parallel_result.len(), sequential.len());
        let row = ParallelQueryRow {
            query: name.to_owned(),
            disjuncts,
            sequential_ms: sequential.stats.elapsed.as_secs_f64() * 1e3,
            parallel_ms,
        };
        query_table.push_row(vec![
            name.to_owned(),
            row.disjuncts.to_string(),
            format!("{:.3}", row.sequential_ms),
            format!("{:.3}", row.parallel_ms),
        ]);
        query_rows.push(row);
    }
    println!("{}", query_table.render());
    println!(
        "expected shape: build time drops as threads are added (sub-linearly — the final sort \
         and bulk load stay sequential); parallel disjunct execution helps on queries with many \
         disjuncts and large intermediate results, and is a wash on small ones.\n"
    );

    let report = ParallelReport {
        scale,
        k,
        build: build_rows,
        queries: query_rows,
    };
    write_json("parallel", &report);
    report
}

crate::impl_to_json!(ParallelBuildRow {
    threads,
    build_ms,
    speedup
});
crate::impl_to_json!(ParallelQueryRow {
    query,
    disjuncts,
    sequential_ms,
    parallel_ms
});
crate::impl_to_json!(ParallelReport {
    scale,
    k,
    build,
    queries
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_experiment_runs_at_tiny_scale() {
        let report = parallel(0.005);
        assert_eq!(report.build.len(), 3);
        assert!(!report.queries.is_empty());
    }
}
