//! Experiment runners, one module per experiment id in DESIGN.md §3.

pub mod ablation;
pub mod amortization;
pub mod automaton;
pub mod backends;
pub mod datalog;
pub mod fig2;
pub mod incremental;
pub mod index_build;
pub mod ingest;
pub mod paged;
pub mod parallel;
pub mod scaling;
pub mod scan_join;
pub mod serving;
pub mod sql;
pub mod updates;
