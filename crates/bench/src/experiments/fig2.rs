//! Experiment **F2**: Figure 2 of the paper — Advogato query execution times
//! for the 8 benchmark queries, the 4 strategies and k ∈ {1, 2, 3} — plus the
//! §5 aggregate observations (S5-k and S5-order).

use crate::datasets::build_advogato;
use crate::report::{format_duration_ms, write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use std::collections::HashMap;
use std::time::Instant;

/// One measurement: a query evaluated with one strategy over one index.
#[derive(Debug, Clone)]
pub struct Fig2Row {
    /// Query name (A1–A8).
    pub query: String,
    /// Index locality parameter.
    pub k: usize,
    /// Strategy name as used in the paper.
    pub strategy: String,
    /// Execution time in milliseconds (planning + execution, warm index).
    pub millis: f64,
    /// Number of answer pairs.
    pub answers: usize,
}

/// The full Figure 2 dataset plus dataset metadata.
#[derive(Debug, Clone)]
pub struct Fig2Report {
    /// Scale factor relative to the real Advogato.
    pub scale: f64,
    /// Nodes in the generated graph.
    pub nodes: usize,
    /// Edges in the generated graph.
    pub edges: usize,
    /// Per-k index construction time in milliseconds.
    pub index_build_ms: Vec<(usize, f64)>,
    /// All measurements.
    pub rows: Vec<Fig2Row>,
}

/// Runs the Figure 2 experiment at the given scale and prints the three
/// per-k tables plus the §5 summary.
pub fn fig2(scale: f64, ks: &[usize]) -> Fig2Report {
    let graph = build_advogato(scale);
    println!(
        "== F2: Advogato query execution times (scale {scale}: {} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    let queries = advogato_queries();
    let mut rows: Vec<Fig2Row> = Vec::new();
    let mut index_build_ms = Vec::new();

    for &k in ks {
        let build_start = Instant::now();
        let db = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
        let build_ms = build_start.elapsed().as_secs_f64() * 1e3;
        index_build_ms.push((k, build_ms));
        println!(
            "-- k = {k}  (index: {} entries over {} paths, built in {:.0} ms)",
            db.stats().index.entries,
            db.stats().index.distinct_paths,
            build_ms
        );
        let mut table = Table::new(vec![
            "query",
            "naive (ms)",
            "semi-naive (ms)",
            "minSupport (ms)",
            "minJoin (ms)",
            "answers",
        ]);
        for q in &queries {
            let mut cells = vec![q.name.clone()];
            let mut answers = 0;
            for strategy in Strategy::all() {
                let result = db
                    .run(&q.text, QueryOptions::with_strategy(strategy))
                    .unwrap_or_else(|e| panic!("{} failed: {e}", q.name));
                answers = result.len();
                cells.push(format_duration_ms(result.stats.elapsed));
                rows.push(Fig2Row {
                    query: q.name.clone(),
                    k,
                    strategy: strategy.name().to_owned(),
                    millis: result.stats.elapsed.as_secs_f64() * 1e3,
                    answers,
                });
            }
            cells.push(answers.to_string());
            table.push_row(cells);
        }
        println!("{}", table.render());
    }

    print_summary(&rows, ks);
    let report = Fig2Report {
        scale,
        nodes: graph.node_count(),
        edges: graph.edge_count(),
        index_build_ms,
        rows,
    };
    write_json("fig2_advogato", &report);
    report
}

/// Prints the §5 observations: per-strategy totals per k (S5-order) and the
/// effect of increasing k (S5-k).
fn print_summary(rows: &[Fig2Row], ks: &[usize]) {
    println!("== §5 summary: total time over the 8 queries (ms)\n");
    let mut table = Table::new(vec!["strategy", "k=1", "k=2", "k=3"]);
    let mut totals: HashMap<(String, usize), f64> = HashMap::new();
    for row in rows {
        *totals.entry((row.strategy.clone(), row.k)).or_default() += row.millis;
    }
    for strategy in Strategy::all() {
        let mut cells = vec![strategy.name().to_owned()];
        for &k in ks {
            let total = totals
                .get(&(strategy.name().to_owned(), k))
                .copied()
                .unwrap_or(f64::NAN);
            cells.push(format!("{total:.1}"));
        }
        table.push_row(cells);
    }
    println!("{}", table.render());
    println!(
        "expected shape (paper §5): naive is slowest and flat in k; semi-naive improves with k; \
         minSupport and minJoin are fastest and similar.\n"
    );
}

crate::impl_to_json!(Fig2Row {
    query,
    k,
    strategy,
    millis,
    answers
});
crate::impl_to_json!(Fig2Report {
    scale,
    nodes,
    edges,
    index_build_ms,
    rows
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_runs_at_tiny_scale() {
        let report = fig2(0.01, &[1, 2]);
        // 8 queries × 4 strategies × 2 values of k.
        assert_eq!(report.rows.len(), 8 * 4 * 2);
        assert!(report.rows.iter().all(|r| r.millis >= 0.0));
        // Every strategy returns the same answer count for a given query/k.
        for q in ["A1", "A5"] {
            for k in [1, 2] {
                let counts: Vec<usize> = report
                    .rows
                    .iter()
                    .filter(|r| r.query == q && r.k == k)
                    .map(|r| r.answers)
                    .collect();
                assert!(
                    counts.windows(2).all(|w| w[0] == w[1]),
                    "{q} k={k}: {counts:?}"
                );
            }
        }
    }
}
