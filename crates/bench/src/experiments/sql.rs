//! Experiment **X5** (extension): the relational deployment of the paper's
//! prototype. The same queries are answered three ways —
//!
//! * natively (minSupport plans over the in-memory B+tree index),
//! * through the paper's RPQ→SQL translation over a `path_index` table
//!   executed by the `pathix-sql` engine, and
//! * through the recursive-SQL-views baseline (approach 2) over the raw
//!   `edge` table.
//!
//! The expected shape: both path-index routes beat the recursive baseline by
//! orders of magnitude (the §6 claim), and the native pipeline beats the
//! interpreted SQL route by a constant factor (no SQL parsing/planning per
//! query, tighter operators).

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use pathix_sql::SqlPathDb;
use std::time::Instant;

/// One query measured across the three execution routes.
#[derive(Debug, Clone)]
pub struct SqlRow {
    /// Query name.
    pub query: String,
    /// Answer size (identical across routes).
    pub pairs: usize,
    /// Native minSupport execution (ms).
    pub native_ms: f64,
    /// Path-index SQL translation executed by the relational engine (ms).
    pub sql_ms: f64,
    /// Recursive-SQL-views baseline over the edge table (ms), when the
    /// query's recursion depth keeps it feasible.
    pub recursive_sql_ms: Option<f64>,
}

/// The X5 report.
#[derive(Debug, Clone)]
pub struct SqlReport {
    /// Scale factor used.
    pub scale: f64,
    /// Index locality parameter.
    pub k: usize,
    /// Per-query rows.
    pub rows: Vec<SqlRow>,
}

/// Runs the relational-deployment comparison at the given scale (k = 3).
pub fn sql_comparison(scale: f64) -> SqlReport {
    let k = 3;
    let graph = build_advogato(scale);
    println!(
        "== X5: native pipeline vs SQL translation vs recursive SQL views \
         (scale {scale}: {} nodes, {} edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );
    let native = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
    let relational = SqlPathDb::from_path_db(&native).unwrap();

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "query",
        "pairs",
        "native minSupport (ms)",
        "path-index SQL (ms)",
        "recursive SQL (ms)",
    ]);
    for q in advogato_queries() {
        let native_result = native
            .run(&q.text, QueryOptions::with_strategy(Strategy::MinSupport))
            .unwrap();
        let native_ms = native_result.stats.elapsed.as_secs_f64() * 1e3;

        let start = Instant::now();
        let via_sql = relational.query_pairs(&q.text).unwrap();
        let sql_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(via_sql.len(), native_result.len(), "query {}", q.name);

        // The recursive baseline re-derives every intermediate relation; keep
        // it to the queries without deep bounded recursion so the harness
        // stays fast (the Datalog experiment already covers the full claim).
        let recursive_sql_ms = if q.text.contains('{') {
            None
        } else {
            let start = Instant::now();
            let via_recursive = relational.query_pairs_recursive(&q.text).unwrap();
            let ms = start.elapsed().as_secs_f64() * 1e3;
            assert_eq!(via_recursive.len(), native_result.len(), "query {}", q.name);
            Some(ms)
        };

        table.push_row(vec![
            q.name.clone(),
            native_result.len().to_string(),
            format!("{native_ms:.3}"),
            format!("{sql_ms:.3}"),
            recursive_sql_ms
                .map(|ms| format!("{ms:.3}"))
                .unwrap_or_else(|| "-".to_owned()),
        ]);
        rows.push(SqlRow {
            query: q.name.clone(),
            pairs: native_result.len(),
            native_ms,
            sql_ms,
            recursive_sql_ms,
        });
    }
    println!("{}", table.render());
    println!(
        "expected shape: both path-index routes are far below the recursive-views column \
         (approach 2), and the native pipeline is faster than the interpreted SQL route by a \
         modest constant factor.\n"
    );
    let report = SqlReport { scale, k, rows };
    write_json("sql_comparison", &report);
    report
}

crate::impl_to_json!(SqlRow {
    query,
    pairs,
    native_ms,
    sql_ms,
    recursive_sql_ms
});
crate::impl_to_json!(SqlReport { scale, k, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sql_comparison_runs_at_tiny_scale() {
        let report = sql_comparison(0.005);
        assert_eq!(report.rows.len(), 8);
        assert!(report.rows.iter().any(|r| r.recursive_sql_ms.is_some()));
    }
}
