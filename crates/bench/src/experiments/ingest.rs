//! Experiment **X12** (extension): streaming ingest from an empty database.
//!
//! X10 measures live updates against a database that was *bulk built* first;
//! this experiment starts from [`PathDb::empty`] and feeds the whole
//! Advogato-like edge stream through [`PathDb::apply`] as
//! [`GraphUpdate::InsertEdgeNamed`] batches — every node and label name is
//! interned live, mid-stream, exactly the way a serving deployment that never
//! saw a bulk load would grow. Two questions are answered:
//!
//! 1. **Throughput** — how fast each storage backend absorbs a pure named
//!    insert stream from empty, and whether the streamed database ends up
//!    identical (counts and query answers) to a bulk build of the same
//!    edges.
//! 2. **Latency flatness** — the O(Δ) acceptance check for the ingest path:
//!    the same fixed-size batches of brand-new named edges appended to a 1×
//!    and a 10× database must cost the same (within ~2×) on *all four*
//!    backends. Fresh endpoints have empty k-neighborhoods, so the paper's
//!    delta rule contributes a constant Δ per batch and the sweep isolates
//!    vocabulary interning, chunk publishing and snapshot swap — any O(V+E)
//!    step left on the apply path shows up as the 10× column growing.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{BackendChoice, HistogramRefresh, PathDb, PathDbConfig};
use pathix_graph::Graph;
use pathix_index::GraphUpdate;
use std::time::Instant;

/// One backend of the streaming-ingest throughput sweep.
#[derive(Debug, Clone)]
pub struct IngestRow {
    /// Backend short name (`memory`, `paged`, `on-disk`, `compressed`).
    pub backend: String,
    /// Named inserts per `apply` batch.
    pub batch: usize,
    /// Batches applied to go from empty to the full graph.
    pub batches: usize,
    /// Edges the stream carried (all inserted — the stream is duplicate
    /// free).
    pub edges: usize,
    /// Mean time of one `apply` batch, in milliseconds.
    pub apply_ms: f64,
    /// Edges ingested per second end to end.
    pub edges_per_s: f64,
    /// Nodes interned live by the stream.
    pub final_nodes: usize,
    /// Labels interned live by the stream.
    pub final_labels: usize,
    /// Epoch the database reached (one per batch).
    pub epoch: u64,
}

/// One point of the append-latency-vs-database-size sweep.
#[derive(Debug, Clone)]
pub struct IngestLatencyRow {
    /// Backend short name.
    pub backend: String,
    /// Advogato-like scale of this point.
    pub scale: f64,
    /// Graph nodes before the appends.
    pub nodes: usize,
    /// Graph edges before the appends.
    pub edges: usize,
    /// Index entries before the appends.
    pub index_entries: u64,
    /// Mean time of one fixed-size batch of brand-new named edges, in
    /// milliseconds.
    pub apply_ms: f64,
}

/// The X12 report.
#[derive(Debug, Clone)]
pub struct IngestReport {
    /// Advogato-like scale factor of the throughput sweep.
    pub scale: f64,
    /// Locality parameter used.
    pub k: usize,
    /// Streaming throughput per backend.
    pub rows: Vec<IngestRow>,
    /// Fixed-size append latency at 1× and 10×, all four backends: the
    /// O(Δ) ingest acceptance check.
    pub latency_sweep: Vec<IngestLatencyRow>,
}

/// Extracts every edge of `graph` as owned `(src, label, dst)` name triples,
/// deterministically shuffled so node and label vocabulary arrive
/// interleaved mid-stream instead of in label-major blocks.
fn named_stream(graph: &Graph) -> Vec<(String, String, String)> {
    let mut triples: Vec<(String, String, String)> = Vec::with_capacity(graph.edge_count());
    for label in graph.labels() {
        let label_name = graph.label_name(label).unwrap_or("?").to_owned();
        for (s, t) in graph.edges(label) {
            triples.push((
                graph.node_name(s).unwrap_or("?").to_owned(),
                label_name.clone(),
                graph.node_name(t).unwrap_or("?").to_owned(),
            ));
        }
    }
    // Fisher–Yates with a fixed-seed LCG: reproducible, dependency free.
    let mut state = 0x12u64.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    for i in (1..triples.len()).rev() {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        let j = (state >> 33) as usize % (i + 1);
        triples.swap(i, j);
    }
    triples
}

/// The four storage backends, with a process-unique on-disk path.
fn backend_choices(tag: &str) -> Vec<(&'static str, BackendChoice)> {
    let disk_path =
        std::env::temp_dir().join(format!("pathix-x12-{tag}-{}.pages", std::process::id()));
    vec![
        ("memory", BackendChoice::Memory),
        ("paged", BackendChoice::PagedInMemory { pool_frames: 256 }),
        (
            "on-disk",
            BackendChoice::OnDisk {
                path: disk_path,
                pool_frames: 256,
            },
        ),
        ("compressed", BackendChoice::Compressed),
    ]
}

/// Runs the streaming-ingest experiment at the given scale with locality `k`.
pub fn ingest(scale: f64, k: usize) -> IngestReport {
    let graph = build_advogato(scale);
    println!(
        "== X12: streaming ingest from empty (scale {scale}: {} nodes, {} edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );

    let stream = named_stream(&graph);
    let batch = 256usize;
    let query = "journeyer/journeyer";
    // The reference: a bulk build over the same edges answers the probe
    // query; every streamed database must agree.
    let reference_db = PathDb::build(graph.clone(), PathDbConfig::with_k(k));
    let reference = reference_db
        .query(query)
        .unwrap_or_else(|e| panic!("reference query failed: {e}"))
        .len();

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "backend",
        "apply (ms/batch)",
        "edges/s",
        "nodes interned",
        "labels interned",
        "epochs",
    ]);
    println!(
        "-- throughput: {batch}-insert named batches, empty -> {} edges\n",
        stream.len()
    );
    for (name, choice) in backend_choices("stream") {
        let config = PathDbConfig::with_k(k).with_backend(choice);
        let db = PathDb::empty(config)
            .unwrap_or_else(|e| panic!("{name}: empty database build failed: {e}"));

        let start = Instant::now();
        let mut batches = 0usize;
        let mut inserted = 0u64;
        for chunk in stream.chunks(batch) {
            let updates: Vec<GraphUpdate> = chunk
                .iter()
                .map(|(s, l, d)| GraphUpdate::insert_named(s.clone(), l.clone(), d.clone()))
                .collect();
            let stats = db
                .apply(&updates)
                .unwrap_or_else(|e| panic!("{name}: ingest batch failed: {e}"));
            inserted += stats.inserted;
            batches += 1;
        }
        let elapsed = start.elapsed().as_secs_f64();
        let apply_ms = elapsed * 1e3 / batches.max(1) as f64;
        let edges_per_s = inserted as f64 / elapsed.max(1e-9);

        // The streamed database must be the bulk build, reached a batch at a
        // time: same counts, same answers.
        let stats = db.stats();
        assert_eq!(
            stats.nodes,
            graph.node_count(),
            "{name}: node count diverged"
        );
        assert_eq!(
            stats.edges,
            graph.edge_count(),
            "{name}: edge count diverged"
        );
        assert_eq!(
            stats.labels,
            graph.label_count(),
            "{name}: label count diverged"
        );
        assert_eq!(
            db.query(query)
                .unwrap_or_else(|e| panic!("{name}: post-ingest query failed: {e}"))
                .len(),
            reference,
            "{name}: streamed answers diverged from the bulk build"
        );

        table.push_row(vec![
            name.to_string(),
            format!("{apply_ms:.2}"),
            format!("{edges_per_s:.0}"),
            stats.nodes.to_string(),
            stats.labels.to_string(),
            db.epoch().to_string(),
        ]);
        rows.push(IngestRow {
            backend: name.to_string(),
            batch,
            batches,
            edges: inserted as usize,
            apply_ms,
            edges_per_s,
            final_nodes: stats.nodes,
            final_labels: stats.labels,
            epoch: db.epoch(),
        });
    }
    println!("{}", table.render());
    println!(
        "expected shape: every backend ingests the full stream from a completely empty database \
         — node and label names are interned live as they first appear, no bulk load and no \
         vocabulary pre-registration — and ends bit-for-bit equivalent to a bulk build of the \
         same edges (counts and query answers checked above). Throughput tracks X10's apply \
         numbers because ingest IS the apply path; the extra cost of name resolution is one \
         dictionary probe per endpoint.\n"
    );

    let latency_sweep = latency_sweep(scale, k);
    let report = IngestReport {
        scale,
        k,
        rows,
        latency_sweep,
    };
    write_json("ingest", &report);
    report
}

/// Appends the **same fixed-size batches of brand-new named edges** to a
/// database built at 1× and at 10× the base scale, on all four backends.
/// Fresh endpoints have empty k-neighborhoods, so the counting delta is a
/// constant per batch and the sweep isolates the ingest machinery itself:
/// live interning, chunk publish, backend delta, snapshot swap. O(Δ) end to
/// end means the 10× column stays within ~2× of the 1× column.
fn latency_sweep(base_scale: f64, k: usize) -> Vec<IngestLatencyRow> {
    const BATCH: usize = 64;
    const ROUNDS: usize = 8;
    let scales = [base_scale, base_scale * 10.0];
    let mut rows: Vec<IngestLatencyRow> = Vec::new();
    let mut table = Table::new(vec![
        "backend",
        "scale",
        "entries",
        "apply (ms/batch)",
        "vs 1x",
    ]);
    println!(
        "-- append-latency sweep: {BATCH} brand-new named edges per batch, {ROUNDS} batches, \
         at 1x and 10x database size\n"
    );
    for &scale in &scales {
        let graph = build_advogato(scale);
        // One existing label keeps the delta rule engaged (the new edges are
        // indexable) while fresh endpoints keep Δ constant across scales.
        let label = graph
            .labels()
            .next()
            .and_then(|l| graph.label_name(l))
            .unwrap_or("observes")
            .to_owned();
        for (name, choice) in backend_choices("latency") {
            // Manual histogram refresh for the same reason as X10's publish
            // sweep: the default per-batch histogram rebuild is policy, not
            // the ingest machinery under test.
            let config = PathDbConfig::with_k(k)
                .with_backend(choice)
                .with_histogram_refresh(HistogramRefresh::Manual);
            let db = PathDb::try_build(graph.clone(), config)
                .unwrap_or_else(|e| panic!("{name}: backend build failed: {e}"));
            // Warm up the writer (one-time O(index) counting-index seed that
            // every route pays once, not per-batch ingest cost).
            db.apply(&[GraphUpdate::insert_named(
                format!("x12-{name}-{scale}-warm-a"),
                label.clone(),
                format!("x12-{name}-{scale}-warm-b"),
            )])
            .unwrap_or_else(|e| panic!("{name}: warm-up apply failed: {e}"));

            let batches: Vec<Vec<GraphUpdate>> = (0..ROUNDS)
                .map(|round| {
                    (0..BATCH)
                        .map(|i| {
                            let n = round * BATCH + i;
                            GraphUpdate::insert_named(
                                format!("x12-{name}-{scale}-src-{n}"),
                                label.clone(),
                                format!("x12-{name}-{scale}-dst-{n}"),
                            )
                        })
                        .collect()
                })
                .collect();
            let start = Instant::now();
            for round in &batches {
                db.apply(round)
                    .unwrap_or_else(|e| panic!("{name}: append batch failed: {e}"));
            }
            let apply_ms = start.elapsed().as_secs_f64() * 1e3 / batches.len().max(1) as f64;

            let stats = db.stats();
            let baseline: Option<f64> = rows.iter().find(|r| r.backend == name).map(|r| r.apply_ms);
            let vs_base = match baseline {
                Some(b) => format!("{:.2}x", apply_ms / b.max(1e-9)),
                None => "1.00x".to_owned(),
            };
            table.push_row(vec![
                name.to_string(),
                format!("{scale}"),
                stats.index.entries.to_string(),
                format!("{apply_ms:.3}"),
                vs_base,
            ]);
            rows.push(IngestLatencyRow {
                backend: name.to_string(),
                scale,
                nodes: graph.node_count(),
                edges: graph.edge_count(),
                index_entries: stats.index.entries,
                apply_ms,
            });
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: the per-batch append latency stays flat (within ~2x) while the \
         database underneath grows an order of magnitude, on all four backends — live \
         vocabulary interning is append-only (no dictionary rebuild), the graph publish \
         rebuilds only the touched chunks, and every backend's index delta is proportional to \
         the batch, not the index. Any remaining O(V+E) step on the apply path would make the \
         10x rows grow with the entries column instead.\n"
    );
    rows
}

crate::impl_to_json!(IngestRow {
    backend,
    batch,
    batches,
    edges,
    apply_ms,
    edges_per_s,
    final_nodes,
    final_labels,
    epoch
});
crate::impl_to_json!(IngestLatencyRow {
    backend,
    scale,
    nodes,
    edges,
    index_entries,
    apply_ms
});
crate::impl_to_json!(IngestReport {
    scale,
    k,
    rows,
    latency_sweep
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ingest_experiment_runs_at_tiny_scale() {
        let report = ingest(0.01, 2);
        // All four backends ingested the full stream from empty...
        let names: Vec<&str> = report.rows.iter().map(|r| r.backend.as_str()).collect();
        assert_eq!(names, ["memory", "paged", "on-disk", "compressed"]);
        for row in &report.rows {
            assert!(row.edges > 0, "{}", row.backend);
            assert!(row.apply_ms > 0.0, "{}", row.backend);
            assert!(row.edges_per_s > 0.0, "{}", row.backend);
            assert!(row.final_nodes > 0, "{}", row.backend);
            assert!(row.final_labels > 0, "{}", row.backend);
            // One epoch per applied batch: the stream really went through
            // the live apply path, not a bulk load.
            assert_eq!(row.epoch, row.batches as u64, "{}", row.backend);
        }
        // ...and the latency sweep covers all four backends at 1x and 10x,
        // with the larger point really indexing a much bigger database.
        assert_eq!(report.latency_sweep.len(), 8);
        for backend in ["memory", "paged", "on-disk", "compressed"] {
            let points: Vec<_> = report
                .latency_sweep
                .iter()
                .filter(|r| r.backend == backend)
                .collect();
            assert_eq!(points.len(), 2, "{backend}");
            assert!(
                points[1].index_entries > points[0].index_entries * 3,
                "{backend}"
            );
            assert!(points.iter().all(|r| r.apply_ms > 0.0), "{backend}");
        }
        // Machine-readable output for the CI artifact.
        use crate::report::ToJson;
        let json = report.to_json();
        assert!(json.contains("\"latency_sweep\""), "{json}");
        assert!(json.contains("\"edges_per_s\""), "{json}");
    }

    #[test]
    fn named_stream_is_shuffled_but_complete() {
        let graph = build_advogato(0.01);
        let stream = named_stream(&graph);
        assert_eq!(stream.len(), graph.edge_count());
        // The shuffle interleaves labels: the first hundred triples are not
        // all the same label (label-major order would make them so).
        let first_labels: std::collections::BTreeSet<&str> = stream
            .iter()
            .take(100)
            .map(|(_, l, _)| l.as_str())
            .collect();
        assert!(first_labels.len() > 1, "stream is not interleaved");
    }
}
