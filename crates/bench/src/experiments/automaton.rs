//! Experiment **X4** (extension): the automaton / product-BFS baseline
//! (approach 1 of the paper's introduction) against the path index.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use std::time::Instant;

/// One query measured under the index pipeline and the automaton baseline.
#[derive(Debug, Clone)]
pub struct AutomatonRow {
    /// Query name.
    pub query: String,
    /// minSupport (k = 3) execution time in milliseconds.
    pub index_ms: f64,
    /// Automaton product-BFS time in milliseconds.
    pub automaton_ms: f64,
    /// `automaton_ms / index_ms`.
    pub speedup: f64,
}

/// The full X4 report.
#[derive(Debug, Clone)]
pub struct AutomatonReport {
    /// Scale factor used.
    pub scale: f64,
    /// Per-query rows.
    pub rows: Vec<AutomatonRow>,
    /// Arithmetic mean speedup.
    pub mean_speedup: f64,
}

/// Runs the automaton comparison at the given scale with a k = 3 index.
pub fn automaton_comparison(scale: f64) -> AutomatonReport {
    let graph = build_advogato(scale);
    println!(
        "== X4: path index (minSupport, k=3) vs automaton product-BFS \
         (scale {scale}: {} nodes, {} edges)\n",
        graph.node_count(),
        graph.edge_count()
    );
    let db = PathDb::build(graph, PathDbConfig::with_k(3));
    let mut rows = Vec::new();
    let mut table = Table::new(vec!["query", "index (ms)", "automaton (ms)", "speedup"]);
    for q in advogato_queries() {
        let result = db
            .run(&q.text, QueryOptions::with_strategy(Strategy::MinSupport))
            .unwrap();
        let index_ms = result.stats.elapsed.as_secs_f64() * 1e3;
        let start = Instant::now();
        let automaton_answer = db.query_automaton(&q.text).unwrap();
        let automaton_ms = start.elapsed().as_secs_f64() * 1e3;
        assert_eq!(
            automaton_answer.len(),
            result.len(),
            "answers differ for {}",
            q.name
        );
        let speedup = automaton_ms / index_ms.max(1e-6);
        table.push_row(vec![
            q.name.clone(),
            format!("{index_ms:.3}"),
            format!("{automaton_ms:.1}"),
            format!("{speedup:.0}x"),
        ]);
        rows.push(AutomatonRow {
            query: q.name.clone(),
            index_ms,
            automaton_ms,
            speedup,
        });
    }
    println!("{}", table.render());
    let mean_speedup = rows.iter().map(|r| r.speedup).sum::<f64>() / rows.len() as f64;
    println!("average speedup over the automaton baseline: {mean_speedup:.0}x\n");
    let report = AutomatonReport {
        scale,
        rows,
        mean_speedup,
    };
    write_json("automaton_comparison", &report);
    report
}

crate::impl_to_json!(AutomatonRow {
    query,
    index_ms,
    automaton_ms,
    speedup
});
crate::impl_to_json!(AutomatonReport {
    scale,
    rows,
    mean_speedup
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automaton_comparison_runs_at_tiny_scale() {
        let report = automaton_comparison(0.005);
        assert_eq!(report.rows.len(), 8);
        assert!(report.mean_speedup > 0.0);
    }
}
