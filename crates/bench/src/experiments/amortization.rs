//! Experiment **X8** (extension): amortizing query compilation with prepared
//! queries and the plan cache.
//!
//! The paper's pipeline re-runs parse → bind → rewrite → plan on every
//! submission; for a hot query served many times that front-end cost is pure
//! overhead. This experiment measures throughput (executions/second) of a
//! hot Advogato query under three serving modes:
//!
//! 1. **parse-per-call** — the seed behaviour: plan cache disabled, every
//!    call recompiles and replans from the query text;
//! 2. **plan-cache** — ad-hoc `run()` calls with the LRU plan cache on (the
//!    text is still hashed and looked up per call);
//! 3. **prepared** — `prepare()` once, `PreparedQuery::run` per call (no
//!    per-call text lookup at all).
//!
//! All three modes execute the identical physical plan, so the throughput
//! difference is exactly the amortized front-end work.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use std::time::Instant;

/// One `(query, mode)` throughput measurement.
#[derive(Debug, Clone)]
pub struct AmortizationRow {
    /// Query name (`A1`..).
    pub query: String,
    /// Serving mode (`parse-per-call`, `plan-cache`, `prepared`).
    pub mode: String,
    /// Executions measured.
    pub runs: usize,
    /// Executions per second.
    pub throughput_per_s: f64,
    /// Speed-up over the parse-per-call baseline for the same query.
    pub speedup: f64,
}

/// The X8 report.
#[derive(Debug, Clone)]
pub struct AmortizationReport {
    /// Scale factor used.
    pub scale: f64,
    /// Locality parameter used.
    pub k: usize,
    /// Compilations performed by the cached database (one per distinct
    /// query text, however many executions ran).
    pub cached_compilations: u64,
    /// Throughput rows.
    pub rows: Vec<AmortizationRow>,
}

fn throughput(runs: usize, mut call: impl FnMut()) -> f64 {
    let start = Instant::now();
    for _ in 0..runs {
        call();
    }
    runs as f64 / start.elapsed().as_secs_f64().max(1e-9)
}

/// Runs the amortization experiment at the given scale with locality `k`.
pub fn amortization(scale: f64, k: usize) -> AmortizationReport {
    let graph = build_advogato(scale);
    println!(
        "== X8: prepared-query amortization (scale {scale}: {} nodes, {} edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );

    // Two databases over the same graph: one with the plan cache disabled
    // (the parse-per-call baseline) and one with it enabled.
    let uncached = PathDb::build(
        graph.clone(),
        PathDbConfig {
            plan_cache_capacity: 0,
            ..PathDbConfig::with_k(k)
        },
    );
    let cached = PathDb::build(graph, PathDbConfig::with_k(k));

    // Hot queries: the recursion-heavy Advogato queries whose rewrite
    // produces many disjuncts, so compilation is a real fraction of the
    // per-call cost.
    let queries: Vec<_> = advogato_queries()
        .into_iter()
        .filter(|q| ["A1", "A4", "A7"].contains(&q.name.as_str()))
        .collect();
    let strategy = Strategy::MinSupport;
    let runs = 200;

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "query",
        "parse-per-call (q/s)",
        "plan-cache (q/s)",
        "prepared (q/s)",
        "prepared speedup",
    ]);
    for q in &queries {
        let text = q.text.as_str();
        // Warm up both databases (and fill the cache / plan slots) so every
        // mode measures steady-state serving.
        uncached
            .run(text, QueryOptions::with_strategy(strategy))
            .unwrap();
        cached
            .run(text, QueryOptions::with_strategy(strategy))
            .unwrap();
        let prepared = cached.prepare(text).unwrap();

        let per_call = throughput(runs, || {
            uncached
                .run(text, QueryOptions::with_strategy(strategy))
                .unwrap();
        });
        let via_cache = throughput(runs, || {
            cached
                .run(text, QueryOptions::with_strategy(strategy))
                .unwrap();
        });
        let via_prepared = throughput(runs, || {
            prepared
                .run(&cached, QueryOptions::with_strategy(strategy))
                .unwrap();
        });

        for (mode, value) in [
            ("parse-per-call", per_call),
            ("plan-cache", via_cache),
            ("prepared", via_prepared),
        ] {
            rows.push(AmortizationRow {
                query: q.name.clone(),
                mode: mode.to_owned(),
                runs,
                throughput_per_s: value,
                speedup: value / per_call,
            });
        }
        table.push_row(vec![
            q.name.clone(),
            format!("{per_call:.0}"),
            format!("{via_cache:.0}"),
            format!("{via_prepared:.0}"),
            format!("{:.2}x", via_prepared / per_call),
        ]);
    }
    println!("{}", table.render());
    let cache_stats = cached.plan_cache_stats();
    println!(
        "cached db compiled {} distinct texts across {} total lookups (hit rate {:.1}%)",
        cache_stats.compilations,
        cache_stats.hits + cache_stats.misses,
        cache_stats.hit_rate() * 100.0
    );
    println!(
        "expected shape: plan-cache and prepared modes beat parse-per-call, most visibly on \
         recursion-heavy queries whose rewrite fans out into many disjuncts; prepared edges out \
         the plan cache by skipping the per-call text hash + LRU touch.\n"
    );

    let report = AmortizationReport {
        scale,
        k,
        cached_compilations: cache_stats.compilations,
        rows,
    };
    write_json("amortization", &report);
    report
}

crate::impl_to_json!(AmortizationRow {
    query,
    mode,
    runs,
    throughput_per_s,
    speedup
});
crate::impl_to_json!(AmortizationReport {
    scale,
    k,
    cached_compilations,
    rows
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amortization_experiment_runs_at_tiny_scale() {
        let report = amortization(0.005, 2);
        // 3 queries × 3 modes.
        assert_eq!(report.rows.len(), 9);
        // One compilation per distinct text on the cached database.
        assert_eq!(report.cached_compilations, 3);
        for row in &report.rows {
            assert!(row.throughput_per_s > 0.0, "{row:?}");
        }
    }
}
