//! Experiment **X3** (extension / ablation): the value of the lightweight
//! histogram. The paper's §5 observation is that the histogram-guided
//! strategies (minSupport / minJoin) beat semi-naive; this ablation
//! additionally compares the equi-depth histogram against exact per-path
//! statistics to show the cheap summary loses almost nothing.

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{EstimationMode, PathDb, PathDbConfig, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;

/// One query measured under the three planner configurations.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Query name.
    pub query: String,
    /// semi-naive (no selectivity information used) in milliseconds.
    pub no_histogram_ms: f64,
    /// minSupport with the equi-depth histogram in milliseconds.
    pub equi_depth_ms: f64,
    /// minSupport with exact per-path counts in milliseconds.
    pub exact_ms: f64,
}

/// The X3 report.
#[derive(Debug, Clone)]
pub struct AblationReport {
    /// Scale factor used.
    pub scale: f64,
    /// Index locality parameter.
    pub k: usize,
    /// Per-query rows.
    pub rows: Vec<AblationRow>,
}

/// Runs the histogram ablation at the given scale with a k = 3 index.
pub fn histogram_ablation(scale: f64) -> AblationReport {
    let k = 3;
    let graph = build_advogato(scale);
    println!(
        "== X3: histogram ablation (scale {scale}: {} nodes, {} edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );
    let equi = PathDb::build(
        graph.clone(),
        PathDbConfig {
            estimation: EstimationMode::EquiDepth { buckets: 32 },
            ..PathDbConfig::with_k(k)
        },
    );
    let exact = PathDb::build(
        graph,
        PathDbConfig {
            estimation: EstimationMode::Exact,
            ..PathDbConfig::with_k(k)
        },
    );
    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "query",
        "semi-naive / no stats (ms)",
        "minSupport + equi-depth (ms)",
        "minSupport + exact (ms)",
    ]);
    for q in advogato_queries() {
        let no_hist = equi
            .run(&q.text, QueryOptions::with_strategy(Strategy::SemiNaive))
            .unwrap();
        let with_equi = equi
            .run(&q.text, QueryOptions::with_strategy(Strategy::MinSupport))
            .unwrap();
        let with_exact = exact
            .run(&q.text, QueryOptions::with_strategy(Strategy::MinSupport))
            .unwrap();
        assert_eq!(no_hist.len(), with_equi.len());
        assert_eq!(with_equi.len(), with_exact.len());
        let row = AblationRow {
            query: q.name.clone(),
            no_histogram_ms: no_hist.stats.elapsed.as_secs_f64() * 1e3,
            equi_depth_ms: with_equi.stats.elapsed.as_secs_f64() * 1e3,
            exact_ms: with_exact.stats.elapsed.as_secs_f64() * 1e3,
        };
        table.push_row(vec![
            q.name.clone(),
            format!("{:.3}", row.no_histogram_ms),
            format!("{:.3}", row.equi_depth_ms),
            format!("{:.3}", row.exact_ms),
        ]);
        rows.push(row);
    }
    println!("{}", table.render());
    println!(
        "expected shape: the two histogram-guided columns are at or below semi-naive, and the \
         equi-depth summary performs like exact statistics (the paper's \"value of the \
         lightweight histogram\").\n"
    );
    let report = AblationReport { scale, k, rows };
    write_json("histogram_ablation", &report);
    report
}

crate::impl_to_json!(AblationRow {
    query,
    no_histogram_ms,
    equi_depth_ms,
    exact_ms
});
crate::impl_to_json!(AblationReport { scale, k, rows });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_runs_at_tiny_scale() {
        let report = histogram_ablation(0.005);
        assert_eq!(report.rows.len(), 8);
    }
}
