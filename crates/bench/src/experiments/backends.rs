//! Experiment **X7** (extension): the same RPQ workload executed against the
//! three index backends the query pipeline is generic over — the in-memory
//! B+tree, the buffer-pool-backed paged B+tree and the compressed per-path
//! pair blocks.
//!
//! The paper's index is storage-agnostic; its companion study (ref. \[14\])
//! measures the in-memory vs disk-resident vs compressed trade-off. With the
//! `PathIndexBackend` refactor the identical plan runs on each backend, so
//! this experiment can report (a) that the answers agree and (b) what each
//! backend's latency and footprint look like.

use crate::datasets::build_advogato;
use crate::report::{format_duration_ms, write_json, Table};
use pathix_core::{BackendChoice, PathDb, PathDbConfig, PathIndexBackend, QueryOptions, Strategy};
use pathix_datagen::advogato_queries;
use std::time::Instant;

/// One `(backend, query)` measurement.
#[derive(Debug, Clone)]
pub struct BackendRow {
    /// Backend name (`memory`, `paged`, `compressed`).
    pub backend: String,
    /// Query name (`A1`..`A8`).
    pub query: String,
    /// Result pairs.
    pub answers: usize,
    /// Median query latency in milliseconds.
    pub median_ms: f64,
}

/// The X7 report.
#[derive(Debug, Clone)]
pub struct BackendReport {
    /// Scale factor used.
    pub scale: f64,
    /// Locality parameter used.
    pub k: usize,
    /// Approximate index footprint per backend, in bytes.
    pub footprint_bytes: Vec<(String, u64)>,
    /// Latency rows.
    pub rows: Vec<BackendRow>,
}

fn median_latency_ms(db: &PathDb, query: &str, runs: usize) -> (usize, f64) {
    let mut answers = 0;
    let mut samples: Vec<f64> = (0..runs.max(1))
        .map(|_| {
            let start = Instant::now();
            let result = db
                .run(query, QueryOptions::with_strategy(Strategy::MinSupport))
                .expect("benchmark query failed");
            answers = result.len();
            start.elapsed().as_secs_f64() * 1e3
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    (answers, samples[samples.len() / 2])
}

/// Runs the backend comparison at the given scale with locality `k`.
pub fn backend_comparison(scale: f64, k: usize) -> BackendReport {
    let graph = build_advogato(scale);
    println!(
        "== X7: query latency across index backends (scale {scale}: {} nodes, {} edges, k = {k})\n",
        graph.node_count(),
        graph.edge_count()
    );

    let backends = [
        ("memory", BackendChoice::Memory),
        ("paged", BackendChoice::PagedInMemory { pool_frames: 256 }),
        ("compressed", BackendChoice::Compressed),
    ];
    let queries = advogato_queries();

    let mut rows = Vec::new();
    let mut footprints = Vec::new();
    let mut table = Table::new(vec![
        "query",
        "answers",
        "memory (ms)",
        "paged (ms)",
        "compressed (ms)",
    ]);
    let mut per_query: Vec<Vec<String>> = queries.iter().map(|q| vec![q.name.clone()]).collect();

    let mut reference_answers: Option<Vec<usize>> = None;
    for (name, choice) in &backends {
        let start = Instant::now();
        let db = PathDb::try_build(
            graph.clone(),
            PathDbConfig::with_k(k).with_backend(choice.clone()),
        )
        .expect("backend build failed");
        let build = start.elapsed();
        let stats = db.index().stats();
        footprints.push(((*name).to_owned(), stats.approx_bytes));
        println!(
            "{name:>11}: built in {} ms, {} entries, ~{} KiB",
            format_duration_ms(build),
            stats.entries,
            stats.approx_bytes / 1024
        );

        let mut answer_counts = Vec::new();
        for (qi, query) in queries.iter().enumerate() {
            let (answers, median) = median_latency_ms(&db, &query.text, 5);
            answer_counts.push(answers);
            if per_query[qi].len() == 1 {
                per_query[qi].push(answers.to_string());
            }
            per_query[qi].push(format!("{median:.3}"));
            rows.push(BackendRow {
                backend: (*name).to_owned(),
                query: query.name.clone(),
                answers,
                median_ms: median,
            });
        }
        match &reference_answers {
            None => reference_answers = Some(answer_counts),
            Some(reference) => assert_eq!(
                reference, &answer_counts,
                "{name} backend disagrees with the reference answers"
            ),
        }
    }
    println!();
    for row in per_query {
        table.push_row(row);
    }
    println!("{}", table.render());
    println!(
        "expected shape: every backend returns identical answer counts; memory is fastest, \
         the paged backend pays buffer-pool indirection, the compressed backend pays block \
         decoding but holds the smallest footprint.\n"
    );

    let report = BackendReport {
        scale,
        k,
        footprint_bytes: footprints,
        rows,
    };
    write_json("backend_comparison", &report);
    report
}

crate::impl_to_json!(BackendRow {
    backend,
    query,
    answers,
    median_ms
});
crate::impl_to_json!(BackendReport {
    scale,
    k,
    footprint_bytes,
    rows
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backend_experiment_runs_at_tiny_scale() {
        let report = backend_comparison(0.005, 2);
        // 3 backends × 8 queries.
        assert_eq!(report.rows.len(), 24);
        assert_eq!(report.footprint_bytes.len(), 3);
        // Identical answers per query across backends (also asserted inside).
        for q in ["A1", "A5"] {
            let answers: Vec<usize> = report
                .rows
                .iter()
                .filter(|r| r.query == q)
                .map(|r| r.answers)
                .collect();
            assert!(answers.windows(2).all(|w| w[0] == w[1]), "query {q}");
        }
    }
}
