//! Experiment **X13** (extension): read latency under a serving tier with a
//! concurrent write stream.
//!
//! The robustness work in `pathix-serve` is only free if it does not cost
//! the readers much: snapshots make reads wait-free with respect to the
//! writer, the two-class queue keeps cheap point lookups from queuing behind
//! scans, and group-committing the write stream amortizes the WAL fsync.
//! This experiment quantifies all three on the **on-disk** backend (the only
//! one that pays real durability costs):
//!
//! * a fixed-rate **open-loop** stream of point lookups is submitted through
//!   a [`Server`] — arrivals are scheduled on a clock, so a slow system
//!   accumulates queueing delay instead of quietly slowing the generator
//!   down (closed-loop coordination would hide exactly the tail this
//!   experiment exists to measure), and per-request latency is
//!   `finished_at − scheduled_arrival`;
//! * a concurrent writer applies fresh named edges at three target rates
//!   (including zero, the read-only baseline), grouped into two different
//!   group-commit batch sizes — batch size B means one WAL append+fsync
//!   acknowledges B inserts.
//!
//! Reported per cell: read p50/p99/max latency, achieved write throughput,
//! and admission-control counters (sheds should be zero at these rates —
//! the queues are sized for the load; the overload regime itself is
//! pinned down functionally in `tests/serve_chaos.rs`).

use crate::datasets::build_advogato;
use crate::report::{write_json, Table};
use pathix_core::{BackendChoice, NodeId, PathDb, PathDbConfig, QueryOptions};
use pathix_graph::Graph;
use pathix_index::GraphUpdate;
use pathix_serve::{QueryTicket, ServeConfig, Server};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One (write rate × group-commit batch) cell of the serving sweep.
#[derive(Debug, Clone)]
pub struct ServingRow {
    /// Target write rate, in named inserts per second (0 = read-only).
    pub write_rate: f64,
    /// Group-commit batch size: inserts acknowledged per WAL fsync.
    pub write_batch: usize,
    /// Point lookups that completed with an answer.
    pub reads: usize,
    /// Median read latency (scheduled arrival → answer), milliseconds.
    pub read_p50_ms: f64,
    /// 99th-percentile read latency, milliseconds.
    pub read_p99_ms: f64,
    /// Worst read latency, milliseconds.
    pub read_max_ms: f64,
    /// Writes acknowledged (durable) during the cell.
    pub writes_acked: u64,
    /// Achieved write throughput, named inserts per second.
    pub writes_per_s: f64,
    /// Requests shed by admission control during the cell.
    pub shed: u64,
    /// Peak requests in flight (queued + executing) — the bounded-queue
    /// witness.
    pub max_in_flight: u64,
}

/// The X13 report.
#[derive(Debug, Clone)]
pub struct ServingReport {
    /// Advogato-like scale factor.
    pub scale: f64,
    /// Locality parameter.
    pub k: usize,
    /// Open-loop read arrival rate, lookups per second.
    pub read_rate: f64,
    /// Measured duration of each cell, milliseconds.
    pub cell_ms: f64,
    /// One row per (group-commit batch, write rate) cell.
    pub rows: Vec<ServingRow>,
}

/// Nearest-rank percentile of an ascending-sorted slice.
fn percentile(sorted_ms: &[f64], p: f64) -> f64 {
    if sorted_ms.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ms.len() - 1) as f64 * p).round() as usize;
    sorted_ms[idx]
}

/// A tiny fixed-seed LCG (reproducible, dependency free) over `0..n`.
struct Lcg(u64);

impl Lcg {
    fn next(&mut self, n: usize) -> usize {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (self.0 >> 33) as usize % n.max(1)
    }
}

/// Runs one cell: an open-loop point-lookup stream against a freshly built
/// on-disk database while a paced writer group-commits fresh named edges.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    graph: &Graph,
    k: usize,
    label: &str,
    read_query: &str,
    write_rate: f64,
    write_batch: usize,
    read_rate: f64,
    duration: Duration,
) -> ServingRow {
    let disk_path = std::env::temp_dir().join(format!(
        "pathix-x13-{}-{write_batch}-{}.pages",
        std::process::id(),
        write_rate as u64
    ));
    let config = PathDbConfig::with_k(k).with_backend(BackendChoice::OnDisk {
        path: disk_path,
        pool_frames: 256,
    });
    let db = PathDb::try_build(graph.clone(), config)
        .unwrap_or_else(|e| panic!("on-disk build failed: {e}"));
    let server = Server::new(
        Arc::new(db),
        ServeConfig {
            workers: 3,
            queue_capacity: 512,
            max_in_flight: 2048,
            ..ServeConfig::default()
        },
    );

    let nodes = graph.node_count();
    let start = Instant::now();
    let end = start + duration;
    let mut writes_acked = 0u64;
    let mut tickets: Vec<(Instant, QueryTicket)> = Vec::new();

    std::thread::scope(|scope| {
        // The paced writer: one group-commit batch of `write_batch` fresh
        // named edges every `write_batch / write_rate` seconds (back to back
        // if a durable apply is slower than the interval — the achieved
        // rate column reports what the write path actually absorbed).
        let writer = (write_rate > 0.0).then(|| {
            let server = &server;
            scope.spawn(move || {
                let interval = Duration::from_secs_f64(write_batch as f64 / write_rate);
                let mut acked = 0u64;
                let mut n = 0usize;
                let mut next = start;
                while Instant::now() < end {
                    if let Some(wait) = next.checked_duration_since(Instant::now()) {
                        std::thread::sleep(wait);
                    }
                    next += interval;
                    let batch: Vec<GraphUpdate> = (0..write_batch)
                        .map(|i| {
                            GraphUpdate::insert_named(
                                format!("x13-src-{}", n + i),
                                label.to_owned(),
                                format!("x13-dst-{}", n + i),
                            )
                        })
                        .collect();
                    n += write_batch;
                    match server.write(batch) {
                        Ok(_) => acked += write_batch as u64,
                        Err(e) => panic!("write stream failed: {e}"),
                    }
                }
                acked
            })
        });

        // The open-loop read driver: arrivals are fixed on the clock; the
        // ticket is kept and awaited after the cell so waiting for answers
        // never throttles the arrival process.
        let read_interval = Duration::from_secs_f64(1.0 / read_rate);
        let mut rng = Lcg(0x13);
        let mut arrival = start;
        while arrival < end {
            if let Some(wait) = arrival.checked_duration_since(Instant::now()) {
                std::thread::sleep(wait);
            }
            let source = NodeId(rng.next(nodes) as u32);
            let options = QueryOptions::new().source(source).limit(16);
            match server.submit_query(read_query, options) {
                Ok(ticket) => tickets.push((arrival, ticket)),
                // Sheds are counted by the server; the arrival clock keeps
                // ticking regardless (open loop).
                Err(e) => assert!(e.is_transient(), "read submission failed: {e}"),
            }
            arrival += read_interval;
        }

        if let Some(writer) = writer {
            writes_acked = match writer.join() {
                Ok(acked) => acked,
                Err(payload) => std::panic::resume_unwind(payload),
            };
        }
    });

    let mut latencies_ms: Vec<f64> = Vec::with_capacity(tickets.len());
    for (arrival, ticket) in tickets {
        let reply = ticket
            .wait()
            .unwrap_or_else(|e| panic!("point lookup failed: {e}"));
        latencies_ms.push(reply.finished_at.duration_since(arrival).as_secs_f64() * 1e3);
    }
    latencies_ms.sort_by(|a, b| a.total_cmp(b));
    let elapsed = start.elapsed().as_secs_f64();
    let health = server.health();
    server
        .shutdown()
        .unwrap_or_else(|e| panic!("serving-tier shutdown failed: {e}"));

    ServingRow {
        write_rate,
        write_batch,
        reads: latencies_ms.len(),
        read_p50_ms: percentile(&latencies_ms, 0.50),
        read_p99_ms: percentile(&latencies_ms, 0.99),
        read_max_ms: percentile(&latencies_ms, 1.0),
        writes_acked,
        writes_per_s: writes_acked as f64 / elapsed.max(1e-9),
        shed: health.counters.shed_overload,
        max_in_flight: health.counters.max_in_flight,
    }
}

/// Runs the serving-tier latency experiment at the given scale with
/// locality `k`.
pub fn serving(scale: f64, k: usize) -> ServingReport {
    let graph = build_advogato(scale);
    let read_rate = 300.0;
    let cell = Duration::from_millis(900);
    let write_rates = [0.0, 500.0, 2000.0];
    let write_batches = [8usize, 64];
    println!(
        "== X13: serving-tier read latency under write load (scale {scale}: {} nodes, \
         {} edges, k = {k}, on-disk)\n",
        graph.node_count(),
        graph.edge_count()
    );
    println!(
        "-- open-loop point lookups at {read_rate}/s for {} ms per cell, writer group-commits \
         fresh named edges\n",
        cell.as_millis()
    );

    // One existing label keeps the written edges indexable (the writer pays
    // the real counting-index delta, not a no-op).
    let label = graph
        .labels()
        .next()
        .and_then(|l| graph.label_name(l))
        .unwrap_or("observes")
        .to_owned();
    let read_query = label.clone();

    let mut rows = Vec::new();
    let mut table = Table::new(vec![
        "commit batch",
        "write rate (target/s)",
        "achieved/s",
        "reads",
        "p50 (ms)",
        "p99 (ms)",
        "max (ms)",
        "shed",
        "peak in-flight",
    ]);
    for &write_batch in &write_batches {
        for &write_rate in &write_rates {
            let row = run_cell(
                &graph,
                k,
                &label,
                &read_query,
                write_rate,
                write_batch,
                read_rate,
                cell,
            );
            table.push_row(vec![
                row.write_batch.to_string(),
                format!("{:.0}", row.write_rate),
                format!("{:.0}", row.writes_per_s),
                row.reads.to_string(),
                format!("{:.3}", row.read_p50_ms),
                format!("{:.3}", row.read_p99_ms),
                format!("{:.3}", row.read_max_ms),
                row.shed.to_string(),
                row.max_in_flight.to_string(),
            ]);
            rows.push(row);
        }
    }
    println!("{}", table.render());
    println!(
        "expected shape: read p50 stays flat as the write rate climbs — point lookups run \
         against immutable snapshots and never block on the writer — while p99 grows only \
         mildly with write pressure (a lookup occasionally queues behind the batch boundary \
         of an in-flight request). The larger group-commit batch sustains a higher achieved \
         write rate for the same target because one WAL fsync acknowledges more inserts; \
         the shed column stays 0 and peak in-flight stays far below the queue bound at \
         these rates — admission control is idle until the overload regime, which \
         tests/serve_chaos.rs pins down functionally.\n"
    );

    let report = ServingReport {
        scale,
        k,
        read_rate,
        cell_ms: cell.as_secs_f64() * 1e3,
        rows,
    };
    write_json("serving", &report);
    report
}

crate::impl_to_json!(ServingRow {
    write_rate,
    write_batch,
    reads,
    read_p50_ms,
    read_p99_ms,
    read_max_ms,
    writes_acked,
    writes_per_s,
    shed,
    max_in_flight
});
crate::impl_to_json!(ServingReport {
    scale,
    k,
    read_rate,
    cell_ms,
    rows
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_experiment_runs_at_tiny_scale() {
        let report = serving(0.01, 2);
        // 2 group-commit batch sizes × 3 write rates.
        assert_eq!(report.rows.len(), 6);
        let batches: std::collections::BTreeSet<usize> =
            report.rows.iter().map(|r| r.write_batch).collect();
        assert_eq!(batches.len(), 2);
        for row in &report.rows {
            assert!(row.reads > 0, "cell {}/{}", row.write_batch, row.write_rate);
            assert!(row.read_p50_ms > 0.0);
            assert!(row.read_p99_ms >= row.read_p50_ms);
            assert!(row.read_max_ms >= row.read_p99_ms);
            if row.write_rate == 0.0 {
                assert_eq!(row.writes_acked, 0, "read-only baseline wrote");
            } else {
                assert!(row.writes_acked > 0, "writer never got through");
            }
            // The bounded-queue witness: in flight never exceeded the
            // configured global bound.
            assert!(row.max_in_flight <= 2048);
        }
        use crate::report::ToJson;
        let json = report.to_json();
        assert!(json.contains("\"read_p99_ms\""), "{json}");
        assert!(json.contains("\"writes_per_s\""), "{json}");
    }

    #[test]
    fn percentile_is_nearest_rank() {
        let v = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 1.0), 4.0);
        assert_eq!(percentile(&v, 0.5), 3.0);
        assert_eq!(percentile(&[], 0.5), 0.0);
    }
}
