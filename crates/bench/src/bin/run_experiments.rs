//! Regenerates the paper's figures and claims as plain-text tables.
//!
//! ```text
//! cargo run -p pathix-bench --release --bin run_experiments -- [experiment]
//!
//! experiments:
//!   fig2       Figure 2: 8 Advogato queries × 4 strategies × k ∈ {1,2,3}
//!   datalog    §6 claim: speedup over Datalog-based evaluation
//!   automaton  extension: speedup over the automaton product-BFS baseline
//!   index      extension: index construction cost/size vs k
//!   scaling    extension: query time vs graph size
//!   ablation   extension: equi-depth histogram vs exact statistics
//!   incremental extension: incremental index maintenance vs rebuild
//!   amortization extension: parse-per-call vs plan-cache vs prepared throughput
//!   updates    extension: live PathDb::apply throughput vs full rebuild
//!   all        everything above (default)
//! ```
//!
//! The dataset scale is `PATHIX_BENCH_SCALE` (default 0.15 of the real
//! Advogato); the Datalog/automaton comparisons automatically use a smaller
//! graph because the baselines are orders of magnitude slower.

use pathix_bench::{
    amortization, automaton_comparison, backend_comparison, bench_scale, datalog_speedup, fig2,
    histogram_ablation, incremental_maintenance, index_construction, live_updates, paged_index,
    parallel, scaling, sql_comparison,
};

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_owned());
    let scale = bench_scale();
    // The baselines recompute everything per query, so run them on a smaller
    // sample to keep the harness finishing in minutes.
    let baseline_scale = (scale * 0.2).clamp(0.005, 0.02);
    println!(
        "pathix experiment harness — scale {scale} (set PATHIX_BENCH_SCALE to change), \
         baseline comparisons at scale {baseline_scale}\n"
    );
    let ks = [1usize, 2, 3];

    match arg.as_str() {
        "fig2" => {
            fig2(scale, &ks);
        }
        "datalog" => {
            datalog_speedup(baseline_scale);
        }
        "automaton" => {
            automaton_comparison(baseline_scale);
        }
        "index" => {
            index_construction(scale, &ks);
        }
        "scaling" => {
            scaling(&[500, 1_000, 2_000, 4_000]);
        }
        "ablation" => {
            histogram_ablation(scale);
        }
        "sql" => {
            sql_comparison(baseline_scale);
        }
        "paged" => {
            paged_index(scale);
        }
        "backends" => {
            backend_comparison(scale, 2);
        }
        "amortization" => {
            amortization(scale, 2);
        }
        "parallel" => {
            parallel(scale);
        }
        "incremental" => {
            incremental_maintenance(scale);
        }
        "updates" => {
            live_updates(scale, 2);
        }
        "all" => {
            fig2(scale, &ks);
            datalog_speedup(baseline_scale);
            automaton_comparison(baseline_scale);
            index_construction(scale, &ks);
            scaling(&[500, 1_000, 2_000, 4_000]);
            histogram_ablation(scale);
            sql_comparison(baseline_scale);
            paged_index(scale);
            backend_comparison(scale, 2);
            amortization(scale, 2);
            parallel(scale);
            incremental_maintenance(scale);
            live_updates(scale, 2);
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: fig2, datalog, automaton, \
                 index, scaling, ablation, sql, paged, backends, amortization, parallel, \
                 incremental, updates, all"
            );
            std::process::exit(2);
        }
    }
}
