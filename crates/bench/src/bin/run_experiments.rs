//! Regenerates the paper's figures and claims as plain-text tables.
//!
//! ```text
//! cargo run -p pathix-bench --release --bin run_experiments -- [experiment] [--json]
//!
//! experiments:
//!   fig2       Figure 2: 8 Advogato queries × 4 strategies × k ∈ {1,2,3}
//!   datalog    §6 claim: speedup over Datalog-based evaluation
//!   automaton  extension: speedup over the automaton product-BFS baseline
//!   index      extension: index construction cost/size vs k
//!   scaling    extension: query time vs graph size
//!   ablation   extension: equi-depth histogram vs exact statistics
//!   incremental extension: incremental index maintenance vs rebuild
//!   amortization extension: parse-per-call vs plan-cache vs prepared throughput
//!   updates    extension: live PathDb::apply throughput vs full rebuild
//!   scan-join  extension: vectorized scan/join engine vs pair-at-a-time
//!   ingest     extension: streaming ingest from an empty database
//!   serving    extension: serving-tier read latency under write load
//!   all        everything above (default)
//! ```
//!
//! The dataset scale is `PATHIX_BENCH_SCALE` (default 0.15 of the real
//! Advogato); the Datalog/automaton comparisons automatically use a smaller
//! graph because the baselines are orders of magnitude slower.
//!
//! `--json` additionally writes the `updates`, `scan-join`, `ingest` and
//! `serving` experiments' machine-readable results to `BENCH_updates.json`,
//! `BENCH_scan_join.json`, `BENCH_ingest.json` and `BENCH_serving.json` in
//! the current directory (apply throughput, publish latency, per-backend
//! scan/join speedups and skip counters, streaming-ingest throughput and
//! append-latency flatness, serving-tier p50/p99 read latency vs write rate
//! and group-commit batch) so CI can archive the perf trajectory run over
//! run.

use pathix_bench::report::ToJson;
use pathix_bench::{
    amortization, automaton_comparison, backend_comparison, bench_scale, datalog_speedup, fig2,
    histogram_ablation, incremental_maintenance, index_construction, ingest, live_updates,
    paged_index, parallel, scaling, scan_join, serving, sql_comparison,
};

/// Writes a report to `name` in the current directory (best effort).
fn write_bench_json<T: ToJson>(name: &str, report: &T) {
    match std::fs::write(name, report.to_json()) {
        Ok(()) => println!("(machine-readable results written to {name})"),
        Err(e) => eprintln!("warning: could not write {name}: {e}"),
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let json = args.iter().any(|a| a == "--json");
    let arg = args
        .iter()
        .find(|a| !a.starts_with("--"))
        .cloned()
        .unwrap_or_else(|| "all".to_owned());
    let scale = bench_scale();
    // The baselines recompute everything per query, so run them on a smaller
    // sample to keep the harness finishing in minutes.
    let baseline_scale = (scale * 0.2).clamp(0.005, 0.02);
    println!(
        "pathix experiment harness — scale {scale} (set PATHIX_BENCH_SCALE to change), \
         baseline comparisons at scale {baseline_scale}\n"
    );
    let ks = [1usize, 2, 3];

    match arg.as_str() {
        "fig2" => {
            fig2(scale, &ks);
        }
        "datalog" => {
            datalog_speedup(baseline_scale);
        }
        "automaton" => {
            automaton_comparison(baseline_scale);
        }
        "index" => {
            index_construction(scale, &ks);
        }
        "scaling" => {
            scaling(&[500, 1_000, 2_000, 4_000]);
        }
        "ablation" => {
            histogram_ablation(scale);
        }
        "sql" => {
            sql_comparison(baseline_scale);
        }
        "paged" => {
            paged_index(scale);
        }
        "backends" => {
            backend_comparison(scale, 2);
        }
        "amortization" => {
            amortization(scale, 2);
        }
        "parallel" => {
            parallel(scale);
        }
        "incremental" => {
            incremental_maintenance(scale);
        }
        "updates" => {
            let report = live_updates(scale, 2);
            if json {
                write_bench_json("BENCH_updates.json", &report);
            }
        }
        "scan-join" => {
            let report = scan_join(scale, 2);
            if json {
                write_bench_json("BENCH_scan_join.json", &report);
            }
        }
        "ingest" => {
            let report = ingest(scale, 2);
            if json {
                write_bench_json("BENCH_ingest.json", &report);
            }
        }
        "serving" => {
            let report = serving(scale, 2);
            if json {
                write_bench_json("BENCH_serving.json", &report);
            }
        }
        "all" => {
            fig2(scale, &ks);
            datalog_speedup(baseline_scale);
            automaton_comparison(baseline_scale);
            index_construction(scale, &ks);
            scaling(&[500, 1_000, 2_000, 4_000]);
            histogram_ablation(scale);
            sql_comparison(baseline_scale);
            paged_index(scale);
            backend_comparison(scale, 2);
            amortization(scale, 2);
            parallel(scale);
            incremental_maintenance(scale);
            let report = live_updates(scale, 2);
            if json {
                write_bench_json("BENCH_updates.json", &report);
            }
            let report = scan_join(scale, 2);
            if json {
                write_bench_json("BENCH_scan_join.json", &report);
            }
            let report = ingest(scale, 2);
            if json {
                write_bench_json("BENCH_ingest.json", &report);
            }
            let report = serving(scale, 2);
            if json {
                write_bench_json("BENCH_serving.json", &report);
            }
        }
        other => {
            eprintln!(
                "unknown experiment `{other}`; expected one of: fig2, datalog, automaton, \
                 index, scaling, ablation, sql, paged, backends, amortization, parallel, \
                 incremental, updates, scan-join, ingest, serving, all"
            );
            std::process::exit(2);
        }
    }
}
