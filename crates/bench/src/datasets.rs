//! Dataset construction shared by the experiment runners and Criterion
//! benches.

use pathix_core::{PathDb, PathDbConfig};
use pathix_datagen::{advogato_like, barabasi_albert, AdvogatoConfig};
use pathix_graph::Graph;

/// Default scale factor applied to the Advogato node/edge counts when
/// `PATHIX_BENCH_SCALE` is not set.
///
/// The paper runs on the full 6,541-node network; a 10% sample keeps the
/// full k = 1..3 × 4-strategy × 8-query sweep (including the k = 3 index
/// build) in the low tens of seconds while preserving the relative ordering
/// of the methods.
pub const DEFAULT_SCALE: f64 = 0.10;

/// Reads the benchmark scale from `PATHIX_BENCH_SCALE` (default
/// [`DEFAULT_SCALE`], clamped to `(0, 1]`).
pub fn bench_scale() -> f64 {
    std::env::var("PATHIX_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|s| s.clamp(0.001, 1.0))
        .unwrap_or(DEFAULT_SCALE)
}

/// Builds the Advogato-like benchmark graph at the given scale.
pub fn build_advogato(scale: f64) -> Graph {
    advogato_like(AdvogatoConfig::scaled(scale))
}

/// Builds a [`PathDb`] over the Advogato-like graph for a given k.
pub fn build_advogato_db(scale: f64, k: usize) -> PathDb {
    PathDb::build(build_advogato(scale), PathDbConfig::with_k(k))
}

/// Builds a Barabási–Albert graph with `nodes` nodes for the scaling
/// experiment (3 labels like Advogato, 4 edges per node).
pub fn build_ba(nodes: usize, seed: u64) -> Graph {
    barabasi_albert(nodes, 4, &["a", "b", "c"], seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_advogato_db_builds() {
        let db = build_advogato_db(0.01, 2);
        assert!(db.stats().index.entries > 0);
        assert_eq!(db.k(), 2);
    }

    #[test]
    fn ba_graph_builds() {
        let g = build_ba(200, 3);
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.label_count(), 3);
    }
}
