//! # pathix-bench
//!
//! The benchmark harness that regenerates every figure and quantitative claim
//! of the paper's evaluation (see DESIGN.md §3 for the experiment index and
//! EXPERIMENTS.md for paper-vs-measured numbers).
//!
//! Two entry points:
//!
//! * the `run_experiments` binary prints the tables directly
//!   (`cargo run -p pathix-bench --release --bin run_experiments -- all`);
//! * the Criterion benches under `benches/` measure the same workloads with
//!   statistical rigor (`cargo bench`).
//!
//! The graph scale is controlled by the `PATHIX_BENCH_SCALE` environment
//! variable (a fraction of the real Advogato's 6,541 nodes / 51,127 edges).
//! The default keeps a full k = 1..3 sweep laptop-friendly; set it to `1.0`
//! to run at the paper's full dataset size.

pub mod datasets;
pub mod experiments;
pub mod report;

pub use datasets::{bench_scale, build_advogato, build_advogato_db};
pub use experiments::{
    ablation::histogram_ablation, amortization::amortization, automaton::automaton_comparison,
    backends::backend_comparison, datalog::datalog_speedup, fig2::fig2,
    incremental::incremental_maintenance, index_build::index_construction, ingest::ingest,
    paged::paged_index, parallel::parallel, scaling::scaling, scan_join::scan_join,
    serving::serving, sql::sql_comparison, updates::live_updates,
};
pub use report::{format_duration_ms, Table};
