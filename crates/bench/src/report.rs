//! Plain-text table rendering and JSON result persistence.

use serde::Serialize;
use std::path::PathBuf;
use std::time::Duration;

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration as fractional milliseconds with three decimals.
pub fn format_duration_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Writes a serializable experiment result to
/// `target/experiment-results/<name>.json` (best effort — failures are
/// reported but do not abort the experiment run).
pub fn write_json<T: Serialize>(name: &str, value: &T) {
    let dir = PathBuf::from("target").join("experiment-results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = std::fs::write(&path, json) {
                eprintln!("warning: could not write {path:?}: {e}");
            } else {
                println!("(raw results written to {})", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["query", "ms"]);
        t.push_row(vec!["A1", "0.123"]);
        t.push_row(vec!["A2-long-name", "17.000"]);
        let text = t.render();
        assert!(text.contains("query"));
        assert!(text.contains("A2-long-name"));
        assert_eq!(text.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration_ms(Duration::from_millis(12)), "12.000");
        assert_eq!(format_duration_ms(Duration::from_micros(1500)), "1.500");
    }
}
