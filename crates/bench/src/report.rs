//! Plain-text table rendering and JSON result persistence.
//!
//! Serialization is hand-rolled: the build environment is offline, so instead
//! of serde the harness uses the tiny [`ToJson`] trait plus the
//! [`impl_to_json!`](crate::impl_to_json) macro to turn experiment result
//! structs into pretty-printed JSON.

use std::path::PathBuf;
use std::time::Duration;

/// A value that can render itself as a JSON document.
pub trait ToJson {
    /// Renders the value as JSON text.
    fn to_json(&self) -> String;
}

macro_rules! impl_to_json_int {
    ($($t:ty),*) => {$(
        impl ToJson for $t {
            fn to_json(&self) -> String {
                self.to_string()
            }
        }
    )*};
}
impl_to_json_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

impl ToJson for f64 {
    fn to_json(&self) -> String {
        if self.is_finite() {
            // `{:?}` keeps enough digits to round-trip.
            format!("{self:?}")
        } else {
            "null".to_owned()
        }
    }
}

impl ToJson for f32 {
    fn to_json(&self) -> String {
        f64::from(*self).to_json()
    }
}

impl ToJson for String {
    fn to_json(&self) -> String {
        str::to_json(self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> String {
        let mut out = String::with_capacity(self.len() + 2);
        out.push('"');
        for c in self.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\r' => out.push_str("\\r"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out.push('"');
        out
    }
}

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> String {
        self.as_slice().to_json()
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> String {
        let items: Vec<String> = self.iter().map(ToJson::to_json).collect();
        format!("[{}]", items.join(", "))
    }
}

impl<A: ToJson, B: ToJson> ToJson for (A, B) {
    /// Pairs serialize as two-element arrays.
    fn to_json(&self) -> String {
        format!("[{}, {}]", self.0.to_json(), self.1.to_json())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> String {
        match self {
            Some(v) => v.to_json(),
            None => "null".to_owned(),
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> String {
        (**self).to_json()
    }
}

impl ToJson for Duration {
    /// Durations serialize as fractional seconds.
    fn to_json(&self) -> String {
        self.as_secs_f64().to_json()
    }
}

/// Implements [`ToJson`] for a struct by listing its fields, e.g.
/// `impl_to_json!(Row { k, entries, ratio });` — the offline replacement for
/// `#[derive(Serialize)]`.
#[macro_export]
macro_rules! impl_to_json {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::report::ToJson for $ty {
            fn to_json(&self) -> String {
                let fields: Vec<String> = vec![$(
                    format!(
                        "\"{}\": {}",
                        stringify!($field),
                        $crate::report::ToJson::to_json(&self.$field)
                    ),
                )+];
                format!("{{ {} }}", fields.join(", "))
            }
        }
    };
}

/// A simple fixed-width text table.
#[derive(Debug, Clone, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>>(header: Vec<S>) -> Self {
        Table {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn push_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let mut row: Vec<String> = row.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats a duration as fractional milliseconds with three decimals.
pub fn format_duration_ms(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64() * 1e3)
}

/// Writes a serializable experiment result to
/// `target/experiment-results/<name>.json` (best effort — failures are
/// reported but do not abort the experiment run).
pub fn write_json<T: ToJson + ?Sized>(name: &str, value: &T) {
    let dir = PathBuf::from("target").join("experiment-results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: could not create {dir:?}: {e}");
        return;
    }
    let path = dir.join(format!("{name}.json"));
    if let Err(e) = std::fs::write(&path, value.to_json()) {
        eprintln!("warning: could not write {path:?}: {e}");
    } else {
        println!("(raw results written to {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(vec!["query", "ms"]);
        t.push_row(vec!["A1", "0.123"]);
        t.push_row(vec!["A2-long-name", "17.000"]);
        let text = t.render();
        assert!(text.contains("query"));
        assert!(text.contains("A2-long-name"));
        assert_eq!(text.lines().count(), 4);
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    fn short_rows_are_padded() {
        let mut t = Table::new(vec!["a", "b", "c"]);
        t.push_row(vec!["only-one"]);
        assert!(t.render().contains("only-one"));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration_ms(Duration::from_millis(12)), "12.000");
        assert_eq!(format_duration_ms(Duration::from_micros(1500)), "1.500");
    }
}
