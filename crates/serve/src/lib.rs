//! # pathix-serve
//!
//! A worker-pool serving tier over [`pathix_core::PathDb`] with an explicit
//! robustness contract. The paper's compile-once/execute-many design makes
//! individual queries cheap; this crate makes *many concurrent* queries
//! safe, by putting four mechanisms between clients and the database:
//!
//! 1. **Admission control + backpressure.** Requests enter a bounded
//!    two-class queue (point lookups + writes vs unbound scans). Once a
//!    class queue or the global in-flight bound fills, submissions are shed
//!    with [`ServeError::Overloaded`] and a retry hint — queue depth stays
//!    bounded instead of latency growing without limit. When both classes
//!    have waiters, workers alternate between them, so a flood of expensive
//!    scans cannot starve cheap lookups.
//!
//! 2. **Deadlines + cooperative cancellation.** Each request carries a
//!    [`pathix_core::CancelToken`]; the budget covers queueing and
//!    execution. The token is threaded through the cursor's operator tree
//!    (every operator is wrapped in a cancellation guard), so a slow query
//!    returns [`ServeError::DeadlineExceeded`] at the next batch boundary
//!    instead of hogging a worker.
//!
//! 3. **Degraded modes.** When an apply latches a failure
//!    (`QueryError::WriterPoisoned`, a backend error, or the sticky
//!    `flush_failed` flag), the tier transitions to **read-only** serving:
//!    reads keep working off the last published snapshot, writes are
//!    rejected with [`ServeError::ReadOnly`] and a retry hint. The tier
//!    never turns a dead write path into total unavailability.
//!
//! 4. **Kill-anywhere restart.** [`Server::reopen`] recovers the database
//!    from its durable state (checkpoint + WAL replay via
//!    [`pathix_core::PathDb::open`]) and resumes serving. The chaos harness
//!    in `tests/serve_chaos.rs` arms a fault at every durable operation
//!    under a mixed Zipfian read/write workload and diffs every acknowledged
//!    answer against a never-crashed twin.
//!
//! [`retry_with_backoff`] rounds the contract out on the client side:
//! transient shedding retries with bounded exponential backoff, dead-machine
//! faults surface immediately.

pub mod error;
pub mod retry;
pub mod server;

pub use error::ServeError;
pub use retry::{retry_with_backoff, RetryPolicy};
pub use server::{
    Health, Mode, QueryReply, QueryTicket, ServeConfig, ServeCounters, Server, Ticket, WriteReply,
    WriteTicket,
};
