//! The worker pool: admission, fairness, deadlines, degraded modes, restart.

use crate::error::ServeError;
use pathix_core::{
    CancelToken, GraphUpdate, PathDb, PathDbConfig, QueryError, QueryOptions, QueryResult,
    UpdateStats,
};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Answer limit under which an unbound query still counts as a point lookup
/// for fairness classification (it terminates after a handful of pairs).
const POINT_LIMIT: usize = 16;

/// Serving-tier limits and defaults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeConfig {
    /// Worker threads executing requests (normalized to at least 1).
    pub workers: usize,
    /// Per-class submission queue bound; admission sheds beyond it.
    pub queue_capacity: usize,
    /// Bound on queued + executing requests across both classes.
    pub max_in_flight: usize,
    /// Deadline applied to requests submitted without an explicit budget
    /// (`None` = no implicit deadline).
    pub default_deadline: Option<Duration>,
    /// Backoff hint carried by [`ServeError::Overloaded`].
    pub overload_retry_after: Duration,
    /// Backoff hint carried by [`ServeError::ReadOnly`].
    pub read_only_retry_after: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            queue_capacity: 64,
            max_in_flight: 256,
            default_deadline: None,
            overload_retry_after: Duration::from_millis(10),
            read_only_retry_after: Duration::from_millis(100),
        }
    }
}

/// The tier's serving state, reported by [`Server::health`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Reads and writes flow.
    Normal,
    /// Reads serve off the last published snapshot; writes are rejected
    /// with [`ServeError::ReadOnly`]. Entered when an apply latches a
    /// backend failure / writer poisoning, or when the sticky
    /// `flush_failed` flag is observed. Left only via [`Server::reopen`].
    ReadOnly,
    /// The server is draining; all requests are rejected.
    ShuttingDown,
}

const MODE_NORMAL: u8 = 0;
const MODE_READ_ONLY: u8 = 1;
const MODE_SHUTTING_DOWN: u8 = 2;

fn mode_from(raw: u8) -> Mode {
    match raw {
        MODE_READ_ONLY => Mode::ReadOnly,
        MODE_SHUTTING_DOWN => Mode::ShuttingDown,
        _ => Mode::Normal,
    }
}

/// Monotonic counters accumulated since the server started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeCounters {
    /// Requests accepted into the queue.
    pub submitted: u64,
    /// Queries that completed with an answer.
    pub queries_ok: u64,
    /// Writes that were applied and acknowledged.
    pub writes_ok: u64,
    /// Requests shed by admission control ([`ServeError::Overloaded`]).
    pub shed_overload: u64,
    /// Writes rejected because the tier was read-only.
    pub rejected_read_only: u64,
    /// Requests that ran out of deadline (queued or mid-stream).
    pub deadline_exceeded: u64,
    /// Requests cancelled by their submitter.
    pub cancelled: u64,
    /// Queries that failed with a database error.
    pub query_errors: u64,
    /// Writes that failed with a database error.
    pub write_errors: u64,
    /// High-water mark of queued + executing requests.
    pub max_in_flight: u64,
}

#[derive(Default)]
struct CounterCells {
    submitted: AtomicU64,
    queries_ok: AtomicU64,
    writes_ok: AtomicU64,
    shed_overload: AtomicU64,
    rejected_read_only: AtomicU64,
    deadline_exceeded: AtomicU64,
    cancelled: AtomicU64,
    query_errors: AtomicU64,
    write_errors: AtomicU64,
    max_in_flight: AtomicU64,
}

impl CounterCells {
    fn snapshot(&self) -> ServeCounters {
        ServeCounters {
            submitted: self.submitted.load(Ordering::Relaxed),
            queries_ok: self.queries_ok.load(Ordering::Relaxed),
            writes_ok: self.writes_ok.load(Ordering::Relaxed),
            shed_overload: self.shed_overload.load(Ordering::Relaxed),
            rejected_read_only: self.rejected_read_only.load(Ordering::Relaxed),
            deadline_exceeded: self.deadline_exceeded.load(Ordering::Relaxed),
            cancelled: self.cancelled.load(Ordering::Relaxed),
            query_errors: self.query_errors.load(Ordering::Relaxed),
            write_errors: self.write_errors.load(Ordering::Relaxed),
            max_in_flight: self.max_in_flight.load(Ordering::Relaxed),
        }
    }
}

/// One health probe: mode, load, epoch and the sticky durability flag.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Health {
    /// The serving mode at probe time.
    pub mode: Mode,
    /// Requests waiting in the submission queues.
    pub queue_depth: usize,
    /// Requests currently executing on workers.
    pub executing: usize,
    /// The published snapshot's epoch.
    pub epoch: u64,
    /// The storage layer's sticky flush-failure flag (see
    /// `StorageStats::flush_failed`); `true` implies read-only mode.
    pub flush_failed: bool,
    /// Monotonic counters since start.
    pub counters: ServeCounters,
}

/// A completed query: the answer plus serving-side timing.
#[derive(Debug)]
pub struct QueryReply {
    /// The materialized answer.
    pub result: QueryResult,
    /// Time the request spent queued before a worker picked it up.
    pub queued_for: Duration,
    /// When the worker finished (for open-loop latency measurement against
    /// the scheduled arrival time).
    pub finished_at: Instant,
}

/// An acknowledged write: the apply statistics plus serving-side timing.
#[derive(Debug)]
pub struct WriteReply {
    /// The database's apply statistics.
    pub stats: UpdateStats,
    /// Time the request spent queued before a worker picked it up.
    pub queued_for: Duration,
    /// When the worker finished.
    pub finished_at: Instant,
}

/// A handle on one in-flight request: await the reply, or cancel it.
#[derive(Debug)]
pub struct Ticket<T> {
    receiver: Receiver<Result<T, ServeError>>,
    token: CancelToken,
}

impl<T> Ticket<T> {
    /// Requests cooperative cancellation; the worker aborts at the next
    /// batch boundary and replies [`ServeError::Cancelled`].
    pub fn cancel(&self) {
        self.token.cancel();
    }

    /// Blocks until the reply arrives.
    pub fn wait(self) -> Result<T, ServeError> {
        self.receiver.recv().unwrap_or(Err(ServeError::WorkerLost))
    }

    /// Blocks up to `timeout`; `None` means the reply has not arrived yet
    /// (the request keeps running and the ticket stays valid).
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Result<T, ServeError>> {
        match self.receiver.recv_timeout(timeout) {
            Ok(reply) => Some(reply),
            Err(RecvTimeoutError::Timeout) => None,
            Err(RecvTimeoutError::Disconnected) => Some(Err(ServeError::WorkerLost)),
        }
    }
}

/// Ticket for a submitted query.
pub type QueryTicket = Ticket<QueryReply>;
/// Ticket for a submitted write.
pub type WriteTicket = Ticket<WriteReply>;

/// Fairness class of a request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Class {
    /// Point lookups (bound source/target or tiny limit) and write batches.
    Point,
    /// Unbound scans that may stream large answers.
    Scan,
}

fn classify(options: &QueryOptions) -> Class {
    let tiny_limit = options.limit_value().is_some_and(|l| l <= POINT_LIMIT);
    if options.bound_source().is_some() || options.bound_target().is_some() || tiny_limit {
        Class::Point
    } else {
        Class::Scan
    }
}

enum Work {
    Query {
        text: String,
        options: QueryOptions,
        reply: SyncSender<Result<QueryReply, ServeError>>,
    },
    Write {
        updates: Vec<GraphUpdate>,
        reply: SyncSender<Result<WriteReply, ServeError>>,
    },
}

struct Job {
    work: Work,
    token: CancelToken,
    submitted: Instant,
}

/// Everything behind the queue mutex.
struct QueueState {
    point: VecDeque<Job>,
    scan: VecDeque<Job>,
    /// Alternation bit: when both classes have waiters, which goes next.
    prefer_point: bool,
    executing: usize,
    /// Cancellation handles of currently executing requests, so shutdown can
    /// interrupt long streams instead of waiting them out.
    executing_tokens: HashMap<u64, CancelToken>,
    next_execution_id: u64,
}

impl QueueState {
    fn depth(&self) -> usize {
        self.point.len() + self.scan.len()
    }

    /// Pops the next job, alternating between classes whenever both have
    /// waiters so a flood of expensive scans cannot starve point lookups
    /// (and vice versa).
    fn pop_fair(&mut self) -> Option<Job> {
        let from_point = match (self.point.is_empty(), self.scan.is_empty()) {
            (true, true) => return None,
            (false, true) => true,
            (true, false) => false,
            (false, false) => self.prefer_point,
        };
        self.prefer_point = !from_point;
        if from_point {
            self.point.pop_front()
        } else {
            self.scan.pop_front()
        }
    }
}

struct Shared {
    /// Swappable so a future in-place reopen can install a recovered
    /// database; workers clone the `Arc` per request.
    db: RwLock<Arc<PathDb>>,
    config: ServeConfig,
    queue: Mutex<QueueState>,
    work_ready: Condvar,
    mode: AtomicU8,
    counters: CounterCells,
}

impl Shared {
    fn lock_queue(&self) -> MutexGuard<'_, QueueState> {
        self.queue.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn db_handle(&self) -> Arc<PathDb> {
        self.db.read().unwrap_or_else(|p| p.into_inner()).clone()
    }

    fn mode(&self) -> Mode {
        mode_from(self.mode.load(Ordering::Acquire))
    }

    /// Normal → ReadOnly; never downgrades a shutdown.
    fn enter_read_only(&self) {
        let _ = self.mode.compare_exchange(
            MODE_NORMAL,
            MODE_READ_ONLY,
            Ordering::AcqRel,
            Ordering::Acquire,
        );
    }
}

/// A worker-pool serving tier over one [`PathDb`].
///
/// Requests are submitted as queries or write batches and return a
/// [`Ticket`]; a fixed pool of worker threads drains a bounded two-class
/// queue (point lookups + writes vs unbound scans, alternating when both
/// wait). See the crate docs for the full robustness contract.
pub struct Server {
    shared: Arc<Shared>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Starts a worker pool over an already-open database.
    pub fn new(db: Arc<PathDb>, config: ServeConfig) -> Server {
        let workers = config.workers.max(1);
        let shared = Arc::new(Shared {
            db: RwLock::new(db),
            config: ServeConfig {
                workers,
                queue_capacity: config.queue_capacity.max(1),
                max_in_flight: config.max_in_flight.max(1),
                ..config
            },
            queue: Mutex::new(QueueState {
                point: VecDeque::new(),
                scan: VecDeque::new(),
                prefer_point: true,
                executing: 0,
                executing_tokens: HashMap::new(),
                next_execution_id: 0,
            }),
            work_ready: Condvar::new(),
            mode: AtomicU8::new(MODE_NORMAL),
            counters: CounterCells::default(),
        });
        let handles = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("pathix-serve-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .unwrap_or_else(|e| panic!("spawning serve worker {i}: {e}"))
            })
            .collect();
        Server {
            shared,
            workers: handles,
        }
    }

    /// The kill-anywhere restart path: recovers the database from its
    /// durable state (checkpoint + WAL replay via [`PathDb::open`]) and
    /// resumes serving with a fresh worker pool in [`Mode::Normal`].
    ///
    /// The crashed server must be dropped (or [`Server::shutdown`]) first;
    /// recovery reads the same on-disk paths the dead instance wrote.
    pub fn reopen(db_config: PathDbConfig, config: ServeConfig) -> Result<Server, ServeError> {
        let db = PathDb::open(db_config).map_err(ServeError::Query)?;
        Ok(Server::new(Arc::new(db), config))
    }

    /// The served database (shares the plan cache with all requests).
    pub fn db(&self) -> Arc<PathDb> {
        self.shared.db_handle()
    }

    /// The current serving mode.
    pub fn mode(&self) -> Mode {
        self.shared.mode()
    }

    /// Submits a query with the config's default deadline.
    pub fn submit_query(
        &self,
        text: &str,
        options: QueryOptions,
    ) -> Result<QueryTicket, ServeError> {
        self.submit_query_with_deadline(text, options, self.shared.config.default_deadline)
    }

    /// Submits a query with an explicit deadline budget (`None` = no
    /// deadline). The budget covers queueing *and* execution: a request that
    /// expires while queued is answered [`ServeError::DeadlineExceeded`]
    /// without running.
    pub fn submit_query_with_deadline(
        &self,
        text: &str,
        options: QueryOptions,
        budget: Option<Duration>,
    ) -> Result<QueryTicket, ServeError> {
        let token = match budget {
            Some(budget) => CancelToken::with_budget(budget),
            None => CancelToken::new(),
        };
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let class = classify(&options);
        self.admit(
            Job {
                work: Work::Query {
                    text: text.to_string(),
                    options,
                    reply: tx,
                },
                token: token.clone(),
                submitted: Instant::now(),
            },
            class,
            false,
        )?;
        Ok(Ticket {
            receiver: rx,
            token,
        })
    }

    /// Submits a write batch. Writes ride the point-lookup queue (they are
    /// small and latency-sensitive) and are rejected up front in read-only
    /// mode.
    pub fn submit_write(&self, updates: Vec<GraphUpdate>) -> Result<WriteTicket, ServeError> {
        let token = CancelToken::new();
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        self.admit(
            Job {
                work: Work::Write { updates, reply: tx },
                token: token.clone(),
                submitted: Instant::now(),
            },
            Class::Point,
            true,
        )?;
        Ok(Ticket {
            receiver: rx,
            token,
        })
    }

    /// Submit + wait convenience for queries.
    pub fn query(&self, text: &str, options: QueryOptions) -> Result<QueryReply, ServeError> {
        self.submit_query(text, options)?.wait()
    }

    /// Submit + wait convenience for writes.
    pub fn write(&self, updates: Vec<GraphUpdate>) -> Result<WriteReply, ServeError> {
        self.submit_write(updates)?.wait()
    }

    fn admit(&self, job: Job, class: Class, is_write: bool) -> Result<(), ServeError> {
        let shared = &self.shared;
        match shared.mode() {
            Mode::ShuttingDown => return Err(ServeError::ShuttingDown),
            Mode::ReadOnly if is_write => {
                shared
                    .counters
                    .rejected_read_only
                    .fetch_add(1, Ordering::Relaxed);
                return Err(ServeError::ReadOnly {
                    retry_after: shared.config.read_only_retry_after,
                });
            }
            _ => {}
        }
        let mut queue = shared.lock_queue();
        let in_flight = queue.depth() + queue.executing;
        let class_len = match class {
            Class::Point => queue.point.len(),
            Class::Scan => queue.scan.len(),
        };
        if in_flight >= shared.config.max_in_flight || class_len >= shared.config.queue_capacity {
            drop(queue);
            shared
                .counters
                .shed_overload
                .fetch_add(1, Ordering::Relaxed);
            return Err(ServeError::Overloaded {
                queue_depth: in_flight,
                retry_after: shared.config.overload_retry_after,
            });
        }
        match class {
            Class::Point => queue.point.push_back(job),
            Class::Scan => queue.scan.push_back(job),
        }
        let now_in_flight = (queue.depth() + queue.executing) as u64;
        drop(queue);
        shared.counters.submitted.fetch_add(1, Ordering::Relaxed);
        shared
            .counters
            .max_in_flight
            .fetch_max(now_in_flight, Ordering::Relaxed);
        shared.work_ready.notify_one();
        Ok(())
    }

    /// Probes the tier: mode, load, epoch and durability. Observing the
    /// sticky `flush_failed` flag degrades the tier to read-only on the
    /// spot, so the transition does not wait for the next failing write.
    pub fn health(&self) -> Health {
        let shared = &self.shared;
        let db = shared.db_handle();
        let flush_failed = db.stats().storage.flush_failed;
        if flush_failed {
            shared.enter_read_only();
        }
        let (queue_depth, executing) = {
            let queue = shared.lock_queue();
            (queue.depth(), queue.executing)
        };
        Health {
            mode: shared.mode(),
            queue_depth,
            executing,
            epoch: db.epoch(),
            flush_failed,
            counters: shared.counters.snapshot(),
        }
    }

    /// Stops accepting work, cancels everything queued or executing, joins
    /// the workers and (best-effort) closes the database cleanly. A `drop`
    /// does the same minus the close — the "kill" path of the chaos
    /// harness.
    pub fn shutdown(mut self) -> Result<(), ServeError> {
        self.stop();
        let db = self.shared.db_handle();
        db.close().map_err(ServeError::Query)
    }

    fn stop(&mut self) {
        self.shared
            .mode
            .store(MODE_SHUTTING_DOWN, Ordering::Release);
        let abandoned = {
            let mut queue = self.shared.lock_queue();
            for token in queue.executing_tokens.values() {
                token.cancel();
            }
            let mut abandoned: Vec<Job> = queue.point.drain(..).collect();
            abandoned.extend(queue.scan.drain(..));
            abandoned
        };
        self.shared.work_ready.notify_all();
        for job in abandoned {
            job.token.cancel();
            match job.work {
                Work::Query { reply, .. } => {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                }
                Work::Write { reply, .. } => {
                    let _ = reply.send(Err(ServeError::ShuttingDown));
                }
            }
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.stop();
    }
}

impl std::fmt::Debug for Server {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let queue = self.shared.lock_queue();
        f.debug_struct("Server")
            .field("mode", &self.shared.mode())
            .field("workers", &self.shared.config.workers)
            .field("queue_depth", &queue.depth())
            .field("executing", &queue.executing)
            .finish_non_exhaustive()
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let (job, execution_id) = {
            let mut queue = shared.lock_queue();
            loop {
                if shared.mode() == Mode::ShuttingDown {
                    return;
                }
                if let Some(job) = queue.pop_fair() {
                    queue.executing += 1;
                    let id = queue.next_execution_id;
                    queue.next_execution_id += 1;
                    queue.executing_tokens.insert(id, job.token.clone());
                    break (job, id);
                }
                queue = shared
                    .work_ready
                    .wait(queue)
                    .unwrap_or_else(|p| p.into_inner());
            }
        };
        run_job(shared, job);
        let mut queue = shared.lock_queue();
        queue.executing -= 1;
        queue.executing_tokens.remove(&execution_id);
    }
}

fn run_job(shared: &Shared, job: Job) {
    let queued_for = job.submitted.elapsed();
    // A request whose budget drained while it was queued is answered
    // without executing: the worker slot goes to a request that can still
    // make its deadline.
    if job.token.deadline_exceeded() {
        shared
            .counters
            .deadline_exceeded
            .fetch_add(1, Ordering::Relaxed);
        send_error(job.work, ServeError::DeadlineExceeded);
        return;
    }
    if job.token.cancel_requested() {
        shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
        send_error(job.work, ServeError::Cancelled);
        return;
    }
    let db = shared.db_handle();
    match job.work {
        Work::Query {
            text,
            options,
            reply,
        } => {
            let options = options.cancel_token(job.token.clone());
            let outcome = match db.run(&text, options) {
                Ok(result) => {
                    shared.counters.queries_ok.fetch_add(1, Ordering::Relaxed);
                    Ok(QueryReply {
                        result,
                        queued_for,
                        finished_at: Instant::now(),
                    })
                }
                Err(QueryError::DeadlineExceeded) => {
                    shared
                        .counters
                        .deadline_exceeded
                        .fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::DeadlineExceeded)
                }
                Err(QueryError::Cancelled) => {
                    shared.counters.cancelled.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Cancelled)
                }
                Err(e) => {
                    shared.counters.query_errors.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Query(e))
                }
            };
            let _ = reply.send(outcome);
        }
        Work::Write { updates, reply } => {
            // Re-check: the tier may have degraded while this write queued.
            if shared.mode() != Mode::Normal {
                shared
                    .counters
                    .rejected_read_only
                    .fetch_add(1, Ordering::Relaxed);
                let _ = reply.send(Err(ServeError::ReadOnly {
                    retry_after: shared.config.read_only_retry_after,
                }));
                return;
            }
            let outcome = match db.apply(&updates) {
                Ok(stats) => {
                    shared.counters.writes_ok.fetch_add(1, Ordering::Relaxed);
                    Ok(WriteReply {
                        stats,
                        queued_for,
                        finished_at: Instant::now(),
                    })
                }
                Err(e) => {
                    // A poisoned writer or a latched backend failure is a
                    // dead write path: degrade to read-only serving instead
                    // of failing every future request. Validation errors
                    // (`InvalidUpdate`) are the caller's problem and leave
                    // the tier healthy.
                    if matches!(e, QueryError::WriterPoisoned | QueryError::Backend(_)) {
                        shared.enter_read_only();
                    }
                    shared.counters.write_errors.fetch_add(1, Ordering::Relaxed);
                    Err(ServeError::Query(e))
                }
            };
            let _ = reply.send(outcome);
        }
    }
}

fn send_error(work: Work, error: ServeError) {
    match work {
        Work::Query { reply, .. } => {
            let _ = reply.send(Err(error));
        }
        Work::Write { reply, .. } => {
            let _ = reply.send(Err(error));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_core::PathDbConfig;
    use pathix_datagen::paper_example_graph;

    fn example_server(config: ServeConfig) -> Server {
        let db = PathDb::build(paper_example_graph(), PathDbConfig::with_k(2));
        Server::new(Arc::new(db), config)
    }

    #[test]
    fn classification_separates_point_lookups_from_scans() {
        use pathix_core::NodeId;
        assert_eq!(classify(&QueryOptions::new()), Class::Scan);
        assert_eq!(classify(&QueryOptions::new().limit(1000)), Class::Scan);
        assert_eq!(classify(&QueryOptions::new().limit(1)), Class::Point);
        assert_eq!(
            classify(&QueryOptions::new().source(NodeId(0))),
            Class::Point
        );
        assert_eq!(
            classify(&QueryOptions::new().target(NodeId(0))),
            Class::Point
        );
    }

    #[test]
    fn pop_fair_alternates_when_both_classes_wait() {
        let mk = |tag: usize| Job {
            work: Work::Query {
                text: format!("q{tag}"),
                options: QueryOptions::new(),
                reply: std::sync::mpsc::sync_channel(1).0,
            },
            token: CancelToken::new(),
            submitted: Instant::now(),
        };
        let mut q = QueueState {
            point: VecDeque::from([mk(0), mk(1)]),
            scan: VecDeque::from([mk(10), mk(11)]),
            prefer_point: true,
            executing: 0,
            executing_tokens: HashMap::new(),
            next_execution_id: 0,
        };
        let texts: Vec<String> = std::iter::from_fn(|| q.pop_fair())
            .map(|j| match j.work {
                Work::Query { text, .. } => text,
                Work::Write { .. } => unreachable!(),
            })
            .collect();
        assert_eq!(texts, ["q0", "q10", "q1", "q11"]);
    }

    #[test]
    fn queries_and_writes_round_trip() {
        let server = example_server(ServeConfig::default());
        let reply = server.query("knows", QueryOptions::new()).unwrap();
        assert!(!reply.result.pairs().is_empty());
        let write = server
            .write(vec![GraphUpdate::insert_named("zan", "mentors", "sue")])
            .unwrap();
        assert_eq!(write.stats.inserted, 1);
        let mentors = server.query("mentors", QueryOptions::new()).unwrap();
        assert_eq!(mentors.result.len(), 1);
        let health = server.health();
        assert_eq!(health.mode, Mode::Normal);
        assert_eq!(health.counters.queries_ok, 2);
        assert_eq!(health.counters.writes_ok, 1);
        assert!(!health.flush_failed);
        server.shutdown().unwrap();
    }

    #[test]
    fn expired_deadline_is_rejected_without_running() {
        let server = example_server(ServeConfig::default());
        let err = server
            .submit_query_with_deadline("knows", QueryOptions::new(), Some(Duration::ZERO))
            .unwrap()
            .wait()
            .unwrap_err();
        assert_eq!(err, ServeError::DeadlineExceeded);
        assert_eq!(server.health().counters.deadline_exceeded, 1);
    }

    #[test]
    fn shutdown_rejects_new_work() {
        let mut server = example_server(ServeConfig::default());
        server.stop();
        assert_eq!(
            server
                .submit_query("knows", QueryOptions::new())
                .unwrap_err(),
            ServeError::ShuttingDown
        );
        assert!(matches!(
            server.submit_write(vec![]).unwrap_err(),
            ServeError::ShuttingDown
        ));
    }

    #[test]
    fn invalid_update_errors_do_not_degrade_the_tier() {
        let server = example_server(ServeConfig::default());
        let db = server.db();
        let bogus = GraphUpdate::InsertEdge {
            src: pathix_core::NodeId(u32::MAX),
            label: pathix_core::LabelId(0),
            dst: pathix_core::NodeId(0),
        };
        let err = server.write(vec![bogus]).unwrap_err();
        assert!(matches!(
            err,
            ServeError::Query(QueryError::InvalidUpdate(_))
        ));
        assert_eq!(server.mode(), Mode::Normal);
        drop(db);
        server.shutdown().unwrap();
    }
}
