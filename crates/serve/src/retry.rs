//! Bounded retry-with-backoff for transient serving failures.
//!
//! Backpressure shedding ([`ServeError::Overloaded`]) is transient by
//! design: the rejected request never ran, and the queue drains on its own —
//! resubmitting after a short backoff is the intended client behavior.
//! Everything else is not: a poisoned writer or a latched backend failure
//! (including every injected fault — the fault registry models a *dead
//! machine*, where all later durable operations fail too) stays down until
//! the database is reopened from durable state, so retrying it only burns
//! cycles and masks the fault. [`retry_with_backoff`] encodes exactly that
//! split via [`ServeError::is_transient`].

use crate::error::ServeError;
use crate::server::{Server, WriteReply};
use pathix_core::GraphUpdate;
use std::time::Duration;

/// Bounds on a retry loop: attempt count and exponential backoff window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Maximum total attempts, first try included (normalized to at least
    /// 1).
    pub attempts: u32,
    /// Sleep before the first retry; doubles per retry.
    pub initial_backoff: Duration,
    /// Cap on the per-retry sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            attempts: 4,
            initial_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(50),
        }
    }
}

/// Runs `operation` up to `policy.attempts` times, sleeping with bounded
/// exponential backoff between attempts, retrying **only** transient errors
/// (see [`ServeError::is_transient`]). Non-transient errors — dead-machine
/// faults, poisoned writers, deadline/cancellation, validation errors —
/// return immediately after a single attempt.
pub fn retry_with_backoff<T>(
    policy: &RetryPolicy,
    mut operation: impl FnMut() -> Result<T, ServeError>,
) -> Result<T, ServeError> {
    let attempts = policy.attempts.max(1);
    let mut backoff = policy.initial_backoff.min(policy.max_backoff);
    let mut attempt = 0;
    loop {
        attempt += 1;
        match operation() {
            Ok(value) => return Ok(value),
            Err(error) if attempt < attempts && error.is_transient() => {
                std::thread::sleep(backoff);
                backoff = (backoff * 2).min(policy.max_backoff);
            }
            Err(error) => return Err(error),
        }
    }
}

impl Server {
    /// [`Server::write`] wrapped in [`retry_with_backoff`]: overload
    /// shedding is absorbed up to the policy's bounds, everything else
    /// (read-only mode, dead-machine faults, validation) surfaces
    /// immediately.
    pub fn write_with_retry(
        &self,
        updates: &[GraphUpdate],
        policy: &RetryPolicy,
    ) -> Result<WriteReply, ServeError> {
        retry_with_backoff(policy, || self.write(updates.to_vec()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_core::QueryError;

    fn overloaded() -> ServeError {
        ServeError::Overloaded {
            queue_depth: 9,
            retry_after: Duration::from_micros(10),
        }
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let policy = RetryPolicy {
            attempts: 5,
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        };
        let mut calls = 0;
        let result = retry_with_backoff(&policy, || {
            calls += 1;
            if calls < 3 {
                Err(overloaded())
            } else {
                Ok(42)
            }
        });
        assert_eq!(result, Ok(42));
        assert_eq!(calls, 3);
    }

    #[test]
    fn transient_errors_respect_the_attempt_bound() {
        let policy = RetryPolicy {
            attempts: 3,
            initial_backoff: Duration::from_micros(10),
            max_backoff: Duration::from_micros(100),
        };
        let mut calls = 0;
        let result: Result<(), _> = retry_with_backoff(&policy, || {
            calls += 1;
            Err(overloaded())
        });
        assert!(matches!(result, Err(ServeError::Overloaded { .. })));
        assert_eq!(calls, 3);
    }

    #[test]
    fn dead_machine_faults_do_not_retry() {
        // The writer latched an (injected or real) backend failure: one
        // attempt, immediate surfacing — retrying a dead machine is wasted
        // work that hides the fault from the operator.
        let policy = RetryPolicy::default();
        let mut calls = 0;
        let result: Result<(), _> = retry_with_backoff(&policy, || {
            calls += 1;
            Err(ServeError::Query(QueryError::Backend(
                pathix_core::BackendError::new("paged", "injected fault at `wal-append`"),
            )))
        });
        assert!(matches!(result, Err(ServeError::Query(_))));
        assert_eq!(calls, 1);

        let mut calls = 0;
        let result: Result<(), _> = retry_with_backoff(&policy, || {
            calls += 1;
            Err(ServeError::Query(QueryError::WriterPoisoned))
        });
        assert_eq!(result, Err(ServeError::Query(QueryError::WriterPoisoned)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn zero_attempts_normalizes_to_one() {
        let policy = RetryPolicy {
            attempts: 0,
            ..RetryPolicy::default()
        };
        let mut calls = 0;
        let result: Result<(), _> = retry_with_backoff(&policy, || {
            calls += 1;
            Err(overloaded())
        });
        assert!(result.is_err());
        assert_eq!(calls, 1);
    }
}
