//! The serving tier's error contract.

use pathix_core::QueryError;
use std::fmt;
use std::time::Duration;

/// Everything a serving-tier request can come back with besides an answer.
///
/// The variants encode the tier's robustness contract: [`Overloaded`] and
/// [`ReadOnly`] are *shedding* responses carrying a retry hint — the request
/// was never executed and retrying later is safe. [`DeadlineExceeded`] and
/// [`Cancelled`] interrupt an execution cooperatively; the snapshot the query
/// was streaming from is untouched. [`Query`] wraps the database's own
/// errors.
///
/// [`Overloaded`]: ServeError::Overloaded
/// [`ReadOnly`]: ServeError::ReadOnly
/// [`DeadlineExceeded`]: ServeError::DeadlineExceeded
/// [`Cancelled`]: ServeError::Cancelled
/// [`Query`]: ServeError::Query
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// Admission control rejected the request: the submission queue or the
    /// in-flight limit is full. The request was not queued; retry after the
    /// suggested backoff.
    Overloaded {
        /// Queued + executing requests at the moment of rejection.
        queue_depth: usize,
        /// Suggested client backoff before resubmitting.
        retry_after: Duration,
    },
    /// The request's deadline passed before its answer was complete (either
    /// while queued or mid-stream).
    DeadlineExceeded,
    /// The request's cancellation token was tripped by its submitter.
    Cancelled,
    /// The tier is serving reads off the last published snapshot but the
    /// write path is down (writer poisoned or sticky flush failure). Writes
    /// are rejected until the database is reopened from durable state.
    ReadOnly {
        /// Suggested client backoff before resubmitting the write.
        retry_after: Duration,
    },
    /// The server is shutting down; the request was not (fully) processed.
    ShuttingDown,
    /// The worker processing the request disappeared without replying. This
    /// indicates a bug (worker panic); the request may or may not have taken
    /// effect.
    WorkerLost,
    /// The database reported an error executing the request.
    Query(QueryError),
}

impl ServeError {
    /// `true` for shedding responses that were never executed and are safe
    /// (and useful) to retry after a short backoff. Dead-machine failures —
    /// injected-fault or real I/O errors latched by the writer — are *not*
    /// transient: the writer stays down until the database is reopened, so
    /// retrying only burns cycles and masks the fault.
    pub fn is_transient(&self) -> bool {
        matches!(self, ServeError::Overloaded { .. })
    }
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Overloaded {
                queue_depth,
                retry_after,
            } => write!(
                f,
                "overloaded: {queue_depth} request(s) queued or executing; \
                 retry after {retry_after:?}"
            ),
            ServeError::DeadlineExceeded => {
                write!(f, "deadline passed before the answer was complete")
            }
            ServeError::Cancelled => write!(f, "request cancelled by its submitter"),
            ServeError::ReadOnly { retry_after } => write!(
                f,
                "serving read-only off the last snapshot; writes rejected — \
                 retry after {retry_after:?} or reopen the database"
            ),
            ServeError::ShuttingDown => write!(f, "server is shutting down"),
            ServeError::WorkerLost => write!(f, "worker disappeared without replying"),
            ServeError::Query(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Query(e) => Some(e),
            _ => None,
        }
    }
}

impl From<QueryError> for ServeError {
    fn from(e: QueryError) -> Self {
        match e {
            QueryError::Cancelled => ServeError::Cancelled,
            QueryError::DeadlineExceeded => ServeError::DeadlineExceeded,
            other => ServeError::Query(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cancellation_variants_lift_out_of_query_errors() {
        assert_eq!(
            ServeError::from(QueryError::Cancelled),
            ServeError::Cancelled
        );
        assert_eq!(
            ServeError::from(QueryError::DeadlineExceeded),
            ServeError::DeadlineExceeded
        );
        assert_eq!(
            ServeError::from(QueryError::WriterPoisoned),
            ServeError::Query(QueryError::WriterPoisoned)
        );
    }

    #[test]
    fn only_shedding_is_transient() {
        assert!(ServeError::Overloaded {
            queue_depth: 3,
            retry_after: Duration::from_millis(1),
        }
        .is_transient());
        for e in [
            ServeError::DeadlineExceeded,
            ServeError::Cancelled,
            ServeError::ReadOnly {
                retry_after: Duration::from_millis(1),
            },
            ServeError::ShuttingDown,
            ServeError::WorkerLost,
            ServeError::Query(QueryError::WriterPoisoned),
        ] {
            assert!(!e.is_transient(), "{e}");
        }
    }

    #[test]
    fn display_is_informative() {
        let e = ServeError::Overloaded {
            queue_depth: 7,
            retry_after: Duration::from_millis(10),
        };
        assert!(e.to_string().contains('7'));
        assert!(ServeError::ReadOnly {
            retry_after: Duration::from_millis(10)
        }
        .to_string()
        .contains("read-only"));
        let q = ServeError::Query(QueryError::WriterPoisoned);
        assert!(std::error::Error::source(&q).is_some());
        assert!(std::error::Error::source(&ServeError::WorkerLost).is_none());
    }
}
