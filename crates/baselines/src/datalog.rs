//! A small bottom-up Datalog engine with semi-naive evaluation.
//!
//! This is the substrate for the paper's approach (2): "the Kleene star
//! operator is translated into recursive Datalog programs or recursive SQL
//! views". The engine supports positive Datalog (no negation — RPQs need
//! none), predicates of arbitrary arity, constants, and recursive rules, and
//! evaluates programs to their least fixpoint using the standard semi-naive
//! delta iteration.

use std::collections::{HashMap, HashSet};

/// A term in an atom: either a variable (identified by a small integer) or a
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule variable.
    Var(u32),
    /// A constant value (node ids in the RPQ translation).
    Const(u32),
}

/// An atom `predicate(t₁, …, tₙ)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Atom {
    /// Predicate name.
    pub predicate: String,
    /// Argument terms.
    pub terms: Vec<Term>,
}

impl Atom {
    /// Convenience constructor.
    pub fn new(predicate: impl Into<String>, terms: Vec<Term>) -> Self {
        Atom {
            predicate: predicate.into(),
            terms,
        }
    }
}

/// A Horn rule `head ← body₁, …, bodyₙ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rule {
    /// The derived atom.
    pub head: Atom,
    /// The body atoms, all positive.
    pub body: Vec<Atom>,
}

/// A Datalog program: extensional facts plus rules.
#[derive(Debug, Clone, Default)]
pub struct Program {
    /// Base facts per predicate.
    pub facts: HashMap<String, Vec<Vec<u32>>>,
    /// Derivation rules.
    pub rules: Vec<Rule>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fact tuple to a predicate.
    pub fn add_fact(&mut self, predicate: impl Into<String>, tuple: Vec<u32>) {
        self.facts.entry(predicate.into()).or_default().push(tuple);
    }

    /// Adds a rule.
    pub fn add_rule(&mut self, rule: Rule) {
        self.rules.push(rule);
    }
}

/// Result of running a program: the least fixpoint, one tuple set per
/// predicate.
#[derive(Debug, Clone, Default)]
pub struct DatalogEngine {
    relations: HashMap<String, HashSet<Vec<u32>>>,
    /// Number of fixpoint iterations performed (for diagnostics/benchmarks).
    pub iterations: usize,
    /// Number of tuples derived (including base facts).
    pub derived_tuples: usize,
}

impl DatalogEngine {
    /// Evaluates `program` to its least fixpoint with semi-naive iteration.
    pub fn evaluate(program: &Program) -> DatalogEngine {
        let mut all: HashMap<String, HashSet<Vec<u32>>> = HashMap::new();
        let mut delta: HashMap<String, HashSet<Vec<u32>>> = HashMap::new();
        for (pred, tuples) in &program.facts {
            let set: HashSet<Vec<u32>> = tuples.iter().cloned().collect();
            delta.insert(pred.clone(), set.clone());
            all.insert(pred.clone(), set);
        }

        let mut iterations = 0;
        loop {
            iterations += 1;
            let mut new_delta: HashMap<String, HashSet<Vec<u32>>> = HashMap::new();
            for rule in &program.rules {
                for delta_position in 0..rule.body.len() {
                    // Semi-naive: at least one body atom must be matched
                    // against the last iteration's delta.
                    let delta_pred = &rule.body[delta_position].predicate;
                    if delta.get(delta_pred).is_none_or(HashSet::is_empty) {
                        continue;
                    }
                    let derived = evaluate_rule(rule, delta_position, &all, &delta);
                    for tuple in derived {
                        let known = all
                            .get(&rule.head.predicate)
                            .is_some_and(|s| s.contains(&tuple));
                        if !known {
                            new_delta
                                .entry(rule.head.predicate.clone())
                                .or_default()
                                .insert(tuple);
                        }
                    }
                }
            }
            if new_delta.values().all(HashSet::is_empty) {
                break;
            }
            for (pred, tuples) in &new_delta {
                all.entry(pred.clone())
                    .or_default()
                    .extend(tuples.iter().cloned());
            }
            delta = new_delta;
        }

        let derived_tuples = all.values().map(HashSet::len).sum();
        DatalogEngine {
            relations: all,
            iterations,
            derived_tuples,
        }
    }

    /// The tuples of a predicate, sorted (empty if the predicate is unknown).
    pub fn relation(&self, predicate: &str) -> Vec<Vec<u32>> {
        let mut tuples: Vec<Vec<u32>> = self
            .relations
            .get(predicate)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default();
        tuples.sort_unstable();
        tuples
    }

    /// Number of tuples in a predicate.
    pub fn relation_size(&self, predicate: &str) -> usize {
        self.relations.get(predicate).map_or(0, HashSet::len)
    }
}

/// A partial assignment of rule variables to constants.
type Binding = HashMap<u32, u32>;

/// Evaluates one rule with the atom at `delta_position` matched against the
/// delta relation and all other atoms against the full relations.
fn evaluate_rule(
    rule: &Rule,
    delta_position: usize,
    all: &HashMap<String, HashSet<Vec<u32>>>,
    delta: &HashMap<String, HashSet<Vec<u32>>>,
) -> Vec<Vec<u32>> {
    let empty: HashSet<Vec<u32>> = HashSet::new();
    let mut bindings: Vec<Binding> = vec![Binding::new()];
    for (i, atom) in rule.body.iter().enumerate() {
        let source = if i == delta_position { delta } else { all };
        let tuples = source.get(&atom.predicate).unwrap_or(&empty);
        bindings = join_bindings(&bindings, atom, tuples);
        if bindings.is_empty() {
            return Vec::new();
        }
    }
    // Project onto the head.
    let mut out = Vec::with_capacity(bindings.len());
    'outer: for binding in &bindings {
        let mut tuple = Vec::with_capacity(rule.head.terms.len());
        for term in &rule.head.terms {
            match term {
                Term::Const(c) => tuple.push(*c),
                Term::Var(v) => match binding.get(v) {
                    Some(&val) => tuple.push(val),
                    // Unbound head variable: skip (unsafe rule); RPQ
                    // translation never produces these.
                    None => continue 'outer,
                },
            }
        }
        out.push(tuple);
    }
    out
}

/// Joins a set of partial bindings with one atom's tuples, hash-indexed on
/// the atom positions that are already bound.
fn join_bindings(bindings: &[Binding], atom: &Atom, tuples: &HashSet<Vec<u32>>) -> Vec<Binding> {
    // Determine which argument positions are constrained by constants or by
    // variables bound in *every* incoming binding (the common case: rules are
    // evaluated left to right so earlier atoms bind the shared variables).
    let mut out = Vec::new();
    // Index tuples by the constrained positions of the first binding; since
    // different bindings may constrain different variables only when rules
    // are unusual, fall back to per-binding filtering which is always
    // correct.
    for binding in bindings {
        let mut key_positions: Vec<(usize, u32)> = Vec::new();
        for (pos, term) in atom.terms.iter().enumerate() {
            match term {
                Term::Const(c) => key_positions.push((pos, *c)),
                Term::Var(v) => {
                    if let Some(&val) = binding.get(v) {
                        key_positions.push((pos, val));
                    }
                }
            }
        }
        'tuples: for tuple in tuples {
            if tuple.len() != atom.terms.len() {
                continue;
            }
            for &(pos, expected) in &key_positions {
                if tuple[pos] != expected {
                    continue 'tuples;
                }
            }
            // Extend the binding with newly bound variables, checking
            // repeated variables within the atom.
            let mut extended = binding.clone();
            let mut ok = true;
            for (pos, term) in atom.terms.iter().enumerate() {
                if let Term::Var(v) = term {
                    match extended.get(v) {
                        Some(&val) if val != tuple[pos] => {
                            ok = false;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            extended.insert(*v, tuple[pos]);
                        }
                    }
                }
            }
            if ok {
                out.push(extended);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn var(v: u32) -> Term {
        Term::Var(v)
    }

    #[test]
    fn facts_are_returned_as_relations() {
        let mut p = Program::new();
        p.add_fact("edge", vec![1, 2]);
        p.add_fact("edge", vec![2, 3]);
        let result = DatalogEngine::evaluate(&p);
        assert_eq!(result.relation("edge"), vec![vec![1, 2], vec![2, 3]]);
        assert_eq!(result.relation_size("missing"), 0);
    }

    #[test]
    fn simple_join_rule() {
        // two_hop(X, Z) ← edge(X, Y), edge(Y, Z).
        let mut p = Program::new();
        p.add_fact("edge", vec![1, 2]);
        p.add_fact("edge", vec![2, 3]);
        p.add_fact("edge", vec![3, 4]);
        p.add_rule(Rule {
            head: Atom::new("two_hop", vec![var(0), var(2)]),
            body: vec![
                Atom::new("edge", vec![var(0), var(1)]),
                Atom::new("edge", vec![var(1), var(2)]),
            ],
        });
        let result = DatalogEngine::evaluate(&p);
        assert_eq!(result.relation("two_hop"), vec![vec![1, 3], vec![2, 4]]);
    }

    #[test]
    fn transitive_closure_reaches_fixpoint() {
        // tc(X, Y) ← edge(X, Y).
        // tc(X, Z) ← tc(X, Y), edge(Y, Z).
        let mut p = Program::new();
        for i in 0..10u32 {
            p.add_fact("edge", vec![i, i + 1]);
        }
        p.add_rule(Rule {
            head: Atom::new("tc", vec![var(0), var(1)]),
            body: vec![Atom::new("edge", vec![var(0), var(1)])],
        });
        p.add_rule(Rule {
            head: Atom::new("tc", vec![var(0), var(2)]),
            body: vec![
                Atom::new("tc", vec![var(0), var(1)]),
                Atom::new("edge", vec![var(1), var(2)]),
            ],
        });
        let result = DatalogEngine::evaluate(&p);
        // A chain of 11 nodes has 11*10/2 = 55 reachable ordered pairs.
        assert_eq!(result.relation_size("tc"), 55);
        assert!(result.iterations >= 10, "fixpoint should take many rounds");
    }

    #[test]
    fn constants_in_rule_bodies_filter() {
        let mut p = Program::new();
        p.add_fact("edge", vec![1, 2]);
        p.add_fact("edge", vec![7, 2]);
        p.add_rule(Rule {
            head: Atom::new("from_seven", vec![var(0)]),
            body: vec![Atom::new("edge", vec![Term::Const(7), var(0)])],
        });
        let result = DatalogEngine::evaluate(&p);
        assert_eq!(result.relation("from_seven"), vec![vec![2]]);
    }

    #[test]
    fn repeated_variables_require_equality() {
        // loop(X) ← edge(X, X).
        let mut p = Program::new();
        p.add_fact("edge", vec![1, 2]);
        p.add_fact("edge", vec![3, 3]);
        p.add_rule(Rule {
            head: Atom::new("self_loop", vec![var(0)]),
            body: vec![Atom::new("edge", vec![var(0), var(0)])],
        });
        let result = DatalogEngine::evaluate(&p);
        assert_eq!(result.relation("self_loop"), vec![vec![3]]);
    }

    #[test]
    fn mutually_recursive_rules_terminate() {
        // even(X) / odd(X) over a successor chain.
        let mut p = Program::new();
        for i in 0..6u32 {
            p.add_fact("succ", vec![i, i + 1]);
        }
        p.add_fact("even", vec![0]);
        p.add_rule(Rule {
            head: Atom::new("odd", vec![var(1)]),
            body: vec![
                Atom::new("even", vec![var(0)]),
                Atom::new("succ", vec![var(0), var(1)]),
            ],
        });
        p.add_rule(Rule {
            head: Atom::new("even", vec![var(1)]),
            body: vec![
                Atom::new("odd", vec![var(0)]),
                Atom::new("succ", vec![var(0), var(1)]),
            ],
        });
        let result = DatalogEngine::evaluate(&p);
        assert_eq!(
            result.relation("even"),
            vec![vec![0], vec![2], vec![4], vec![6]]
        );
        assert_eq!(result.relation("odd"), vec![vec![1], vec![3], vec![5]]);
    }

    #[test]
    fn empty_program_evaluates_to_nothing() {
        let result = DatalogEngine::evaluate(&Program::new());
        assert_eq!(result.derived_tuples, 0);
    }
}
