//! Approach (1): automaton- and search-based evaluation.
//!
//! The RPQ is compiled to a DFA over the signed alphabet; for every node `s`
//! of the graph a breadth-first search explores the product of the graph with
//! the automaton, recording every node reached in an accepting state. This is
//! the classic strategy of e.g. Koschmieder & Leser (SSDBM 2012) and is what
//! the paper's *naive* method degenerates to.

use pathix_graph::{Graph, NodeId};
use pathix_rpq::{BoundExpr, Dfa, Nfa};
use std::collections::VecDeque;

/// Evaluates `expr` on `graph` by product-graph BFS from every node.
///
/// Returns the answer as a sorted, duplicate-free pair list. Unbounded Kleene
/// operators are handled exactly (no `n(G)` truncation is necessary, since
/// the product search saturates).
pub fn evaluate_automaton(graph: &Graph, expr: &BoundExpr) -> Vec<(NodeId, NodeId)> {
    let nfa = Nfa::from_expr(expr);
    let dfa = Dfa::from_nfa(&nfa);
    let mut result: Vec<(NodeId, NodeId)> = Vec::new();
    let state_count = dfa.state_count();
    let node_count = graph.node_count();
    // Reusable visited bitmap indexed by node * state_count + state.
    let mut visited = vec![false; node_count * state_count];

    for source in graph.nodes() {
        // Reset only the slots touched in the previous search.
        let mut touched: Vec<usize> = Vec::new();
        let mut queue: VecDeque<(NodeId, usize)> = VecDeque::new();
        let start = dfa.start();
        let slot = source.index() * state_count + start;
        visited[slot] = true;
        touched.push(slot);
        queue.push_back((source, start));
        if dfa.is_accept(start) {
            result.push((source, source));
        }
        while let Some((node, state)) = queue.pop_front() {
            for (label, next_state) in dfa.transitions_from(state) {
                for next_node in graph.neighbors(node, label) {
                    let slot = next_node.index() * state_count + next_state;
                    if !visited[slot] {
                        visited[slot] = true;
                        touched.push(slot);
                        if dfa.is_accept(next_state) {
                            result.push((source, next_node));
                        }
                        queue.push_back((next_node, next_state));
                    }
                }
            }
        }
        for slot in touched {
            visited[slot] = false;
        }
    }
    result.sort_unstable();
    result.dedup();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::SignedLabel;
    use pathix_rpq::parse;

    fn eval(graph: &Graph, query: &str) -> Vec<(NodeId, NodeId)> {
        let expr = parse(query).unwrap().bind(graph).unwrap();
        evaluate_automaton(graph, &expr)
    }

    /// Direct composition reference for non-recursive queries.
    fn compose_labels(graph: &Graph, labels: &[(&str, bool)]) -> Vec<(NodeId, NodeId)> {
        let path: Vec<SignedLabel> = labels
            .iter()
            .map(|(name, backward)| {
                let id = graph.label_id(name).unwrap();
                if *backward {
                    SignedLabel::backward(id)
                } else {
                    SignedLabel::forward(id)
                }
            })
            .collect();
        let mut pairs: Vec<(NodeId, NodeId)> = graph.signed_pairs(path[0]);
        for &sl in &path[1..] {
            let mut next = Vec::new();
            for &(a, b) in &pairs {
                for c in graph.neighbors(b, sl) {
                    next.push((a, c));
                }
            }
            next.sort_unstable();
            next.dedup();
            pairs = next;
        }
        pairs
    }

    #[test]
    fn single_label_matches_edge_relation() {
        let g = paper_example_graph();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(eval(&g, "knows"), g.edges(knows).collect::<Vec<_>>());
    }

    #[test]
    fn concatenation_matches_composition() {
        let g = paper_example_graph();
        assert_eq!(
            eval(&g, "knows/worksFor"),
            compose_labels(&g, &[("knows", false), ("worksFor", false)])
        );
        assert_eq!(
            eval(&g, "supervisor/worksFor-"),
            compose_labels(&g, &[("supervisor", false), ("worksFor", true)])
        );
    }

    #[test]
    fn paper_worked_example() {
        let g = paper_example_graph();
        let kim = g.node_id("kim").unwrap();
        let sue = g.node_id("sue").unwrap();
        assert_eq!(eval(&g, "supervisor/worksFor-"), vec![(kim, sue)]);
    }

    #[test]
    fn epsilon_returns_identity() {
        let g = paper_example_graph();
        let result = eval(&g, "()");
        assert_eq!(result.len(), g.node_count());
        assert!(result.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn kleene_star_reaches_transitive_closure() {
        let g = paper_example_graph();
        let bounded = eval(&g, "knows{0,9}");
        let star = eval(&g, "knows*");
        // With a bound at least the node count the results must coincide.
        assert_eq!(bounded, star);
        // Star includes the identity pairs.
        assert!(star.iter().filter(|&&(a, b)| a == b).count() >= g.node_count());
    }

    #[test]
    fn optional_and_union() {
        let g = paper_example_graph();
        let knows = g.label_id("knows").unwrap();
        let opt = eval(&g, "knows?");
        assert_eq!(opt.len(), g.node_count() + g.edges(knows).count());
        let union = eval(&g, "knows|worksFor");
        let works = g.label_id("worksFor").unwrap();
        assert_eq!(union.len(), g.edges(knows).count() + g.edges(works).count());
    }
}
