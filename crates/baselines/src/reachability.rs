//! Approach (3): reachability-index-based RPQ evaluation.
//!
//! The paper's introduction lists a third family of evaluation strategies:
//! translate *restricted* uses of Kleene star into reachability queries and
//! answer them with an off-the-shelf reachability index. The paper itself
//! does not evaluate this approach (it cannot express arbitrary RPQs); we
//! implement it as an extension so the restriction is demonstrable rather
//! than asserted.
//!
//! The index is an SCC-condensation reachability index: the label-restricted
//! subgraph is condensed into its strongly connected components (Kosaraju's
//! algorithm), and each component stores the bitset of components it can
//! reach. `reachable(a, b)` is then two array lookups and one bit test.
//!
//! [`evaluate_reachability`] accepts exactly the restricted query shape this
//! approach supports — a composition of single steps and Kleene-starred
//! (unions of) steps — and returns `None` for anything richer (bounded
//! recursion, nested composition under a star, …), which is precisely why the
//! paper's path-index approach is more general.

use pathix_graph::{Graph, NodeId, SignedLabel};
use pathix_rpq::{BoundExpr, Expr};
use std::collections::HashMap;

/// A reachability index over the subgraph induced by a set of signed labels.
#[derive(Debug, Clone)]
pub struct ReachabilityIndex {
    /// Signed labels whose edges the index covers.
    labels: Vec<SignedLabel>,
    /// Component id of every node (dense, 0-based).
    component: Vec<u32>,
    /// Number of components.
    component_count: usize,
    /// Per component: bitset (over component ids) of reachable components,
    /// including the component itself.
    descendants: Vec<Vec<u64>>,
    /// Per component: `true` when it contains a cycle (size > 1 or a
    /// self-loop), i.e. its nodes reach themselves via ≥ 1 edge.
    cyclic: Vec<bool>,
}

impl ReachabilityIndex {
    /// Builds the index for the subgraph of `graph` formed by the edges of
    /// the given signed labels (an empty list yields an edgeless index).
    pub fn build(graph: &Graph, labels: &[SignedLabel]) -> Self {
        let n = graph.node_count();
        let adjacency = |node: NodeId| -> Vec<NodeId> {
            let mut out = Vec::new();
            for &sl in labels {
                out.extend(graph.neighbors(node, sl));
            }
            out
        };

        // Kosaraju pass 1: iterative DFS post-order on the forward graph.
        let mut visited = vec![false; n];
        let mut order: Vec<u32> = Vec::with_capacity(n);
        for start in 0..n as u32 {
            if visited[start as usize] {
                continue;
            }
            // Stack of (node, next child index, children).
            let mut stack: Vec<(u32, usize, Vec<NodeId>)> =
                vec![(start, 0, adjacency(NodeId(start)))];
            visited[start as usize] = true;
            while let Some((node, child_idx, children)) = stack.last_mut() {
                if *child_idx < children.len() {
                    let next = children[*child_idx].0;
                    *child_idx += 1;
                    if !visited[next as usize] {
                        visited[next as usize] = true;
                        stack.push((next, 0, adjacency(NodeId(next))));
                    }
                } else {
                    order.push(*node);
                    stack.pop();
                }
            }
        }

        // Reverse adjacency for pass 2.
        let mut reverse: Vec<Vec<u32>> = vec![Vec::new(); n];
        for &sl in labels {
            for node in 0..n as u32 {
                for succ in graph.neighbors(NodeId(node), sl) {
                    reverse[succ.0 as usize].push(node);
                }
            }
        }

        // Kosaraju pass 2: assign components in reverse post-order.
        let mut component = vec![u32::MAX; n];
        let mut component_count = 0usize;
        for &start in order.iter().rev() {
            if component[start as usize] != u32::MAX {
                continue;
            }
            let id = component_count as u32;
            component_count += 1;
            let mut stack = vec![start];
            component[start as usize] = id;
            while let Some(node) = stack.pop() {
                for &pred in &reverse[node as usize] {
                    if component[pred as usize] == u32::MAX {
                        component[pred as usize] = id;
                        stack.push(pred);
                    }
                }
            }
        }

        // Condensation edges, component sizes and self-loops.
        let words = component_count.div_ceil(64);
        let mut condensed: Vec<Vec<u32>> = vec![Vec::new(); component_count];
        let mut size = vec![0usize; component_count];
        let mut cyclic = vec![false; component_count];
        for node in 0..n as u32 {
            let c = component[node as usize] as usize;
            size[c] += 1;
            for succ in adjacency(NodeId(node)) {
                let d = component[succ.0 as usize] as usize;
                if c == d {
                    cyclic[c] = true;
                } else {
                    condensed[c].push(d as u32);
                }
            }
        }
        for (c, s) in size.iter().enumerate() {
            if *s > 1 {
                cyclic[c] = true;
            }
        }

        // With Kosaraju's discovery order, component ids form a topological
        // order of the condensation (edges go from lower to higher ids is NOT
        // guaranteed in general — it is the reverse: sources are discovered
        // first). Compute descendants by processing ids from high to low and
        // propagating along condensation edges; iterate to a fixpoint to stay
        // independent of ordering assumptions (the condensation is a DAG, so
        // |components| rounds suffice; in practice one or two do).
        let mut descendants: Vec<Vec<u64>> = (0..component_count)
            .map(|c| {
                let mut bits = vec![0u64; words];
                bits[c / 64] |= 1u64 << (c % 64);
                bits
            })
            .collect();
        let mut changed = true;
        while changed {
            changed = false;
            for c in (0..component_count).rev() {
                for &d in &condensed[c] {
                    let d = d as usize;
                    // descendants[c] |= descendants[d]
                    if c == d {
                        continue;
                    }
                    let (head, tail) = if c < d {
                        let (a, b) = descendants.split_at_mut(d);
                        (&mut a[c], &b[0])
                    } else {
                        let (a, b) = descendants.split_at_mut(c);
                        (&mut b[0], &a[d])
                    };
                    for (dst_word, src_word) in head.iter_mut().zip(tail.iter()) {
                        let merged = *dst_word | *src_word;
                        if merged != *dst_word {
                            *dst_word = merged;
                            changed = true;
                        }
                    }
                }
            }
        }

        ReachabilityIndex {
            labels: labels.to_vec(),
            component,
            component_count,
            descendants,
            cyclic,
        }
    }

    /// The signed labels this index covers.
    pub fn labels(&self) -> &[SignedLabel] {
        &self.labels
    }

    /// Number of strongly connected components.
    pub fn component_count(&self) -> usize {
        self.component_count
    }

    /// `true` when there is a path (possibly empty) from `a` to `b` using
    /// only the indexed labels.
    pub fn reachable(&self, a: NodeId, b: NodeId) -> bool {
        if a == b {
            return true;
        }
        self.reachable_nonempty(a, b)
    }

    /// `true` when there is a path of length ≥ 1 from `a` to `b`.
    pub fn reachable_nonempty(&self, a: NodeId, b: NodeId) -> bool {
        let (Some(&ca), Some(&cb)) = (self.component.get(a.index()), self.component.get(b.index()))
        else {
            return false;
        };
        if ca == cb {
            return a != b || self.cyclic[ca as usize];
        }
        let cb = cb as usize;
        self.descendants[ca as usize][cb / 64] & (1u64 << (cb % 64)) != 0
    }

    /// All pairs reachable via ≥ `min` edges (`min` is 0 or 1), in sorted
    /// order. This is the materialization of `(ℓ₁ ∪ … ∪ ℓₘ)*` (min = 0) or
    /// `…⁺` (min = 1).
    pub fn all_pairs(&self, min: u32) -> Vec<(NodeId, NodeId)> {
        let n = self.component.len();
        let mut out = Vec::new();
        for a in 0..n as u32 {
            for b in 0..n as u32 {
                let (a, b) = (NodeId(a), NodeId(b));
                let hit = if min == 0 {
                    self.reachable(a, b)
                } else {
                    self.reachable_nonempty(a, b)
                };
                if hit {
                    out.push((a, b));
                }
            }
        }
        out
    }
}

/// Evaluates a *restricted* RPQ with reachability indexes: a composition of
/// plain steps and Kleene-starred (unions of) steps. Returns `None` when the
/// query falls outside that fragment — the limitation the paper cites as the
/// reason approach (3) cannot evaluate arbitrary RPQs.
pub fn evaluate_reachability(graph: &Graph, expr: &BoundExpr) -> Option<Vec<(NodeId, NodeId)>> {
    let items = restricted_items(expr)?;
    let mut result: Option<Vec<(NodeId, NodeId)>> = None;
    for item in items {
        let pairs = match item {
            Item::Step(sl) => {
                let mut pairs = graph.signed_pairs(sl);
                pairs.sort_unstable();
                pairs.dedup();
                pairs
            }
            Item::Star { labels, min } => ReachabilityIndex::build(graph, &labels).all_pairs(min),
        };
        result = Some(match result {
            None => pairs,
            Some(acc) => compose(&acc, &pairs),
        });
    }
    result
}

enum Item {
    Step(SignedLabel),
    Star { labels: Vec<SignedLabel>, min: u32 },
}

/// Flattens `expr` into the restricted item sequence, or `None` if the query
/// is outside the supported fragment.
fn restricted_items(expr: &BoundExpr) -> Option<Vec<Item>> {
    match expr {
        Expr::Concat(parts) => {
            let mut items = Vec::new();
            for part in parts {
                items.extend(restricted_items(part)?);
            }
            Some(items)
        }
        other => Some(vec![restricted_item(other)?]),
    }
}

fn restricted_item(expr: &BoundExpr) -> Option<Item> {
    match expr {
        Expr::Step { label, .. } => Some(Item::Step(*label)),
        Expr::Repeat { inner, min, max } if max.is_none() && *min <= 1 => Some(Item::Star {
            labels: star_labels(inner)?,
            min: *min,
        }),
        _ => None,
    }
}

/// The starred sub-expression must be a single step or a union of steps.
fn star_labels(expr: &BoundExpr) -> Option<Vec<SignedLabel>> {
    match expr {
        Expr::Step { label, .. } => Some(vec![*label]),
        Expr::Union(parts) => {
            let mut labels = Vec::new();
            for part in parts {
                match part {
                    Expr::Step { label, .. } => labels.push(*label),
                    _ => return None,
                }
            }
            Some(labels)
        }
        _ => None,
    }
}

/// Composes two pair relations (`a ∘ b` on `a.target = b.source`).
fn compose(a: &[(NodeId, NodeId)], b: &[(NodeId, NodeId)]) -> Vec<(NodeId, NodeId)> {
    let mut by_source: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
    for &(s, t) in b {
        by_source.entry(s).or_default().push(t);
    }
    let mut out = Vec::new();
    for &(s, mid) in a {
        if let Some(targets) = by_source.get(&mid) {
            for &t in targets {
                out.push((s, t));
            }
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate_automaton;
    use pathix_datagen::paper_example_graph;
    use pathix_graph::GraphBuilder;
    use pathix_rpq::parse;

    fn bind(graph: &Graph, q: &str) -> BoundExpr {
        parse(q).unwrap().bind(graph).unwrap()
    }

    fn sorted(mut pairs: Vec<(NodeId, NodeId)>) -> Vec<(NodeId, NodeId)> {
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    #[test]
    fn reachability_on_a_chain_and_cycle() {
        let mut b = GraphBuilder::new();
        // chain a -> b -> c, cycle x <-> y, self-loop z.
        b.add_edge_named("a", "knows", "b");
        b.add_edge_named("b", "knows", "c");
        b.add_edge_named("x", "knows", "y");
        b.add_edge_named("y", "knows", "x");
        b.add_edge_named("z", "knows", "z");
        let g = b.build();
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let index = ReachabilityIndex::build(&g, &[knows]);
        let node = |name: &str| g.node_id(name).unwrap();

        assert!(index.reachable(node("a"), node("c")));
        assert!(index.reachable_nonempty(node("a"), node("c")));
        assert!(!index.reachable_nonempty(node("c"), node("a")));
        assert!(index.reachable(node("c"), node("c")), "empty path");
        assert!(
            !index.reachable_nonempty(node("c"), node("c")),
            "c is acyclic"
        );
        assert!(index.reachable_nonempty(node("x"), node("x")), "2-cycle");
        assert!(index.reachable_nonempty(node("z"), node("z")), "self-loop");
        assert!(index.component_count() <= g.node_count());
    }

    #[test]
    fn star_and_plus_match_the_automaton_baseline() {
        let g = paper_example_graph();
        for query in ["knows*", "knows+", "(knows|worksFor)*", "worksFor-*"] {
            let expr = bind(&g, query);
            let via_reach = evaluate_reachability(&g, &expr)
                .unwrap_or_else(|| panic!("{query} should be supported"));
            let via_automaton = sorted(evaluate_automaton(&g, &expr));
            assert_eq!(sorted(via_reach), via_automaton, "query {query}");
        }
    }

    #[test]
    fn compositions_of_steps_and_stars_are_supported() {
        let g = paper_example_graph();
        for query in [
            "supervisor/knows*",
            "knows*/worksFor",
            "worksFor-/knows+/worksFor",
            "supervisor/worksFor-",
        ] {
            let expr = bind(&g, query);
            let via_reach = evaluate_reachability(&g, &expr)
                .unwrap_or_else(|| panic!("{query} should be supported"));
            let via_automaton = sorted(evaluate_automaton(&g, &expr));
            assert_eq!(sorted(via_reach), via_automaton, "query {query}");
        }
    }

    #[test]
    fn arbitrary_rpqs_are_rejected_as_the_paper_says() {
        let g = paper_example_graph();
        for query in [
            "(supervisor|worksFor|worksFor-){4,5}", // bounded recursion
            "(knows/worksFor)*",                    // star over a composition
            "knows{2,3}",                           // bounded recursion
            "(knows|worksFor/supervisor)*",         // union of non-steps
        ] {
            let expr = bind(&g, query);
            assert!(
                evaluate_reachability(&g, &expr).is_none(),
                "query {query} must be outside the restricted fragment"
            );
        }
    }

    #[test]
    fn empty_label_set_is_harmless() {
        let g = paper_example_graph();
        let index = ReachabilityIndex::build(&g, &[]);
        let a = g.nodes().next().unwrap();
        assert!(index.reachable(a, a));
        assert!(!index.reachable_nonempty(a, a));
        assert_eq!(index.labels().len(), 0);
    }
}
