//! # pathix-baselines
//!
//! The two baseline RPQ evaluation approaches the paper compares against
//! (Section 1 and Section 6):
//!
//! * **Approach (1), automaton/search-based** ([`automaton`]): evaluate the
//!   query by searching the product of the data graph with the query
//!   automaton, breadth-first from every source node.
//! * **Approach (2), Datalog-based** ([`datalog`] + [`translate`]): translate
//!   the RPQ into a Datalog program over the edge relations and evaluate it
//!   bottom-up with semi-naive fixpoint iteration — the stand-in for
//!   "recursive Datalog programs or recursive SQL views".
//!
//! * **Approach (3), reachability-index-based** ([`reachability`]): the
//!   *restricted* strategy the paper's introduction describes — Kleene-starred
//!   label sets answered through an SCC-condensation reachability index; it
//!   rejects arbitrary RPQs, which is exactly the limitation the paper cites.
//!
//! Both full baselines return exactly the same answers as the path-index pipeline
//! (they are cross-checked in tests and used as oracles); the benchmark
//! harness uses them to reproduce the paper's speed-up claims.

pub mod automaton;
pub mod datalog;
pub mod reachability;
pub mod translate;

pub use automaton::evaluate_automaton;
pub use datalog::{Atom, DatalogEngine, Program, Rule, Term};
pub use reachability::{evaluate_reachability, ReachabilityIndex};
pub use translate::{evaluate_datalog, rpq_to_datalog};
