//! Translation of RPQs into Datalog programs (approach 2).
//!
//! Every sub-expression of the query becomes a fresh intensional predicate;
//! edge relations become extensional facts `edge_ℓ(x, y)` plus a `node(x)`
//! relation for ε. Bounded recursion `R^{i,j}` is translated into a chain of
//! predicates (one per additional repetition); the unbounded Kleene forms
//! become genuinely recursive rules, which is exactly what "recursive Datalog
//! programs or recursive SQL views" do and what makes this baseline slow
//! compared to the k-path index.

use crate::datalog::{Atom, DatalogEngine, Program, Rule, Term};
use pathix_graph::{Graph, NodeId};
use pathix_rpq::{BoundExpr, Expr};

/// The result of translating an RPQ: the program and the name of the goal
/// predicate holding the answer pairs.
#[derive(Debug, Clone)]
pub struct TranslatedQuery {
    /// The Datalog program (facts + rules).
    pub program: Program,
    /// Name of the binary goal predicate.
    pub goal: String,
}

/// Translates a bound RPQ over `graph` into a Datalog program.
pub fn rpq_to_datalog(graph: &Graph, expr: &BoundExpr) -> TranslatedQuery {
    let mut program = Program::new();
    // Extensional database: one predicate per label plus the node relation.
    for label in graph.labels() {
        let pred = edge_predicate(graph, label);
        for (s, t) in graph.edges(label) {
            program.add_fact(pred.clone(), vec![s.0, t.0]);
        }
    }
    for node in graph.nodes() {
        program.add_fact("node", vec![node.0]);
    }
    let mut counter = 0usize;
    let goal = translate(expr, graph, &mut program, &mut counter);
    TranslatedQuery { program, goal }
}

/// Evaluates an RPQ through the Datalog baseline, returning sorted,
/// duplicate-free pairs.
pub fn evaluate_datalog(graph: &Graph, expr: &BoundExpr) -> Vec<(NodeId, NodeId)> {
    let translated = rpq_to_datalog(graph, expr);
    let engine = DatalogEngine::evaluate(&translated.program);
    engine
        .relation(&translated.goal)
        .into_iter()
        .map(|tuple| (NodeId(tuple[0]), NodeId(tuple[1])))
        .collect()
}

fn edge_predicate(graph: &Graph, label: pathix_graph::LabelId) -> String {
    format!(
        "edge_{}",
        graph
            .label_name(label)
            .unwrap_or("unknown")
            .replace(' ', "_")
    )
}

fn fresh(counter: &mut usize) -> String {
    let name = format!("q{counter}");
    *counter += 1;
    name
}

fn var(v: u32) -> Term {
    Term::Var(v)
}

/// Recursively translates `expr`, returning the predicate that holds its
/// result relation.
fn translate(
    expr: &BoundExpr,
    graph: &Graph,
    program: &mut Program,
    counter: &mut usize,
) -> String {
    match expr {
        Expr::Epsilon => {
            let pred = fresh(counter);
            // q(X, X) ← node(X).
            program.add_rule(Rule {
                head: Atom::new(pred.clone(), vec![var(0), var(0)]),
                body: vec![Atom::new("node", vec![var(0)])],
            });
            pred
        }
        Expr::Step { label, .. } => {
            let pred = fresh(counter);
            let edge = edge_predicate(graph, label.label);
            let body = if label.is_backward() {
                // q(X, Y) ← edge(Y, X).
                Atom::new(edge, vec![var(1), var(0)])
            } else {
                Atom::new(edge, vec![var(0), var(1)])
            };
            program.add_rule(Rule {
                head: Atom::new(pred.clone(), vec![var(0), var(1)]),
                body: vec![body],
            });
            pred
        }
        Expr::Concat(parts) => {
            if parts.is_empty() {
                return translate(&Expr::Epsilon, graph, program, counter);
            }
            let part_preds: Vec<String> = parts
                .iter()
                .map(|p| translate(p, graph, program, counter))
                .collect();
            let pred = fresh(counter);
            // q(X0, Xn) ← p1(X0, X1), p2(X1, X2), …, pn(Xn-1, Xn).
            let body: Vec<Atom> = part_preds
                .iter()
                .enumerate()
                .map(|(i, p)| Atom::new(p.clone(), vec![var(i as u32), var(i as u32 + 1)]))
                .collect();
            program.add_rule(Rule {
                head: Atom::new(pred.clone(), vec![var(0), var(part_preds.len() as u32)]),
                body,
            });
            pred
        }
        Expr::Union(parts) => {
            let pred = fresh(counter);
            for part in parts {
                let part_pred = translate(part, graph, program, counter);
                program.add_rule(Rule {
                    head: Atom::new(pred.clone(), vec![var(0), var(1)]),
                    body: vec![Atom::new(part_pred, vec![var(0), var(1)])],
                });
            }
            pred
        }
        Expr::Repeat { inner, min, max } => {
            let base = translate(inner, graph, program, counter);
            let pred = fresh(counter);
            // Mandatory prefix: base^min.
            let prefix = if *min == 0 {
                // identity
                let id = fresh(counter);
                program.add_rule(Rule {
                    head: Atom::new(id.clone(), vec![var(0), var(0)]),
                    body: vec![Atom::new("node", vec![var(0)])],
                });
                id
            } else {
                let id = fresh(counter);
                let body: Vec<Atom> = (0..*min)
                    .map(|i| Atom::new(base.clone(), vec![var(i), var(i + 1)]))
                    .collect();
                program.add_rule(Rule {
                    head: Atom::new(id.clone(), vec![var(0), var(*min)]),
                    body,
                });
                id
            };
            match max {
                Some(max) => {
                    // A chain of predicates r_min .. r_max, each adding one
                    // repetition; the goal is their union.
                    let mut current = prefix;
                    program.add_rule(Rule {
                        head: Atom::new(pred.clone(), vec![var(0), var(1)]),
                        body: vec![Atom::new(current.clone(), vec![var(0), var(1)])],
                    });
                    for _ in *min..*max {
                        let next = fresh(counter);
                        program.add_rule(Rule {
                            head: Atom::new(next.clone(), vec![var(0), var(2)]),
                            body: vec![
                                Atom::new(current.clone(), vec![var(0), var(1)]),
                                Atom::new(base.clone(), vec![var(1), var(2)]),
                            ],
                        });
                        program.add_rule(Rule {
                            head: Atom::new(pred.clone(), vec![var(0), var(1)]),
                            body: vec![Atom::new(next.clone(), vec![var(0), var(1)])],
                        });
                        current = next;
                    }
                }
                None => {
                    // Genuinely recursive: q = prefix, then q ← q ∘ base.
                    program.add_rule(Rule {
                        head: Atom::new(pred.clone(), vec![var(0), var(1)]),
                        body: vec![Atom::new(prefix, vec![var(0), var(1)])],
                    });
                    program.add_rule(Rule {
                        head: Atom::new(pred.clone(), vec![var(0), var(2)]),
                        body: vec![
                            Atom::new(pred.clone(), vec![var(0), var(1)]),
                            Atom::new(base, vec![var(1), var(2)]),
                        ],
                    });
                }
            }
            pred
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::automaton::evaluate_automaton;
    use pathix_datagen::paper_example_graph;
    use pathix_rpq::parse;

    fn eval(graph: &Graph, query: &str) -> Vec<(NodeId, NodeId)> {
        let expr = parse(query).unwrap().bind(graph).unwrap();
        evaluate_datalog(graph, &expr)
    }

    #[test]
    fn single_label_matches_edge_relation() {
        let g = paper_example_graph();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(eval(&g, "knows"), g.edges(knows).collect::<Vec<_>>());
    }

    #[test]
    fn backward_label_is_the_converse() {
        let g = paper_example_graph();
        let knows = g.label_id("knows").unwrap();
        let mut expected: Vec<_> = g.edges(knows).map(|(a, b)| (b, a)).collect();
        expected.sort_unstable();
        assert_eq!(eval(&g, "knows-"), expected);
    }

    #[test]
    fn datalog_agrees_with_automaton_on_varied_queries() {
        let g = paper_example_graph();
        let queries = [
            "knows/worksFor",
            "supervisor/worksFor-",
            "(knows|worksFor){1,2}",
            "knows{0,3}",
            "knows*",
            "knows+/worksFor?",
            "knows/(knows/worksFor){2,4}/worksFor",
        ];
        for q in queries {
            let expr = parse(q).unwrap().bind(&g).unwrap();
            assert_eq!(
                evaluate_datalog(&g, &expr),
                evaluate_automaton(&g, &expr),
                "disagreement on {q}"
            );
        }
    }

    #[test]
    fn paper_worked_example() {
        let g = paper_example_graph();
        let kim = g.node_id("kim").unwrap();
        let sue = g.node_id("sue").unwrap();
        assert_eq!(eval(&g, "supervisor/worksFor-"), vec![(kim, sue)]);
    }

    #[test]
    fn translation_produces_recursive_rules_for_star() {
        let g = paper_example_graph();
        let expr = parse("knows*").unwrap().bind(&g).unwrap();
        let t = rpq_to_datalog(&g, &expr);
        // A rule whose head predicate also appears in its body = recursion.
        let recursive = t
            .program
            .rules
            .iter()
            .any(|r| r.body.iter().any(|a| a.predicate == r.head.predicate));
        assert!(recursive, "star translation should be recursive");
        // Facts cover every label and the node relation.
        assert!(t.program.facts.contains_key("node"));
        assert!(t.program.facts.contains_key("edge_knows"));
    }

    #[test]
    fn epsilon_is_the_identity() {
        let g = paper_example_graph();
        let result = eval(&g, "()");
        assert_eq!(result.len(), g.node_count());
        assert!(result.iter().all(|&(a, b)| a == b));
    }
}
