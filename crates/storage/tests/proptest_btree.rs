//! Property-based tests: the B+tree must behave exactly like a
//! `std::collections::BTreeMap` model under arbitrary operation sequences.

use pathix_storage::{prefix_successor, BPlusTree};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Debug, Clone)]
enum Op {
    Insert(Vec<u8>, Vec<u8>),
    Delete(Vec<u8>),
    Get(Vec<u8>),
}

fn key_strategy() -> impl Strategy<Value = Vec<u8>> {
    // Small alphabet and short keys maximize collisions, which is what
    // stresses replace/delete paths.
    prop::collection::vec(0u8..6, 0..6)
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (key_strategy(), prop::collection::vec(any::<u8>(), 0..4))
            .prop_map(|(k, v)| Op::Insert(k, v)),
        key_strategy().prop_map(Op::Delete),
        key_strategy().prop_map(Op::Get),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn behaves_like_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for op in ops {
            match op {
                Op::Insert(k, v) => {
                    let expected = model.insert(k.clone(), v.clone());
                    let actual = tree.insert(k, v);
                    prop_assert_eq!(actual, expected);
                }
                Op::Delete(k) => {
                    let expected = model.remove(&k);
                    let actual = tree.delete(&k);
                    prop_assert_eq!(actual, expected);
                }
                Op::Get(k) => {
                    let expected = model.get(&k).map(|v| v.as_slice());
                    let actual = tree.get(&k);
                    prop_assert_eq!(actual, expected);
                }
            }
            prop_assert_eq!(tree.len(), model.len());
        }
        tree.check_invariants();
        let tree_pairs: Vec<_> = tree.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let model_pairs: Vec<_> = model.into_iter().collect();
        prop_assert_eq!(tree_pairs, model_pairs);
    }

    #[test]
    fn range_scans_match_model(
        keys in prop::collection::btree_set(prop::collection::vec(0u8..8, 1..5), 0..300),
        lo in prop::collection::vec(0u8..8, 0..5),
        hi in prop::collection::vec(0u8..8, 0..5),
    ) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> =
            keys.into_iter().map(|k| (k, vec![1u8])).collect();
        let tree = BPlusTree::bulk_load(model.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let expected: Vec<Vec<u8>> = model
            .range(lo.clone()..hi.clone())
            .map(|(k, _)| k.clone())
            .collect();
        let actual: Vec<Vec<u8>> = tree
            .range(&lo, Some(&hi))
            .map(|(k, _)| k.to_vec())
            .collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn prefix_scans_match_model(
        keys in prop::collection::btree_set(prop::collection::vec(0u8..4, 1..6), 0..300),
        prefix in prop::collection::vec(0u8..4, 0..4),
    ) {
        let model: BTreeMap<Vec<u8>, Vec<u8>> =
            keys.into_iter().map(|k| (k, Vec::new())).collect();
        let tree = BPlusTree::bulk_load(model.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        let expected: Vec<Vec<u8>> = model
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        let actual: Vec<Vec<u8>> = tree
            .scan_prefix(&prefix)
            .map(|(k, _)| k.to_vec())
            .collect();
        prop_assert_eq!(actual, expected);
    }

    #[test]
    fn prefix_successor_is_a_tight_upper_bound(prefix in prop::collection::vec(any::<u8>(), 1..8)) {
        if let Some(succ) = prefix_successor(&prefix) {
            // Every extension of the prefix sorts strictly below the successor.
            prop_assert!(prefix < succ);
            let mut extended = prefix.clone();
            extended.extend_from_slice(&[0xFF; 4]);
            prop_assert!(extended < succ);
            prop_assert!(!succ.starts_with(&prefix));
        } else {
            // Only all-0xFF prefixes have no successor.
            prop_assert!(prefix.iter().all(|&b| b == 0xFF));
        }
    }
}
