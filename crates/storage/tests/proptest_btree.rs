//! Randomized model tests: the B+tree must behave exactly like a
//! `std::collections::BTreeMap` model under arbitrary operation sequences.
//!
//! The build environment is offline, so instead of proptest these properties
//! are driven by the vendored deterministic PRNG: every case is seeded, so a
//! failure reproduces exactly.

use pathix_storage::{prefix_successor, BPlusTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

fn random_key(rng: &mut StdRng, alphabet: u8, max_len: usize) -> Vec<u8> {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| rng.gen_range(0..alphabet as u32) as u8)
        .collect()
}

#[test]
fn behaves_like_btreemap() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xB7EE + case);
        let mut tree = BPlusTree::new();
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let ops = rng.gen_range(1..400usize);
        for _ in 0..ops {
            // Small alphabet and short keys maximize collisions, which is
            // what stresses replace/delete paths.
            let k = random_key(&mut rng, 6, 5);
            match rng.gen_range(0..3u32) {
                0 => {
                    let v = random_key(&mut rng, 255, 3);
                    let expected = model.insert(k.clone(), v.clone());
                    let actual = tree.insert(k, v);
                    assert_eq!(actual, expected, "case {case}");
                }
                1 => {
                    let expected = model.remove(&k);
                    let actual = tree.delete(&k);
                    assert_eq!(actual, expected, "case {case}");
                }
                _ => {
                    let expected = model.get(&k).map(|v| v.as_slice());
                    let actual = tree.get(&k);
                    assert_eq!(actual, expected, "case {case}");
                }
            }
            assert_eq!(tree.len(), model.len(), "case {case}");
        }
        tree.check_invariants();
        let tree_pairs: Vec<_> = tree.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let model_pairs: Vec<_> = model.into_iter().collect();
        assert_eq!(tree_pairs, model_pairs, "case {case}");
    }
}

#[test]
fn range_scans_match_model() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0x5CA4 + case);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.gen_range(0..300usize) {
            let mut k = random_key(&mut rng, 8, 4);
            if k.is_empty() {
                k.push(0);
            }
            model.insert(k, vec![1u8]);
        }
        let tree =
            BPlusTree::bulk_load(model.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        let lo = random_key(&mut rng, 8, 4);
        let hi = random_key(&mut rng, 8, 4);
        let (lo, hi) = if lo <= hi { (lo, hi) } else { (hi, lo) };
        let expected: Vec<Vec<u8>> = model
            .range(lo.clone()..hi.clone())
            .map(|(k, _)| k.clone())
            .collect();
        let actual: Vec<Vec<u8>> = tree
            .range(&lo, Some(&hi))
            .map(|(k, _)| k.to_vec())
            .collect();
        assert_eq!(actual, expected, "case {case}");
    }
}

#[test]
fn prefix_scans_match_model() {
    for case in 0..64u64 {
        let mut rng = StdRng::seed_from_u64(0xF1E7 + case);
        let mut model: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        for _ in 0..rng.gen_range(0..300usize) {
            let mut k = random_key(&mut rng, 4, 5);
            if k.is_empty() {
                k.push(0);
            }
            model.insert(k, Vec::new());
        }
        let tree =
            BPlusTree::bulk_load(model.iter().map(|(k, v)| (k.clone(), v.clone())).collect());
        let prefix = random_key(&mut rng, 4, 3);
        let expected: Vec<Vec<u8>> = model
            .keys()
            .filter(|k| k.starts_with(&prefix))
            .cloned()
            .collect();
        let actual: Vec<Vec<u8>> = tree.scan_prefix(&prefix).map(|(k, _)| k.to_vec()).collect();
        assert_eq!(actual, expected, "case {case}");
    }
}

#[test]
fn prefix_successor_is_a_tight_upper_bound() {
    let mut rng = StdRng::seed_from_u64(0x5CC);
    for case in 0..512 {
        let len = rng.gen_range(1..8usize);
        // Bias toward 0xFF bytes so the carry path is exercised often.
        let prefix: Vec<u8> = (0..len)
            .map(|_| {
                if rng.gen_bool(0.3) {
                    0xFF
                } else {
                    rng.gen_range(0..256u32) as u8
                }
            })
            .collect();
        if let Some(succ) = prefix_successor(&prefix) {
            // Every extension of the prefix sorts strictly below the
            // successor.
            assert!(prefix < succ, "case {case}");
            let mut extended = prefix.clone();
            extended.extend_from_slice(&[0xFF; 4]);
            assert!(extended < succ, "case {case}");
            assert!(!succ.starts_with(&prefix), "case {case}");
        } else {
            // Only all-0xFF prefixes have no successor.
            assert!(prefix.iter().all(|&b| b == 0xFF), "case {case}");
        }
    }
}
