//! The B+tree proper: an ordered dictionary over byte-string keys.

use crate::keys::prefix_successor;
use crate::node::{InternalNode, LeafNode, Node, MAX_KEYS};

/// A node split propagated to the parent: the separator key and the new
/// right sibling's id.
type SplitInfo = (Vec<u8>, u32);

/// An in-memory B+tree mapping byte-string keys to byte-string values.
///
/// See the crate-level documentation for the design rationale. The tree is
/// the storage layer of the k-path index: one entry per
/// `⟨label path, source, target⟩` triple, values usually empty.
#[derive(Debug, Clone)]
pub struct BPlusTree {
    nodes: Vec<Node>,
    root: u32,
    len: usize,
}

impl Default for BPlusTree {
    fn default() -> Self {
        Self::new()
    }
}

/// Structural statistics of a tree, mostly for diagnostics and experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TreeStats {
    /// Number of key/value pairs stored.
    pub len: usize,
    /// Height of the tree (a lone leaf has depth 1).
    pub depth: usize,
    /// Total number of nodes (internal + leaf).
    pub node_count: usize,
    /// Number of leaf nodes.
    pub leaf_count: usize,
    /// Approximate heap footprint of keys and values in bytes.
    pub approx_key_bytes: usize,
}

impl BPlusTree {
    /// Creates an empty tree.
    pub fn new() -> Self {
        BPlusTree {
            nodes: vec![Node::Leaf(LeafNode::empty())],
            root: 0,
            len: 0,
        }
    }

    /// Number of key/value pairs stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` if the tree stores no pairs.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn push_node(&mut self, node: Node) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(node);
        id
    }

    fn leaf(&self, id: u32) -> &LeafNode {
        match &self.nodes[id as usize] {
            Node::Leaf(l) => l,
            Node::Internal(_) => unreachable!("expected leaf node"),
        }
    }

    /// Finds the leaf that would contain `key`.
    fn find_leaf(&self, key: &[u8]) -> u32 {
        let mut cur = self.root;
        loop {
            match &self.nodes[cur as usize] {
                Node::Internal(int) => {
                    cur = int.children[int.route(key)];
                }
                Node::Leaf(_) => return cur,
            }
        }
    }

    /// Returns the value stored under `key`, if present.
    pub fn get(&self, key: &[u8]) -> Option<&[u8]> {
        let leaf = self.leaf(self.find_leaf(key));
        leaf.keys
            .binary_search_by(|k| k.as_slice().cmp(key))
            .ok()
            .map(|i| leaf.values[i].as_slice())
    }

    /// `true` if `key` is present.
    pub fn contains_key(&self, key: &[u8]) -> bool {
        self.get(key).is_some()
    }

    /// Inserts `key → value`, returning the previous value if the key was
    /// already present.
    pub fn insert(&mut self, key: Vec<u8>, value: Vec<u8>) -> Option<Vec<u8>> {
        let (old, split) = self.insert_rec(self.root, key, value);
        if let Some((sep, right)) = split {
            let new_root = Node::Internal(InternalNode {
                keys: vec![sep],
                children: vec![self.root, right],
            });
            self.root = self.push_node(new_root);
        }
        if old.is_none() {
            self.len += 1;
        }
        old
    }

    /// Recursive insert; returns the replaced value (if any) and, when the
    /// node at `node_id` split, the separator plus new right sibling id.
    fn insert_rec(
        &mut self,
        node_id: u32,
        key: Vec<u8>,
        value: Vec<u8>,
    ) -> (Option<Vec<u8>>, Option<SplitInfo>) {
        let routed = match &self.nodes[node_id as usize] {
            Node::Internal(int) => {
                let idx = int.route(&key);
                Some((idx, int.children[idx]))
            }
            Node::Leaf(_) => None,
        };

        match routed {
            Some((idx, child_id)) => {
                let (old, child_split) = self.insert_rec(child_id, key, value);
                let Some((sep, new_child)) = child_split else {
                    return (old, None);
                };
                let split = {
                    let Node::Internal(int) = &mut self.nodes[node_id as usize] else {
                        unreachable!("routing node changed kind during insert")
                    };
                    int.keys.insert(idx, sep);
                    int.children.insert(idx + 1, new_child);
                    if int.keys.len() > MAX_KEYS {
                        Some(int.split())
                    } else {
                        None
                    }
                };
                match split {
                    Some((sep_up, right)) => {
                        let right_id = self.push_node(Node::Internal(right));
                        (old, Some((sep_up, right_id)))
                    }
                    None => (old, None),
                }
            }
            None => {
                let (old, split) = {
                    let Node::Leaf(leaf) = &mut self.nodes[node_id as usize] else {
                        unreachable!("leaf node changed kind during insert")
                    };
                    match leaf.keys.binary_search_by(|k| k.as_slice().cmp(&key)) {
                        Ok(i) => {
                            let old = std::mem::replace(&mut leaf.values[i], value);
                            (Some(old), None)
                        }
                        Err(i) => {
                            leaf.keys.insert(i, key);
                            leaf.values.insert(i, value);
                            if leaf.keys.len() > MAX_KEYS {
                                (None, Some(leaf.split()))
                            } else {
                                (None, None)
                            }
                        }
                    }
                };
                match split {
                    Some((sep, right)) => {
                        let right_id = self.push_node(Node::Leaf(right));
                        // Fix the leaf chain: left now points to the new right
                        // sibling (the right sibling already inherited the old
                        // next pointer inside `LeafNode::split`).
                        if let Node::Leaf(leaf) = &mut self.nodes[node_id as usize] {
                            leaf.next = Some(right_id);
                        }
                        (old, Some((sep, right_id)))
                    }
                    None => (old, None),
                }
            }
        }
    }

    /// Removes `key`, returning its value if it was present.
    ///
    /// Deletion is lazy: the pair is removed from its leaf but no structural
    /// rebalancing happens (see the crate documentation).
    pub fn delete(&mut self, key: &[u8]) -> Option<Vec<u8>> {
        let leaf_id = self.find_leaf(key);
        let Node::Leaf(leaf) = &mut self.nodes[leaf_id as usize] else {
            unreachable!("find_leaf returned a non-leaf")
        };
        match leaf.keys.binary_search_by(|k| k.as_slice().cmp(key)) {
            Ok(i) => {
                leaf.keys.remove(i);
                let value = leaf.values.remove(i);
                self.len -= 1;
                Some(value)
            }
            Err(_) => None,
        }
    }

    /// Iterates over all pairs in ascending key order.
    pub fn iter(&self) -> RangeIter<'_> {
        self.range(&[], None)
    }

    /// Iterates over pairs with `start ≤ key` and, when `end` is given,
    /// `key < end`.
    pub fn range(&self, start: &[u8], end: Option<&[u8]>) -> RangeIter<'_> {
        let leaf_id = self.find_leaf(start);
        let leaf = self.leaf(leaf_id);
        let pos = leaf.keys.partition_point(|k| k.as_slice() < start);
        RangeIter {
            tree: self,
            leaf: Some(leaf_id),
            pos,
            end: end.map(<[u8]>::to_vec),
        }
    }

    /// Iterates over all pairs whose key starts with `prefix`.
    pub fn scan_prefix(&self, prefix: &[u8]) -> RangeIter<'_> {
        let end = prefix_successor(prefix);
        let leaf_id = self.find_leaf(prefix);
        let leaf = self.leaf(leaf_id);
        let pos = leaf.keys.partition_point(|k| k.as_slice() < prefix);
        RangeIter {
            tree: self,
            leaf: Some(leaf_id),
            pos,
            end,
        }
    }

    /// Builds a tree from key-sorted, duplicate-free pairs in O(n).
    ///
    /// Panics (in debug builds) if the input is not strictly ascending by key.
    pub fn bulk_load(pairs: Vec<(Vec<u8>, Vec<u8>)>) -> Self {
        debug_assert!(
            pairs.windows(2).all(|w| w[0].0 < w[1].0),
            "bulk_load requires strictly ascending keys"
        );
        if pairs.is_empty() {
            return Self::new();
        }
        let len = pairs.len();
        let mut tree = BPlusTree {
            nodes: Vec::new(),
            root: 0,
            len,
        };

        // Build the leaf level.
        let mut level: Vec<(Vec<u8>, u32)> = Vec::new();
        let mut prev_leaf: Option<u32> = None;
        let mut iter = pairs.into_iter().peekable();
        while iter.peek().is_some() {
            let mut leaf = LeafNode::empty();
            while leaf.keys.len() < MAX_KEYS {
                match iter.next() {
                    Some((k, v)) => {
                        leaf.keys.push(k);
                        leaf.values.push(v);
                    }
                    None => break,
                }
            }
            let first = leaf.keys[0].clone();
            let id = tree.push_node(Node::Leaf(leaf));
            if let Some(prev) = prev_leaf {
                if let Node::Leaf(pl) = &mut tree.nodes[prev as usize] {
                    pl.next = Some(id);
                }
            }
            prev_leaf = Some(id);
            level.push((first, id));
        }

        // Build internal levels until a single root remains.
        while level.len() > 1 {
            let mut next_level: Vec<(Vec<u8>, u32)> = Vec::new();
            for chunk in level.chunks(MAX_KEYS + 1) {
                let first = chunk[0].0.clone();
                let children: Vec<u32> = chunk.iter().map(|(_, id)| *id).collect();
                let keys: Vec<Vec<u8>> = chunk[1..].iter().map(|(k, _)| k.clone()).collect();
                let id = tree.push_node(Node::Internal(InternalNode { keys, children }));
                next_level.push((first, id));
            }
            level = next_level;
        }
        tree.root = level[0].1;
        tree
    }

    /// Structural statistics (depth, node counts, approximate size).
    pub fn stats(&self) -> TreeStats {
        let mut depth = 1;
        let mut cur = self.root;
        while let Node::Internal(int) = &self.nodes[cur as usize] {
            depth += 1;
            cur = int.children[0];
        }
        let mut leaf_count = 0;
        let mut approx_key_bytes = 0;
        for node in &self.nodes {
            match node {
                Node::Leaf(l) => {
                    leaf_count += 1;
                    approx_key_bytes += l
                        .keys
                        .iter()
                        .zip(&l.values)
                        .map(|(k, v)| k.len() + v.len())
                        .sum::<usize>();
                }
                Node::Internal(i) => {
                    approx_key_bytes += i.keys.iter().map(Vec::len).sum::<usize>();
                }
            }
        }
        TreeStats {
            len: self.len,
            depth,
            node_count: self.nodes.len(),
            leaf_count,
            approx_key_bytes,
        }
    }

    /// Verifies the structural invariants of the tree. Intended for tests;
    /// panics with a description when an invariant is violated.
    pub fn check_invariants(&self) {
        // Every internal node: children = keys + 1, separators ascending.
        for node in &self.nodes {
            match node {
                Node::Internal(int) => {
                    assert_eq!(
                        int.children.len(),
                        int.keys.len() + 1,
                        "internal node child/key count mismatch"
                    );
                    assert!(
                        int.keys.windows(2).all(|w| w[0] < w[1]),
                        "internal separators not strictly ascending"
                    );
                }
                Node::Leaf(leaf) => {
                    assert_eq!(leaf.keys.len(), leaf.values.len());
                    assert!(
                        leaf.keys.windows(2).all(|w| w[0] < w[1]),
                        "leaf keys not strictly ascending"
                    );
                }
            }
        }
        // Global key order via the leaf chain, and len consistency.
        let mut count = 0;
        let mut prev: Option<Vec<u8>> = None;
        for (k, _) in self.iter() {
            if let Some(p) = &prev {
                assert!(p.as_slice() < k, "iteration order violated");
            }
            prev = Some(k.to_vec());
            count += 1;
        }
        assert_eq!(
            count, self.len,
            "len does not match number of iterated keys"
        );
    }
}

/// Iterator over a contiguous key range, borrowing the tree.
pub struct RangeIter<'a> {
    tree: &'a BPlusTree,
    leaf: Option<u32>,
    pos: usize,
    end: Option<Vec<u8>>,
}

impl<'a> Iterator for RangeIter<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let leaf_id = self.leaf?;
            let leaf = self.tree.leaf(leaf_id);
            if self.pos < leaf.keys.len() {
                let key = leaf.keys[self.pos].as_slice();
                if let Some(end) = &self.end {
                    if key >= end.as_slice() {
                        self.leaf = None;
                        return None;
                    }
                }
                let value = leaf.values[self.pos].as_slice();
                self.pos += 1;
                return Some((key, value));
            }
            self.leaf = leaf.next;
            self.pos = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kv(i: u32) -> (Vec<u8>, Vec<u8>) {
        (i.to_be_bytes().to_vec(), vec![(i % 251) as u8])
    }

    #[test]
    fn empty_tree() {
        let t = BPlusTree::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(b"missing"), None);
        assert_eq!(t.iter().count(), 0);
        t.check_invariants();
    }

    #[test]
    fn insert_get_small() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(b"b".to_vec(), b"2".to_vec()), None);
        assert_eq!(t.insert(b"a".to_vec(), b"1".to_vec()), None);
        assert_eq!(t.insert(b"c".to_vec(), b"3".to_vec()), None);
        assert_eq!(t.len(), 3);
        assert_eq!(t.get(b"a"), Some(&b"1"[..]));
        assert_eq!(t.get(b"b"), Some(&b"2"[..]));
        assert_eq!(t.get(b"c"), Some(&b"3"[..]));
        assert_eq!(t.get(b"d"), None);
        t.check_invariants();
    }

    #[test]
    fn insert_replaces_existing_value() {
        let mut t = BPlusTree::new();
        assert_eq!(t.insert(b"k".to_vec(), b"v1".to_vec()), None);
        assert_eq!(
            t.insert(b"k".to_vec(), b"v2".to_vec()),
            Some(b"v1".to_vec())
        );
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"k"), Some(&b"v2"[..]));
    }

    #[test]
    fn many_inserts_split_correctly() {
        let mut t = BPlusTree::new();
        let n = 10_000u32;
        // Insert in a scrambled but deterministic order.
        for i in 0..n {
            let j = i.wrapping_mul(2_654_435_761) ^ (i << 7);
            let (k, v) = kv(j);
            t.insert(k, v);
        }
        t.check_invariants();
        assert!(
            t.stats().depth >= 3,
            "tree should have grown multiple levels"
        );
        for i in 0..n {
            let j = i.wrapping_mul(2_654_435_761) ^ (i << 7);
            let (k, v) = kv(j);
            assert_eq!(t.get(&k), Some(v.as_slice()));
        }
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let mut t = BPlusTree::new();
        for i in (0..2000u32).rev() {
            let (k, v) = kv(i);
            t.insert(k, v);
        }
        let collected: Vec<Vec<u8>> = t.iter().map(|(k, _)| k.to_vec()).collect();
        assert_eq!(collected.len(), 2000);
        assert!(collected.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn range_scan_respects_bounds() {
        let mut t = BPlusTree::new();
        for i in 0..500u32 {
            let (k, v) = kv(i);
            t.insert(k, v);
        }
        let lo = 100u32.to_be_bytes().to_vec();
        let hi = 200u32.to_be_bytes().to_vec();
        let hits: Vec<u32> = t
            .range(&lo, Some(&hi))
            .map(|(k, _)| u32::from_be_bytes([k[0], k[1], k[2], k[3]]))
            .collect();
        assert_eq!(hits, (100..200).collect::<Vec<u32>>());
        // Open-ended range.
        let all_from = t.range(&lo, None).count();
        assert_eq!(all_from, 400);
    }

    #[test]
    fn prefix_scan_returns_only_prefixed_keys() {
        let mut t = BPlusTree::new();
        for (k, v) in [
            ("app", "1"),
            ("apple", "2"),
            ("applet", "3"),
            ("apply", "4"),
            ("banana", "5"),
        ] {
            t.insert(k.as_bytes().to_vec(), v.as_bytes().to_vec());
        }
        let hits: Vec<String> = t
            .scan_prefix(b"appl")
            .map(|(k, _)| String::from_utf8(k.to_vec()).unwrap())
            .collect();
        assert_eq!(hits, vec!["apple", "applet", "apply"]);
        assert_eq!(t.scan_prefix(b"zzz").count(), 0);
        assert_eq!(t.scan_prefix(b"").count(), 5);
    }

    #[test]
    fn delete_removes_keys_lazily() {
        let mut t = BPlusTree::new();
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            t.insert(k, v);
        }
        for i in (0..1000u32).step_by(2) {
            let (k, v) = kv(i);
            assert_eq!(t.delete(&k), Some(v));
        }
        assert_eq!(t.len(), 500);
        assert_eq!(t.delete(&kv(0).0), None);
        for i in 0..1000u32 {
            let (k, v) = kv(i);
            if i % 2 == 0 {
                assert_eq!(t.get(&k), None);
            } else {
                assert_eq!(t.get(&k), Some(v.as_slice()));
            }
        }
        t.check_invariants();
    }

    #[test]
    fn bulk_load_matches_incremental_inserts() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..5000u32).map(kv).collect();
        let bulk = BPlusTree::bulk_load(pairs.clone());
        bulk.check_invariants();
        assert_eq!(bulk.len(), 5000);
        let mut incr = BPlusTree::new();
        for (k, v) in pairs.clone() {
            incr.insert(k, v);
        }
        let a: Vec<_> = bulk.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let b: Vec<_> = incr.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(a, b);
        // Point lookups work on the bulk-loaded tree.
        for (k, v) in pairs.iter().step_by(97) {
            assert_eq!(bulk.get(k), Some(v.as_slice()));
        }
    }

    #[test]
    fn bulk_load_empty_and_single() {
        let t = BPlusTree::bulk_load(vec![]);
        assert!(t.is_empty());
        let t = BPlusTree::bulk_load(vec![(b"only".to_vec(), b"one".to_vec())]);
        assert_eq!(t.len(), 1);
        assert_eq!(t.get(b"only"), Some(&b"one"[..]));
        t.check_invariants();
    }

    #[test]
    fn inserts_after_bulk_load() {
        let pairs: Vec<(Vec<u8>, Vec<u8>)> = (0..1000u32).map(|i| kv(i * 2)).collect();
        let mut t = BPlusTree::bulk_load(pairs);
        for i in 0..1000u32 {
            let (k, v) = kv(i * 2 + 1);
            t.insert(k, v);
        }
        assert_eq!(t.len(), 2000);
        t.check_invariants();
    }

    #[test]
    fn stats_reflect_structure() {
        let mut t = BPlusTree::new();
        let s = t.stats();
        assert_eq!(s.depth, 1);
        assert_eq!(s.leaf_count, 1);
        for i in 0..10_000u32 {
            let (k, v) = kv(i);
            t.insert(k, v);
        }
        let s = t.stats();
        assert_eq!(s.len, 10_000);
        assert!(s.depth >= 3);
        assert!(s.leaf_count > 100);
        assert!(s.approx_key_bytes >= 10_000 * 4);
    }
}
