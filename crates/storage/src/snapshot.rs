//! Binary file snapshots of a B+tree.
//!
//! The snapshot format is a flat, length-prefixed dump of the key/value pairs
//! in key order:
//!
//! ```text
//! magic  "PXBT"            4 bytes
//! version u32 LE           4 bytes
//! count  u64 LE            8 bytes
//! repeat count times:
//!     key_len   u32 LE
//!     key       key_len bytes
//!     value_len u32 LE
//!     value     value_len bytes
//! ```
//!
//! Restoring uses [`BPlusTree::bulk_load`], so loading a snapshot is linear
//! in its size and produces a compact tree regardless of the insertion
//! history of the original.

use crate::btree::BPlusTree;
use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

const MAGIC: &[u8; 4] = b"PXBT";
const VERSION: u32 = 1;

/// Errors produced when reading a snapshot.
#[derive(Debug)]
pub enum SnapshotError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The file did not start with the expected magic bytes.
    BadMagic,
    /// The file uses an unsupported format version.
    BadVersion(u32),
    /// The file ended before the advertised number of entries was read.
    Truncated,
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "not a pathix B+tree snapshot (bad magic)"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::Truncated => write!(f, "snapshot file is truncated"),
        }
    }
}

impl std::error::Error for SnapshotError {}

impl From<io::Error> for SnapshotError {
    fn from(e: io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

impl BPlusTree {
    /// Writes all pairs to `path` in the snapshot format.
    pub fn write_snapshot(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let file = File::create(path)?;
        let mut w = BufWriter::new(file);
        w.write_all(MAGIC)?;
        w.write_all(&VERSION.to_le_bytes())?;
        w.write_all(&(self.len() as u64).to_le_bytes())?;
        for (k, v) in self.iter() {
            w.write_all(&(k.len() as u32).to_le_bytes())?;
            w.write_all(k)?;
            w.write_all(&(v.len() as u32).to_le_bytes())?;
            w.write_all(v)?;
        }
        w.flush()?;
        Ok(())
    }

    /// Reads a snapshot previously written by [`BPlusTree::write_snapshot`].
    pub fn read_snapshot(path: impl AsRef<Path>) -> Result<BPlusTree, SnapshotError> {
        let file = File::open(path)?;
        let mut r = BufReader::new(file);
        let mut magic = [0u8; 4];
        r.read_exact(&mut magic)
            .map_err(|_| SnapshotError::Truncated)?;
        if &magic != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(SnapshotError::BadVersion(version));
        }
        let count = read_u64(&mut r)?;
        let mut pairs = Vec::with_capacity(count as usize);
        for _ in 0..count {
            let klen = read_u32(&mut r)? as usize;
            let mut key = vec![0u8; klen];
            r.read_exact(&mut key)
                .map_err(|_| SnapshotError::Truncated)?;
            let vlen = read_u32(&mut r)? as usize;
            let mut value = vec![0u8; vlen];
            r.read_exact(&mut value)
                .map_err(|_| SnapshotError::Truncated)?;
            pairs.push((key, value));
        }
        Ok(BPlusTree::bulk_load(pairs))
    }
}

fn read_u32(r: &mut impl Read) -> Result<u32, SnapshotError> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf)
        .map_err(|_| SnapshotError::Truncated)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64, SnapshotError> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf)
        .map_err(|_| SnapshotError::Truncated)?;
    Ok(u64::from_le_bytes(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("pathix_storage_snapshot_tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn roundtrip_preserves_all_pairs() {
        let mut t = BPlusTree::new();
        for i in 0..3000u32 {
            t.insert(
                i.to_be_bytes().to_vec(),
                vec![(i % 256) as u8; (i % 5) as usize],
            );
        }
        let path = temp_path("roundtrip.pxbt");
        t.write_snapshot(&path).unwrap();
        let restored = BPlusTree::read_snapshot(&path).unwrap();
        assert_eq!(restored.len(), t.len());
        let a: Vec<_> = t.iter().map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let b: Vec<_> = restored
            .iter()
            .map(|(k, v)| (k.to_vec(), v.to_vec()))
            .collect();
        assert_eq!(a, b);
        restored.check_invariants();
    }

    #[test]
    fn empty_tree_roundtrip() {
        let t = BPlusTree::new();
        let path = temp_path("empty.pxbt");
        t.write_snapshot(&path).unwrap();
        let restored = BPlusTree::read_snapshot(&path).unwrap();
        assert!(restored.is_empty());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let path = temp_path("bad_magic.pxbt");
        std::fs::write(&path, b"NOPE00000000").unwrap();
        assert!(matches!(
            BPlusTree::read_snapshot(&path),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn truncated_file_is_rejected() {
        let mut t = BPlusTree::new();
        for i in 0..100u32 {
            t.insert(i.to_be_bytes().to_vec(), vec![1, 2, 3]);
        }
        let path = temp_path("trunc.pxbt");
        t.write_snapshot(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() / 2]).unwrap();
        assert!(matches!(
            BPlusTree::read_snapshot(&path),
            Err(SnapshotError::Truncated)
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let path = temp_path("does_not_exist.pxbt");
        let _ = std::fs::remove_file(&path);
        assert!(matches!(
            BPlusTree::read_snapshot(&path),
            Err(SnapshotError::Io(_))
        ));
    }
}
