//! Order-preserving composite key encoding helpers.
//!
//! Index keys are byte strings compared lexicographically. Fixed-width
//! big-endian encodings of unsigned integers preserve numeric order, so a
//! composite key built by concatenating big-endian fields sorts exactly like
//! the tuple of its fields — provided every prefix of fields has a fixed
//! width, which is how the k-path index lays out
//! `⟨label path, sourceID, targetID⟩`.

/// Incrementally builds a composite byte key from fixed-width big-endian
/// fields.
#[derive(Debug, Default, Clone)]
pub struct KeyBuf {
    bytes: Vec<u8>,
}

impl KeyBuf {
    /// Creates an empty key buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a key buffer with pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        KeyBuf {
            bytes: Vec::with_capacity(cap),
        }
    }

    /// Appends a single byte.
    pub fn push_u8(&mut self, v: u8) -> &mut Self {
        self.bytes.push(v);
        self
    }

    /// Appends a big-endian `u16`.
    pub fn push_u16(&mut self, v: u16) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u32`.
    pub fn push_u32(&mut self, v: u32) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends a big-endian `u64`.
    pub fn push_u64(&mut self, v: u64) -> &mut Self {
        self.bytes.extend_from_slice(&v.to_be_bytes());
        self
    }

    /// Appends raw bytes verbatim.
    pub fn push_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.bytes.extend_from_slice(v);
        self
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// `true` when no bytes have been appended.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Consumes the buffer, returning the key bytes.
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Borrow the bytes accumulated so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }
}

/// Reads a big-endian `u16` at `offset`, if in bounds.
pub fn read_u16(bytes: &[u8], offset: usize) -> Option<u16> {
    bytes
        .get(offset..offset + 2)
        .map(|b| u16::from_be_bytes([b[0], b[1]]))
}

/// Reads a big-endian `u32` at `offset`, if in bounds.
pub fn read_u32(bytes: &[u8], offset: usize) -> Option<u32> {
    bytes
        .get(offset..offset + 4)
        .map(|b| u32::from_be_bytes([b[0], b[1], b[2], b[3]]))
}

/// Computes the smallest byte string strictly greater than every string that
/// starts with `prefix`, or `None` when no such string exists (the prefix is
/// empty or consists solely of `0xFF` bytes). Used to turn a prefix scan into
/// a half-open range scan `[prefix, successor)`.
pub fn prefix_successor(prefix: &[u8]) -> Option<Vec<u8>> {
    let mut out = prefix.to_vec();
    while let Some(last) = out.last_mut() {
        if *last < 0xFF {
            *last += 1;
            return Some(out);
        }
        out.pop();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keybuf_fields_are_order_preserving() {
        let key = |a: u16, b: u32| {
            let mut k = KeyBuf::new();
            k.push_u16(a).push_u32(b);
            k.finish()
        };
        assert!(key(1, 500) < key(2, 0));
        assert!(key(1, 1) < key(1, 2));
        assert!(key(0, u32::MAX) < key(1, 0));
    }

    #[test]
    fn keybuf_len_and_accessors() {
        let mut k = KeyBuf::with_capacity(16);
        assert!(k.is_empty());
        k.push_u8(7)
            .push_u16(300)
            .push_u32(70_000)
            .push_u64(1 << 40);
        assert_eq!(k.len(), 1 + 2 + 4 + 8);
        assert_eq!(k.as_slice().len(), k.len());
        k.push_bytes(b"xy");
        assert_eq!(k.finish().len(), 17);
    }

    #[test]
    fn read_back_fields() {
        let mut k = KeyBuf::new();
        k.push_u16(0xBEEF).push_u32(0xDEADBEEF);
        let bytes = k.finish();
        assert_eq!(read_u16(&bytes, 0), Some(0xBEEF));
        assert_eq!(read_u32(&bytes, 2), Some(0xDEADBEEF));
        assert_eq!(read_u32(&bytes, 3), None);
    }

    #[test]
    fn prefix_successor_simple() {
        assert_eq!(prefix_successor(b"abc"), Some(b"abd".to_vec()));
        assert_eq!(prefix_successor(&[1, 2, 0xFF]), Some(vec![1, 3]));
        assert_eq!(prefix_successor(&[0xFF, 0xFF]), None);
        assert_eq!(prefix_successor(b""), None);
    }

    #[test]
    fn prefix_successor_bounds_all_extensions() {
        let prefix = vec![9u8, 0xFF, 3];
        let succ = prefix_successor(&prefix).unwrap();
        // Any key starting with the prefix is < successor.
        for ext in [vec![], vec![0u8], vec![0xFFu8; 4]] {
            let mut key = prefix.clone();
            key.extend_from_slice(&ext);
            assert!(key.as_slice() < succ.as_slice());
        }
        // And the successor does not itself start with the prefix.
        assert!(!succ.starts_with(&prefix));
    }
}
