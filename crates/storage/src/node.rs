//! B+tree node representation.
//!
//! Nodes live in a flat arena (`Vec<Node>`) inside [`crate::BPlusTree`] and
//! refer to each other by index, which keeps the tree `Send`, trivially
//! droppable, and cheap to snapshot.

/// Maximum number of keys a node may hold before it is split.
///
/// 64 keys per node keeps internal nodes around a cache-line-friendly few
/// kilobytes for the short composite keys used by the k-path index, while
/// keeping the tree shallow (three levels already address ~64³ ≈ 260k keys).
pub const MAX_KEYS: usize = 64;

/// An internal (routing) node.
///
/// Invariant: `children.len() == keys.len() + 1`, and `keys[i]` equals the
/// smallest key stored in the subtree rooted at `children[i + 1]`.
#[derive(Debug, Clone)]
pub struct InternalNode {
    /// Separator keys.
    pub keys: Vec<Vec<u8>>,
    /// Child node ids (arena indices).
    pub children: Vec<u32>,
}

impl InternalNode {
    /// Index of the child subtree that may contain `key`.
    #[inline]
    pub fn route(&self, key: &[u8]) -> usize {
        self.keys.partition_point(|k| k.as_slice() <= key)
    }

    /// Splits an over-full internal node, returning the separator key that
    /// moves up to the parent and the new right sibling.
    pub fn split(&mut self) -> (Vec<u8>, InternalNode) {
        let mid = self.keys.len() / 2;
        let sep = self.keys[mid].clone();
        let right_keys = self.keys.split_off(mid + 1);
        self.keys.pop(); // drop the separator from the left node
        let right_children = self.children.split_off(mid + 1);
        (
            sep,
            InternalNode {
                keys: right_keys,
                children: right_children,
            },
        )
    }
}

/// A leaf node holding key/value pairs, linked to the next leaf in key order.
#[derive(Debug, Clone)]
pub struct LeafNode {
    /// Keys in ascending order.
    pub keys: Vec<Vec<u8>>,
    /// Values parallel to `keys`.
    pub values: Vec<Vec<u8>>,
    /// Arena index of the next leaf in key order, if any.
    pub next: Option<u32>,
}

impl LeafNode {
    /// Creates an empty, unlinked leaf.
    pub fn empty() -> Self {
        LeafNode {
            keys: Vec::new(),
            values: Vec::new(),
            next: None,
        }
    }

    /// Splits an over-full leaf, returning the separator key (the first key
    /// of the right sibling) and the right sibling itself. The caller is
    /// responsible for fixing the leaf chain (`next` pointers).
    pub fn split(&mut self) -> (Vec<u8>, LeafNode) {
        let mid = self.keys.len() / 2;
        let right_keys = self.keys.split_off(mid);
        let right_values = self.values.split_off(mid);
        let sep = right_keys[0].clone();
        (
            sep,
            LeafNode {
                keys: right_keys,
                values: right_values,
                next: self.next,
            },
        )
    }
}

/// A B+tree node: either routing or leaf.
#[derive(Debug, Clone)]
pub enum Node {
    /// Internal routing node.
    Internal(InternalNode),
    /// Leaf node with data.
    Leaf(LeafNode),
}

impl Node {
    /// `true` if this node is a leaf.
    pub fn is_leaf(&self) -> bool {
        matches!(self, Node::Leaf(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn k(b: u8) -> Vec<u8> {
        vec![b]
    }

    #[test]
    fn route_picks_correct_child() {
        let node = InternalNode {
            keys: vec![k(10), k(20)],
            children: vec![0, 1, 2],
        };
        assert_eq!(node.route(&k(5)), 0);
        assert_eq!(node.route(&k(10)), 1);
        assert_eq!(node.route(&k(15)), 1);
        assert_eq!(node.route(&k(20)), 2);
        assert_eq!(node.route(&k(99)), 2);
    }

    #[test]
    fn leaf_split_halves_and_returns_first_right_key() {
        let mut leaf = LeafNode {
            keys: (0..6u8).map(k).collect(),
            values: (0..6u8).map(k).collect(),
            next: Some(42),
        };
        let (sep, right) = leaf.split();
        assert_eq!(sep, k(3));
        assert_eq!(leaf.keys, vec![k(0), k(1), k(2)]);
        assert_eq!(right.keys, vec![k(3), k(4), k(5)]);
        assert_eq!(right.values.len(), 3);
        // Right inherits the old next pointer.
        assert_eq!(right.next, Some(42));
    }

    #[test]
    fn internal_split_moves_middle_key_up() {
        let mut node = InternalNode {
            keys: vec![k(1), k(2), k(3), k(4), k(5)],
            children: vec![10, 11, 12, 13, 14, 15],
        };
        let (sep, right) = node.split();
        assert_eq!(sep, k(3));
        assert_eq!(node.keys, vec![k(1), k(2)]);
        assert_eq!(node.children, vec![10, 11, 12]);
        assert_eq!(right.keys, vec![k(4), k(5)]);
        assert_eq!(right.children, vec![13, 14, 15]);
        // Both halves keep the children = keys + 1 invariant.
        assert_eq!(node.children.len(), node.keys.len() + 1);
        assert_eq!(right.children.len(), right.keys.len() + 1);
    }

    #[test]
    fn node_is_leaf() {
        assert!(Node::Leaf(LeafNode::empty()).is_leaf());
        assert!(!Node::Internal(InternalNode {
            keys: vec![],
            children: vec![0]
        })
        .is_leaf());
    }
}
