//! # pathix-storage
//!
//! A from-scratch, in-memory B+tree over order-preserving byte-string keys.
//!
//! The EDBT 2016 paper prototypes its k-path index on top of PostgreSQL
//! B+tree tables; its companion work (reference \[14\] in the paper) builds the
//! same index "from scratch". This crate is that from-scratch substrate: an
//! ordered dictionary with
//!
//! * point lookups ([`BPlusTree::get`]),
//! * ordered insertion ([`BPlusTree::insert`]) and deletion
//!   ([`BPlusTree::delete`]),
//! * **range scans** ([`BPlusTree::range`]) and **prefix scans**
//!   ([`BPlusTree::scan_prefix`]) over linked leaves — the operation the
//!   k-path index uses to answer `I_{G,k}(p)`, `I_{G,k}(p, a)` and
//!   `I_{G,k}(p, a, b)` lookups,
//! * sorted **bulk loading** ([`BPlusTree::bulk_load`]) used when the index is
//!   first constructed,
//! * a binary file snapshot ([`BPlusTree::write_snapshot`] /
//!   [`BPlusTree::read_snapshot`]).
//!
//! Deletion is *lazy*: keys are removed from their leaf but leaves are not
//! merged or rebalanced. The k-path index workload is bulk-load-then-read, so
//! structural rebalancing would add complexity without measurable benefit;
//! the tree remains correct (searches and scans skip empty leaves).
//!
//! Keys are arbitrary byte strings compared lexicographically; helpers for
//! building order-preserving composite keys live in [`keys`].
//!
//! ```
//! use pathix_storage::BPlusTree;
//!
//! let mut t = BPlusTree::new();
//! t.insert(b"knows/1/2".to_vec(), vec![]);
//! t.insert(b"knows/1/3".to_vec(), vec![]);
//! t.insert(b"worksFor/2/1".to_vec(), vec![]);
//! let hits: Vec<_> = t.scan_prefix(b"knows/").map(|(k, _)| k.to_vec()).collect();
//! assert_eq!(hits.len(), 2);
//! ```

pub mod btree;
pub mod keys;
pub mod node;
pub mod snapshot;

pub use btree::{BPlusTree, TreeStats};
pub use keys::{prefix_successor, KeyBuf};
