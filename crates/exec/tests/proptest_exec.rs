//! Randomized property tests for the physical pair operators: both join
//! algorithms must compute exactly the relational composition, and the union
//! / distinct operators must implement bag concatenation and set semantics.
//!
//! Driven by the vendored deterministic PRNG (the environment is offline, so
//! no proptest); every case is seeded and reproduces exactly.

use pathix_exec::{
    collect_pairs, BoxedPairStream, DistinctOp, HashJoinOp, MaterializedOp, MergeJoinOp, Pair,
    PairStream, Sortedness, UnionAllOp,
};
use pathix_graph::NodeId;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A small random pair relation over node ids `0..domain`.
fn relation(rng: &mut StdRng, domain: u32, max_len: usize) -> Vec<Pair> {
    let len = rng.gen_range(0..=max_len);
    (0..len)
        .map(|_| {
            (
                NodeId(rng.gen_range(0..domain)),
                NodeId(rng.gen_range(0..domain)),
            )
        })
        .collect()
}

/// Reference composition `L ∘ R` with set semantics.
fn compose_reference(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
    let mut out: BTreeSet<Pair> = BTreeSet::new();
    for &(x, y) in left {
        for &(y2, z) in right {
            if y == y2 {
                out.insert((x, z));
            }
        }
    }
    out.into_iter().collect()
}

/// Wraps a pair list as a stream sorted the way a merge join's left input
/// must be (by target, then source).
fn by_target(mut pairs: Vec<Pair>) -> MaterializedOp {
    pairs.sort_unstable_by_key(|&(s, t)| (t, s));
    MaterializedOp::new(pairs, Sortedness::ByTarget)
}

/// Wraps a pair list as a stream sorted by (source, target).
fn by_source(mut pairs: Vec<Pair>) -> MaterializedOp {
    pairs.sort_unstable();
    MaterializedOp::new(pairs, Sortedness::BySource)
}

/// Merge join and hash join agree with the nested-loop reference on any
/// input relations, regardless of duplicates or skew.
#[test]
fn joins_compute_relational_composition() {
    for case in 0..200u64 {
        let mut rng = StdRng::seed_from_u64(0x101 + case);
        let left = relation(&mut rng, 12, 60);
        let right = relation(&mut rng, 12, 60);
        let expected = compose_reference(&left, &right);

        let merge = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        assert_eq!(
            collect_pairs(merge).unwrap(),
            expected,
            "merge, case {case}"
        );

        let hash = HashJoinOp::new(
            Box::new(by_source(left.clone())),
            Box::new(by_source(right.clone())),
        );
        assert_eq!(collect_pairs(hash).unwrap(), expected, "hash, case {case}");
    }
}

/// Composition with the empty relation is empty on either side.
#[test]
fn joining_with_the_empty_relation_is_empty() {
    for case in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(0xE019 + case);
        let left = relation(&mut rng, 10, 40);
        let merge = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(Vec::new())),
        );
        assert!(collect_pairs(merge).unwrap().is_empty(), "case {case}");
        let hash = HashJoinOp::new(Box::new(by_source(Vec::new())), Box::new(by_source(left)));
        assert!(collect_pairs(hash).unwrap().is_empty(), "case {case}");
    }
}

/// UnionAll concatenates its inputs (bag semantics): the multiset of emitted
/// pairs is the concatenation of the input multisets, and collect_pairs on
/// top restores exactly the set union.
#[test]
fn union_all_concatenates_and_collect_restores_set_union() {
    for case in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(0xC0C0 + case);
        let parts: Vec<Vec<Pair>> = (0..rng.gen_range(0..5usize))
            .map(|_| relation(&mut rng, 10, 30))
            .collect();
        let streams: Vec<BoxedPairStream> = parts
            .iter()
            .map(|p| {
                Box::new(MaterializedOp::new(p.clone(), Sortedness::Unsorted)) as BoxedPairStream
            })
            .collect();
        let mut union = UnionAllOp::new(streams);
        let mut emitted = Vec::new();
        while let Some(pair) = union.next_pair().unwrap() {
            emitted.push(pair);
        }
        let expected_bag: Vec<Pair> = parts.iter().flatten().copied().collect();
        assert_eq!(emitted, expected_bag, "case {case}");

        let streams: Vec<BoxedPairStream> = parts
            .iter()
            .map(|p| {
                Box::new(MaterializedOp::new(p.clone(), Sortedness::Unsorted)) as BoxedPairStream
            })
            .collect();
        let expected_set: BTreeSet<Pair> = expected_bag.into_iter().collect();
        assert_eq!(
            collect_pairs(UnionAllOp::new(streams)).unwrap(),
            expected_set.into_iter().collect::<Vec<_>>(),
            "case {case}"
        );
    }
}

/// Distinct preserves first occurrences, never emits a duplicate, and keeps
/// exactly the set of input pairs.
#[test]
fn distinct_emits_each_pair_once_in_first_occurrence_order() {
    for case in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(0xD157 + case);
        let pairs = relation(&mut rng, 8, 80);
        let mut distinct = DistinctOp::new(Box::new(MaterializedOp::new(
            pairs.clone(),
            Sortedness::Unsorted,
        )));
        let mut emitted = Vec::new();
        while let Some(pair) = distinct.next_pair().unwrap() {
            emitted.push(pair);
        }
        // Expected: first occurrences in order.
        let mut seen = BTreeSet::new();
        let expected: Vec<Pair> = pairs.iter().copied().filter(|p| seen.insert(*p)).collect();
        assert_eq!(emitted, expected, "case {case}");
    }
}

/// Joins are associative on the final answer sets: (L ∘ M) ∘ R = L ∘ (M ∘ R).
#[test]
fn composition_is_associative() {
    for case in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(0xA550 + case);
        let left = relation(&mut rng, 8, 30);
        let middle = relation(&mut rng, 8, 30);
        let right = relation(&mut rng, 8, 30);
        let lm_r = compose_reference(&compose_reference(&left, &middle), &right);
        let l_mr = compose_reference(&left, &compose_reference(&middle, &right));
        assert_eq!(lm_r, l_mr, "case {case}");

        // And the hash join pipeline reproduces the same relation.
        let lm = HashJoinOp::new(
            Box::new(by_source(left.clone())),
            Box::new(by_source(middle.clone())),
        );
        let lm_pairs = collect_pairs(lm).unwrap();
        let piped = HashJoinOp::new(
            Box::new(by_source(lm_pairs)),
            Box::new(by_source(right.clone())),
        );
        assert_eq!(collect_pairs(piped).unwrap(), lm_r, "case {case}");
    }
}
