//! The operator protocol shared by all physical operators.

use pathix_graph::NodeId;
use pathix_index::backend::{BackendResult, PairBatch};

/// A partial query result: the start node of the matched path prefix and the
/// current frontier node.
pub type Pair = (NodeId, NodeId);

/// The order in which an operator emits its pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sortedness {
    /// Sorted by `(source, target)`.
    BySource,
    /// Sorted by `(target, source)`.
    ByTarget,
    /// Sorted under both interpretations (only the identity relation).
    Both,
    /// No usable order.
    Unsorted,
}

impl Sortedness {
    /// `true` if a consumer needing source-major order can use this stream.
    pub fn is_by_source(self) -> bool {
        matches!(self, Sortedness::BySource | Sortedness::Both)
    }

    /// `true` if a consumer needing target-major order can use this stream.
    pub fn is_by_target(self) -> bool {
        matches!(self, Sortedness::ByTarget | Sortedness::Both)
    }
}

/// A pull-based stream of node pairs, produced either one pair or one
/// [`PairBatch`] at a time.
///
/// Both pulls are fallible: index scans may read from disk-resident backends,
/// so any operator (and anything stacked on top of one) can surface a
/// [`pathix_index::BackendError`] instead of a pair. Operators propagate
/// errors upward unchanged; the executor converts them into query errors.
///
/// `next_pair` and `next_batch` have default implementations in terms of each
/// other, so an implementor must override **at least one** (overriding
/// neither recurses). The built-in operators override both: `next_batch` is
/// the fast bulk path used by `collect_pairs` and the plan executor, while
/// `next_pair` serves cursor streaming and `limit`/`exists` early
/// termination. Both pulls draw from the same underlying position — mixing
/// them observes each pair exactly once, in the same order.
pub trait PairStream {
    /// Produces the next pair, `Ok(None)` when exhausted, or the backend
    /// error that interrupted the scan.
    ///
    /// The default pulls a capacity-1 batch, which allocates per call; batch
    /// producers that expect pair-at-a-time consumers should override this
    /// with a buffered implementation.
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        let mut one = PairBatch::with_capacity(1);
        Ok(if self.next_batch(&mut one)? == 0 {
            None
        } else {
            Some(one.get(0))
        })
    }

    /// Clears `batch` and refills it with up to `batch.capacity()` of the
    /// stream's next pairs, in stream order. Returns how many pairs were
    /// produced; `Ok(0)` means the stream is exhausted. Producers may return
    /// short, non-empty batches mid-stream — consumers keep pulling until 0.
    ///
    /// The default loops `next_pair`, which preserves semantics for
    /// pair-at-a-time implementors but forfeits the bulk-movement win.
    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        batch.clear();
        while !batch.is_full() {
            match self.next_pair()? {
                Some(pair) => batch.push(pair),
                None => break,
            }
        }
        Ok(batch.len())
    }

    /// The order guarantee of this stream.
    fn sortedness(&self) -> Sortedness;
}

/// Owned, dynamically dispatched pair stream (operators borrow the index, so
/// the lifetime ties the stream to it).
pub type BoxedPairStream<'a> = Box<dyn PairStream + 'a>;

impl<'a> PairStream for BoxedPairStream<'a> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        (**self).next_pair()
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        (**self).next_batch(batch)
    }

    fn sortedness(&self) -> Sortedness {
        (**self).sortedness()
    }
}

/// Drains a stream into a sorted, duplicate-free vector — the final
/// set-semantics answer of an RPQ — or the first backend error encountered.
/// Drains batch-at-a-time.
pub fn collect_pairs(mut stream: impl PairStream) -> BackendResult<Vec<Pair>> {
    let mut out = Vec::new();
    let mut batch = PairBatch::new();
    while stream.next_batch(&mut batch)? > 0 {
        out.extend(batch.iter());
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::MaterializedOp;

    #[test]
    fn sortedness_predicates() {
        assert!(Sortedness::BySource.is_by_source());
        assert!(!Sortedness::BySource.is_by_target());
        assert!(Sortedness::ByTarget.is_by_target());
        assert!(Sortedness::Both.is_by_source() && Sortedness::Both.is_by_target());
        assert!(!Sortedness::Unsorted.is_by_source());
        assert!(!Sortedness::Unsorted.is_by_target());
    }

    #[test]
    fn collect_pairs_sorts_and_dedups() {
        let n = NodeId;
        let stream = MaterializedOp::new(
            vec![(n(3), n(1)), (n(1), n(2)), (n(3), n(1)), (n(0), n(9))],
            Sortedness::Unsorted,
        );
        assert_eq!(
            collect_pairs(stream).unwrap(),
            vec![(n(0), n(9)), (n(1), n(2)), (n(3), n(1))]
        );
    }

    #[test]
    fn boxed_stream_delegates() {
        let n = NodeId;
        let inner = MaterializedOp::new(vec![(n(1), n(1))], Sortedness::Both);
        let mut boxed: BoxedPairStream<'_> = Box::new(inner);
        assert_eq!(boxed.sortedness(), Sortedness::Both);
        assert_eq!(boxed.next_pair().unwrap(), Some((n(1), n(1))));
        assert_eq!(boxed.next_pair().unwrap(), None);
    }

    /// An operator that only implements `next_pair`, exercising the default
    /// `next_batch` shim.
    struct PairOnly {
        next: u32,
        end: u32,
    }

    impl PairStream for PairOnly {
        fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
            if self.next >= self.end {
                return Ok(None);
            }
            let i = self.next;
            self.next += 1;
            Ok(Some((NodeId(i), NodeId(i + 100))))
        }

        fn sortedness(&self) -> Sortedness {
            Sortedness::BySource
        }
    }

    #[test]
    fn default_next_batch_wraps_a_pair_at_a_time_operator() {
        let mut op = PairOnly { next: 0, end: 5 };
        let mut batch = PairBatch::with_capacity(3);
        assert_eq!(op.next_batch(&mut batch).unwrap(), 3);
        assert_eq!(batch.get(2), (NodeId(2), NodeId(102)));
        assert_eq!(op.next_batch(&mut batch).unwrap(), 2);
        assert_eq!(op.next_batch(&mut batch).unwrap(), 0);
    }

    /// An operator that only implements `next_batch`, exercising the default
    /// `next_pair` shim.
    struct BatchOnly {
        pairs: Vec<Pair>,
        pos: usize,
    }

    impl PairStream for BatchOnly {
        fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
            batch.clear();
            while self.pos < self.pairs.len() && !batch.is_full() {
                batch.push(self.pairs[self.pos]);
                self.pos += 1;
            }
            Ok(batch.len())
        }

        fn sortedness(&self) -> Sortedness {
            Sortedness::Unsorted
        }
    }

    #[test]
    fn default_next_pair_wraps_a_batch_only_operator() {
        let n = NodeId;
        let mut op = BatchOnly {
            pairs: vec![(n(1), n(2)), (n(3), n(4))],
            pos: 0,
        };
        assert_eq!(op.next_pair().unwrap(), Some((n(1), n(2))));
        assert_eq!(op.next_pair().unwrap(), Some((n(3), n(4))));
        assert_eq!(op.next_pair().unwrap(), None);
    }
}
