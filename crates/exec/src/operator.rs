//! The operator protocol shared by all physical operators.

use pathix_graph::NodeId;
use pathix_index::backend::BackendResult;

/// A partial query result: the start node of the matched path prefix and the
/// current frontier node.
pub type Pair = (NodeId, NodeId);

/// The order in which an operator emits its pairs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sortedness {
    /// Sorted by `(source, target)`.
    BySource,
    /// Sorted by `(target, source)`.
    ByTarget,
    /// Sorted under both interpretations (only the identity relation).
    Both,
    /// No usable order.
    Unsorted,
}

impl Sortedness {
    /// `true` if a consumer needing source-major order can use this stream.
    pub fn is_by_source(self) -> bool {
        matches!(self, Sortedness::BySource | Sortedness::Both)
    }

    /// `true` if a consumer needing target-major order can use this stream.
    pub fn is_by_target(self) -> bool {
        matches!(self, Sortedness::ByTarget | Sortedness::Both)
    }
}

/// A pull-based stream of node pairs.
///
/// `next_pair` is fallible: index scans may read from disk-resident backends,
/// so any operator (and anything stacked on top of one) can surface a
/// [`pathix_index::BackendError`] instead of a pair. Operators propagate
/// errors upward unchanged; the executor converts them into query errors.
pub trait PairStream {
    /// Produces the next pair, `Ok(None)` when exhausted, or the backend
    /// error that interrupted the scan.
    fn next_pair(&mut self) -> BackendResult<Option<Pair>>;

    /// The order guarantee of this stream.
    fn sortedness(&self) -> Sortedness;
}

/// Owned, dynamically dispatched pair stream (operators borrow the index, so
/// the lifetime ties the stream to it).
pub type BoxedPairStream<'a> = Box<dyn PairStream + 'a>;

impl<'a> PairStream for BoxedPairStream<'a> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        (**self).next_pair()
    }

    fn sortedness(&self) -> Sortedness {
        (**self).sortedness()
    }
}

/// Drains a stream into a sorted, duplicate-free vector — the final
/// set-semantics answer of an RPQ — or the first backend error encountered.
pub fn collect_pairs(mut stream: impl PairStream) -> BackendResult<Vec<Pair>> {
    let mut out = Vec::new();
    while let Some(pair) = stream.next_pair()? {
        out.push(pair);
    }
    out.sort_unstable();
    out.dedup();
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::MaterializedOp;

    #[test]
    fn sortedness_predicates() {
        assert!(Sortedness::BySource.is_by_source());
        assert!(!Sortedness::BySource.is_by_target());
        assert!(Sortedness::ByTarget.is_by_target());
        assert!(Sortedness::Both.is_by_source() && Sortedness::Both.is_by_target());
        assert!(!Sortedness::Unsorted.is_by_source());
        assert!(!Sortedness::Unsorted.is_by_target());
    }

    #[test]
    fn collect_pairs_sorts_and_dedups() {
        let n = NodeId;
        let stream = MaterializedOp::new(
            vec![(n(3), n(1)), (n(1), n(2)), (n(3), n(1)), (n(0), n(9))],
            Sortedness::Unsorted,
        );
        assert_eq!(
            collect_pairs(stream).unwrap(),
            vec![(n(0), n(9)), (n(1), n(2)), (n(3), n(1))]
        );
    }

    #[test]
    fn boxed_stream_delegates() {
        let n = NodeId;
        let inner = MaterializedOp::new(vec![(n(1), n(1))], Sortedness::Both);
        let mut boxed: BoxedPairStream<'_> = Box::new(inner);
        assert_eq!(boxed.sortedness(), Sortedness::Both);
        assert_eq!(boxed.next_pair().unwrap(), Some((n(1), n(1))));
        assert_eq!(boxed.next_pair().unwrap(), None);
    }
}
