//! Cooperative cancellation and deadlines for streaming execution.
//!
//! A serving tier cannot afford a query that hogs a worker forever: an
//! unbound scan over a large index can pull millions of pairs. The exec layer
//! is pull-based, so cancellation is cooperative — a [`CancelToken`] is
//! shared between the request handler and the operator tree, and a
//! [`CancelGuard`] wrapped around every operator checks it at batch
//! boundaries. When the token is cancelled (explicitly, or because its
//! deadline passed), the next pull returns a [`BackendError`] whose backend
//! name is [`CANCEL_BACKEND`]; upper layers translate that marker into their
//! own cancellation/deadline error variants.
//!
//! The check is engineered to be cheap enough to sit on the per-pair path:
//! one relaxed atomic load per pull, with the (vDSO, but still pricier)
//! deadline clock read amortized to every `DEADLINE_STRIDE`-th pair pull.
//! Batch pulls always take the full check — a batch is already hundreds of
//! pairs of work.

use crate::operator::{BoxedPairStream, Pair, PairStream, Sortedness};
use pathix_index::backend::{BackendResult, PairBatch};
use pathix_index::BackendError;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The `BackendError::backend()` marker of an injected cancellation error.
/// Upper layers match on this to distinguish "the consumer gave up" from a
/// real storage failure.
pub const CANCEL_BACKEND: &str = "cancelled";

/// How many pair-at-a-time pulls may pass between deadline clock reads.
const DEADLINE_STRIDE: u64 = 64;

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A shared, clonable cancellation handle with an optional deadline.
///
/// Cloning is cheap (one `Arc` bump); all clones observe the same state.
/// Equality is identity: two tokens compare equal iff they are clones of the
/// same allocation, which keeps `QueryOptions` comparable without pretending
/// two independent tokens with the same deadline are interchangeable.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A token that never expires on its own; only [`CancelToken::cancel`]
    /// trips it.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: None,
            }),
        }
    }

    /// A token that expires at `deadline` (and can still be cancelled
    /// earlier).
    pub fn with_deadline(deadline: Instant) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(deadline),
            }),
        }
    }

    /// A token that expires `budget` from now.
    pub fn with_budget(budget: Duration) -> Self {
        Self::with_deadline(Instant::now() + budget)
    }

    /// Requests cancellation. Idempotent; takes effect at the stream's next
    /// cancellation check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// `true` once [`CancelToken::cancel`] has been called (deadline expiry
    /// does not set this flag — see [`CancelToken::is_cancelled`]).
    pub fn cancel_requested(&self) -> bool {
        self.inner.cancelled.load(Ordering::Acquire)
    }

    /// The deadline, if the token carries one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }

    /// `true` once the deadline (if any) has passed.
    pub fn deadline_exceeded(&self) -> bool {
        self.inner
            .deadline
            .is_some_and(|deadline| Instant::now() >= deadline)
    }

    /// `true` once the token is tripped for either reason: explicit
    /// cancellation or deadline expiry.
    pub fn is_cancelled(&self) -> bool {
        self.cancel_requested() || self.deadline_exceeded()
    }

    /// The full check: errors with a [`CANCEL_BACKEND`] marker when the token
    /// is tripped for either reason.
    pub fn check(&self) -> BackendResult<()> {
        if self.cancel_requested() {
            return Err(cancel_error("query cancelled"));
        }
        if self.deadline_exceeded() {
            return Err(cancel_error("deadline exceeded"));
        }
        Ok(())
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl PartialEq for CancelToken {
    fn eq(&self, other: &Self) -> bool {
        Arc::ptr_eq(&self.inner, &other.inner)
    }
}

impl Eq for CancelToken {}

fn cancel_error(message: &str) -> BackendError {
    BackendError::new(CANCEL_BACKEND, message)
}

/// A [`PairStream`] wrapper that checks a [`CancelToken`] on every pull.
///
/// The planner wraps *every* operator in the tree, not just the root: a
/// single root-level `next_batch` on a selective join can pull thousands of
/// child batches before producing output, so a root-only check could overrun
/// a deadline by an unbounded amount. With every node guarded, the work
/// between two checks is bounded by one leaf batch.
pub struct CancelGuard<'a> {
    inner: BoxedPairStream<'a>,
    token: CancelToken,
    /// Pair pulls since the guard was created, for deadline-check striding.
    pulls: u64,
}

impl<'a> CancelGuard<'a> {
    pub fn new(inner: BoxedPairStream<'a>, token: CancelToken) -> Self {
        CancelGuard {
            inner,
            token,
            pulls: 0,
        }
    }
}

impl PairStream for CancelGuard<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if self.token.cancel_requested() {
            return Err(cancel_error("query cancelled"));
        }
        self.pulls += 1;
        if self.pulls.is_multiple_of(DEADLINE_STRIDE) && self.token.deadline_exceeded() {
            return Err(cancel_error("deadline exceeded"));
        }
        self.inner.next_pair()
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        self.token.check()?;
        self.inner.next_batch(batch)
    }

    fn sortedness(&self) -> Sortedness {
        self.inner.sortedness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::MaterializedOp;
    use pathix_graph::NodeId;

    fn pairs(n: u32) -> Vec<Pair> {
        (0..n).map(|i| (NodeId(i), NodeId(i + 1))).collect()
    }

    fn guarded(n: u32, token: &CancelToken) -> CancelGuard<'static> {
        CancelGuard::new(
            Box::new(MaterializedOp::new(pairs(n), Sortedness::BySource)),
            token.clone(),
        )
    }

    #[test]
    fn untripped_token_is_transparent() {
        let token = CancelToken::new();
        let mut stream = guarded(3, &token);
        assert_eq!(stream.sortedness(), Sortedness::BySource);
        let mut seen = 0;
        while stream.next_pair().unwrap().is_some() {
            seen += 1;
        }
        assert_eq!(seen, 3);
    }

    #[test]
    fn cancel_interrupts_both_pull_shapes() {
        let token = CancelToken::new();
        let mut stream = guarded(10, &token);
        assert!(stream.next_pair().unwrap().is_some());
        token.cancel();
        let err = stream.next_pair().expect_err("cancel must interrupt");
        assert_eq!(err.backend(), CANCEL_BACKEND);

        let token = CancelToken::new();
        let mut stream = guarded(10, &token);
        token.cancel();
        let mut batch = PairBatch::new();
        let err = stream
            .next_batch(&mut batch)
            .expect_err("cancel must interrupt");
        assert_eq!(err.backend(), CANCEL_BACKEND);
    }

    #[test]
    fn expired_deadline_interrupts_batches_immediately() {
        let token = CancelToken::with_budget(Duration::ZERO);
        assert!(token.deadline_exceeded());
        assert!(!token.cancel_requested());
        assert!(token.is_cancelled());
        let mut stream = guarded(10, &token);
        let mut batch = PairBatch::new();
        let err = stream
            .next_batch(&mut batch)
            .expect_err("expired deadline must interrupt");
        assert_eq!(err.backend(), CANCEL_BACKEND);
        assert!(err.to_string().contains("deadline"));
    }

    #[test]
    fn expired_deadline_interrupts_pair_pulls_within_one_stride() {
        let token = CancelToken::with_budget(Duration::ZERO);
        let n = DEADLINE_STRIDE as u32 * 2;
        let mut stream = guarded(n, &token);
        let mut pulled = 0u64;
        let err = loop {
            match stream.next_pair() {
                Ok(Some(_)) => pulled += 1,
                Ok(None) => panic!("stream must be interrupted before exhaustion"),
                Err(e) => break e,
            }
        };
        assert_eq!(err.backend(), CANCEL_BACKEND);
        assert!(pulled < DEADLINE_STRIDE, "checked within one stride");
    }

    #[test]
    fn clones_share_state_and_compare_by_identity() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert_eq!(token, clone);
        assert_ne!(token, CancelToken::new());
        clone.cancel();
        assert!(token.cancel_requested());
        assert!(token.check().is_err());
        assert!(CancelToken::default().check().is_ok());
        assert!(CancelToken::new().deadline().is_none());
        assert!(CancelToken::with_budget(Duration::from_secs(3600))
            .deadline()
            .is_some());
    }
}
