//! # pathix-exec
//!
//! Volcano-style streaming physical operators over node-pair streams.
//!
//! Every operator produces a stream of `(source, target)` pairs — a partial
//! RPQ result where `source` is the start of the matched path prefix and
//! `target` its current frontier — together with a [`Sortedness`] describing
//! the order the pairs are emitted in. The planner (in `pathix-plan`) wires
//! these operators into trees that follow the paper's physical plans:
//!
//! * [`IndexScanOp`] — a prefix scan of the k-path index, either in its
//!   natural `(source, target)` order or over the *inverse* path so the pairs
//!   arrive sorted by target (the trick the paper uses to enable merge
//!   joins);
//! * [`MergeJoinOp`] — composition of two streams sorted on the shared join
//!   node;
//! * [`HashJoinOp`] — composition when the sort order is not available;
//! * [`UnionAllOp`] / [`DistinctOp`] — combine disjuncts and enforce set
//!   semantics;
//! * [`EpsilonScanOp`] / [`MaterializedOp`] — the identity relation and
//!   pre-materialized inputs.
//!
//! Operators move data batch-at-a-time: [`PairStream::next_batch`] fills a
//! reusable structure-of-arrays [`PairBatch`] per virtual call, while
//! [`PairStream::next_pair`] remains available for cursor streaming and
//! `limit`/`exists` early termination.

pub mod cancel;
pub mod join;
pub mod operator;
pub mod scan;
pub mod union;

pub use cancel::{CancelGuard, CancelToken, CANCEL_BACKEND};
pub use join::{HashJoinOp, MergeJoinOp};
pub use operator::{collect_pairs, BoxedPairStream, Pair, PairStream, Sortedness};
pub use pathix_index::backend::{PairBatch, BATCH_CAPACITY};
pub use scan::{EpsilonScanOp, IndexScanOp, MaterializedOp, ScanOrientation};
pub use union::{DistinctOp, UnionAllOp};
