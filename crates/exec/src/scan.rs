//! Leaf operators: index scans, the identity relation, materialized inputs.

use crate::operator::{Pair, PairStream, Sortedness};
use pathix_graph::NodeId;
use pathix_graph::SignedLabel;
use pathix_index::backend::{BackendBatchScan, BackendResult, PairBatch, PathIndexBackend};
use pathix_rpq::ast::inverse_path;

/// Whether an index scan reads the path itself or its inverse.
///
/// Scanning the inverse path `p⁻` yields the same relation `p(G)` (after
/// swapping the pair back into `(source, target)` orientation) but ordered by
/// the path's **target** — the paper's device for making merge joins
/// applicable ("the subexpression has been inverted to obtain the correct
/// sort order").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrientation {
    /// Scan `p`: pairs arrive in `(source, target)` order.
    Forward,
    /// Scan `p⁻` and swap: pairs arrive in `(target, source)`-major order.
    Inverse,
}

/// A prefix scan of a k-path index backend for one label path.
///
/// The operator is built against any [`PathIndexBackend`] — the in-memory
/// B+tree, the buffer-pool-backed paged index or the compressed pair blocks —
/// and streams whatever the backend streams, surfacing its errors.
pub struct IndexScanOp<'a> {
    scan: BackendBatchScan<'a>,
    orientation: ScanOrientation,
    /// Buffer serving pair-at-a-time pulls (cursor streaming); batch pulls
    /// drain any buffered remainder first so mixed pulls stay in order.
    buf: PairBatch,
    pos: usize,
}

impl<'a> IndexScanOp<'a> {
    /// Creates a scan of `path` over `index` with the given orientation.
    ///
    /// Fails (with the backend's error) if the scan cannot be opened, e.g.
    /// when the first page of a disk-resident index cannot be read or the
    /// path length violates the planner contract.
    pub fn new<B: PathIndexBackend + ?Sized>(
        index: &'a B,
        path: &[SignedLabel],
        orientation: ScanOrientation,
    ) -> BackendResult<Self> {
        let scan = match orientation {
            ScanOrientation::Forward => index.scan_path_batches(path)?,
            ScanOrientation::Inverse => index.scan_path_batches(&inverse_path(path))?,
        };
        Ok(IndexScanOp {
            scan,
            orientation,
            buf: PairBatch::new(),
            pos: 0,
        })
    }

    /// Pulls the next backend batch into `batch`, restoring the semantic
    /// `(source, target)` orientation for inverse scans. An associated
    /// function over disjoint fields so it composes with a borrowed
    /// `self.buf`.
    fn fill(
        scan: &mut BackendBatchScan<'a>,
        orientation: ScanOrientation,
        batch: &mut PairBatch,
    ) -> BackendResult<usize> {
        let n = scan.next_batch(batch)?;
        // The index stores the inverse path's pairs as (target, source of the
        // original path); swap the columns back so the semantic orientation
        // is uniform while the physical order stays target-major.
        if n > 0 && orientation == ScanOrientation::Inverse {
            batch.swap_columns();
        }
        Ok(n)
    }
}

impl PairStream for IndexScanOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if self.pos >= self.buf.len() {
            self.pos = 0;
            if Self::fill(&mut self.scan, self.orientation, &mut self.buf)? == 0 {
                return Ok(None);
            }
        }
        let pair = self.buf.get(self.pos);
        self.pos += 1;
        Ok(Some(pair))
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        if self.pos < self.buf.len() {
            // Flush the remainder of the pair-serving buffer first.
            batch.clear();
            while self.pos < self.buf.len() && !batch.is_full() {
                batch.push(self.buf.get(self.pos));
                self.pos += 1;
            }
            return Ok(batch.len());
        }
        Self::fill(&mut self.scan, self.orientation, batch)
    }

    fn sortedness(&self) -> Sortedness {
        match self.orientation {
            ScanOrientation::Forward => Sortedness::BySource,
            ScanOrientation::Inverse => Sortedness::ByTarget,
        }
    }
}

/// The identity relation `ε(G) = {(n, n) | n ∈ nodes(G)}`.
pub struct EpsilonScanOp {
    next: u32,
    node_count: u32,
}

impl EpsilonScanOp {
    /// Creates the identity scan for a graph with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        EpsilonScanOp {
            next: 0,
            node_count: node_count as u32,
        }
    }
}

impl PairStream for EpsilonScanOp {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if self.next >= self.node_count {
            return Ok(None);
        }
        let n = NodeId(self.next);
        self.next += 1;
        Ok(Some((n, n)))
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        batch.clear();
        while self.next < self.node_count && !batch.is_full() {
            let n = NodeId(self.next);
            self.next += 1;
            batch.push((n, n));
        }
        Ok(batch.len())
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Both
    }
}

/// A pre-materialized pair stream (used for intermediate results and tests).
pub struct MaterializedOp {
    pairs: Vec<Pair>,
    pos: usize,
    sortedness: Sortedness,
}

impl MaterializedOp {
    /// Wraps an already-computed pair list. The caller is responsible for the
    /// `sortedness` claim being accurate.
    pub fn new(pairs: Vec<Pair>, sortedness: Sortedness) -> Self {
        MaterializedOp {
            pairs,
            pos: 0,
            sortedness,
        }
    }
}

impl PairStream for MaterializedOp {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        let pair = self.pairs.get(self.pos).copied();
        self.pos += pair.is_some() as usize;
        Ok(pair)
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        batch.clear();
        let take = batch.capacity().min(self.pairs.len() - self.pos);
        batch.extend_from_pairs(&self.pairs[self.pos..self.pos + take]);
        self.pos += take;
        Ok(batch.len())
    }

    fn sortedness(&self) -> Sortedness {
        self.sortedness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_pairs;
    use pathix_datagen::paper_example_graph;
    use pathix_index::{naive_path_eval, KPathIndex};

    #[test]
    fn forward_scan_is_source_sorted_and_complete() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let path = vec![knows, knows];
        let mut scan = IndexScanOp::new(&index, &path, ScanOrientation::Forward).unwrap();
        assert_eq!(scan.sortedness(), Sortedness::BySource);
        let mut pairs = Vec::new();
        while let Some(p) = scan.next_pair().unwrap() {
            pairs.push(p);
        }
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(pairs, naive_path_eval(&g, &path));
    }

    #[test]
    fn inverse_scan_yields_same_relation_target_sorted() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let works = SignedLabel::forward(g.label_id("worksFor").unwrap());
        let path = vec![knows, works];
        let mut scan = IndexScanOp::new(&index, &path, ScanOrientation::Inverse).unwrap();
        assert_eq!(scan.sortedness(), Sortedness::ByTarget);
        let mut pairs = Vec::new();
        while let Some(p) = scan.next_pair().unwrap() {
            pairs.push(p);
        }
        // Target-major order.
        assert!(pairs
            .windows(2)
            .all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
        // Same relation as the forward scan.
        let mut sorted = pairs;
        sorted.sort_unstable();
        assert_eq!(sorted, naive_path_eval(&g, &path));
    }

    #[test]
    fn scans_work_through_a_trait_object() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let backend: &dyn PathIndexBackend = &index;
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let path = vec![knows];
        let scan = IndexScanOp::new(backend, &path, ScanOrientation::Forward).unwrap();
        assert_eq!(collect_pairs(scan).unwrap(), naive_path_eval(&g, &path));
    }

    #[test]
    fn contract_violations_surface_as_errors() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 1);
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let err = IndexScanOp::new(&index, &[knows, knows], ScanOrientation::Forward);
        assert!(err.is_err(), "scanning past k must error, not panic");
    }

    #[test]
    fn epsilon_scan_is_identity() {
        let g = paper_example_graph();
        let scan = EpsilonScanOp::new(g.node_count());
        let pairs = collect_pairs(scan).unwrap();
        assert_eq!(pairs.len(), g.node_count());
        assert!(pairs.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn mixed_pair_and_batch_pulls_observe_each_pair_once() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let works = SignedLabel::forward(g.label_id("worksFor").unwrap());
        let path = vec![knows, works];
        let reference: Vec<Pair> = {
            let mut scan = IndexScanOp::new(&index, &path, ScanOrientation::Inverse).unwrap();
            let mut pairs = Vec::new();
            while let Some(p) = scan.next_pair().unwrap() {
                pairs.push(p);
            }
            pairs
        };
        // Pull two pairs, then drain batch-at-a-time: same pairs, same order.
        let mut scan = IndexScanOp::new(&index, &path, ScanOrientation::Inverse).unwrap();
        let mut mixed = Vec::new();
        for _ in 0..2 {
            mixed.push(scan.next_pair().unwrap().unwrap());
        }
        let mut batch = PairBatch::with_capacity(3);
        while scan.next_batch(&mut batch).unwrap() > 0 {
            mixed.extend(batch.iter());
        }
        assert_eq!(mixed, reference);
    }

    #[test]
    fn materialized_passes_through() {
        let n = NodeId;
        let op = MaterializedOp::new(vec![(n(0), n(1)), (n(2), n(3))], Sortedness::BySource);
        assert_eq!(op.sortedness(), Sortedness::BySource);
        assert_eq!(collect_pairs(op).unwrap().len(), 2);
    }
}
