//! Leaf operators: index scans, the identity relation, materialized inputs.

use crate::operator::{Pair, PairStream, Sortedness};
use pathix_graph::{NodeId, SignedLabel};
use pathix_index::kpath::PairScan;
use pathix_index::KPathIndex;
use pathix_rpq::ast::inverse_path;

/// Whether an index scan reads the path itself or its inverse.
///
/// Scanning the inverse path `p⁻` yields the same relation `p(G)` (after
/// swapping the pair back into `(source, target)` orientation) but ordered by
/// the path's **target** — the paper's device for making merge joins
/// applicable ("the subexpression has been inverted to obtain the correct
/// sort order").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanOrientation {
    /// Scan `p`: pairs arrive in `(source, target)` order.
    Forward,
    /// Scan `p⁻` and swap: pairs arrive in `(target, source)`-major order.
    Inverse,
}

/// A prefix scan of the k-path index for one label path.
pub struct IndexScanOp<'a> {
    scan: PairScan<'a>,
    orientation: ScanOrientation,
}

impl<'a> IndexScanOp<'a> {
    /// Creates a scan of `path` over `index` with the given orientation.
    ///
    /// Panics (in the index) if `path` is empty or longer than the index k.
    pub fn new(index: &'a KPathIndex, path: &[SignedLabel], orientation: ScanOrientation) -> Self {
        let scan = match orientation {
            ScanOrientation::Forward => index.scan_path(path),
            ScanOrientation::Inverse => index.scan_path(&inverse_path(path)),
        };
        IndexScanOp { scan, orientation }
    }
}

impl PairStream for IndexScanOp<'_> {
    fn next_pair(&mut self) -> Option<Pair> {
        match self.orientation {
            ScanOrientation::Forward => self.scan.next(),
            // The index stores the inverse path's pairs as (target, source of
            // the original path); swap them back so the semantic orientation
            // is uniform while the physical order stays target-major.
            ScanOrientation::Inverse => self.scan.next().map(|(a, b)| (b, a)),
        }
    }

    fn sortedness(&self) -> Sortedness {
        match self.orientation {
            ScanOrientation::Forward => Sortedness::BySource,
            ScanOrientation::Inverse => Sortedness::ByTarget,
        }
    }
}

/// The identity relation `ε(G) = {(n, n) | n ∈ nodes(G)}`.
pub struct EpsilonScanOp {
    next: u32,
    node_count: u32,
}

impl EpsilonScanOp {
    /// Creates the identity scan for a graph with `node_count` nodes.
    pub fn new(node_count: usize) -> Self {
        EpsilonScanOp {
            next: 0,
            node_count: node_count as u32,
        }
    }
}

impl PairStream for EpsilonScanOp {
    fn next_pair(&mut self) -> Option<Pair> {
        if self.next >= self.node_count {
            return None;
        }
        let n = NodeId(self.next);
        self.next += 1;
        Some((n, n))
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Both
    }
}

/// A pre-materialized pair stream (used for intermediate results and tests).
pub struct MaterializedOp {
    pairs: std::vec::IntoIter<Pair>,
    sortedness: Sortedness,
}

impl MaterializedOp {
    /// Wraps an already-computed pair list. The caller is responsible for the
    /// `sortedness` claim being accurate.
    pub fn new(pairs: Vec<Pair>, sortedness: Sortedness) -> Self {
        MaterializedOp {
            pairs: pairs.into_iter(),
            sortedness,
        }
    }
}

impl PairStream for MaterializedOp {
    fn next_pair(&mut self) -> Option<Pair> {
        self.pairs.next()
    }

    fn sortedness(&self) -> Sortedness {
        self.sortedness
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_pairs;
    use pathix_datagen::paper_example_graph;
    use pathix_index::naive_path_eval;

    #[test]
    fn forward_scan_is_source_sorted_and_complete() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let path = vec![knows, knows];
        let mut scan = IndexScanOp::new(&index, &path, ScanOrientation::Forward);
        assert_eq!(scan.sortedness(), Sortedness::BySource);
        let mut pairs = Vec::new();
        while let Some(p) = scan.next_pair() {
            pairs.push(p);
        }
        assert!(pairs.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(pairs, naive_path_eval(&g, &path));
    }

    #[test]
    fn inverse_scan_yields_same_relation_target_sorted() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        let knows = SignedLabel::forward(g.label_id("knows").unwrap());
        let works = SignedLabel::forward(g.label_id("worksFor").unwrap());
        let path = vec![knows, works];
        let mut scan = IndexScanOp::new(&index, &path, ScanOrientation::Inverse);
        assert_eq!(scan.sortedness(), Sortedness::ByTarget);
        let mut pairs = Vec::new();
        while let Some(p) = scan.next_pair() {
            pairs.push(p);
        }
        // Target-major order.
        assert!(pairs.windows(2).all(|w| (w[0].1, w[0].0) <= (w[1].1, w[1].0)));
        // Same relation as the forward scan.
        let mut sorted = pairs;
        sorted.sort_unstable();
        assert_eq!(sorted, naive_path_eval(&g, &path));
    }

    #[test]
    fn epsilon_scan_is_identity() {
        let g = paper_example_graph();
        let scan = EpsilonScanOp::new(g.node_count());
        let pairs = collect_pairs(scan);
        assert_eq!(pairs.len(), g.node_count());
        assert!(pairs.iter().all(|&(a, b)| a == b));
    }

    #[test]
    fn materialized_passes_through() {
        let n = NodeId;
        let op = MaterializedOp::new(vec![(n(0), n(1)), (n(2), n(3))], Sortedness::BySource);
        assert_eq!(op.sortedness(), Sortedness::BySource);
        assert_eq!(collect_pairs(op).len(), 2);
    }
}
