//! Union and duplicate elimination.

use crate::operator::{BoxedPairStream, Pair, PairStream, Sortedness};
use pathix_index::backend::BackendResult;
use std::collections::HashSet;

/// Concatenates the outputs of several streams (bag semantics).
///
/// The paper's complete physical plan is "formed as a union of the sub-plans"
/// for the individual disjuncts; a [`DistinctOp`] on top restores set
/// semantics.
pub struct UnionAllOp<'a> {
    inputs: Vec<BoxedPairStream<'a>>,
    current: usize,
}

impl<'a> UnionAllOp<'a> {
    /// Creates a union over `inputs`, drained in order.
    pub fn new(inputs: Vec<BoxedPairStream<'a>>) -> Self {
        UnionAllOp { inputs, current: 0 }
    }
}

impl PairStream for UnionAllOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        while self.current < self.inputs.len() {
            if let Some(pair) = self.inputs[self.current].next_pair()? {
                return Ok(Some(pair));
            }
            self.current += 1;
        }
        Ok(None)
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Unsorted
    }
}

/// Streaming duplicate elimination using a hash set of seen pairs.
pub struct DistinctOp<'a> {
    input: BoxedPairStream<'a>,
    seen: HashSet<(u32, u32)>,
}

impl<'a> DistinctOp<'a> {
    /// Wraps `input`, suppressing repeated pairs.
    pub fn new(input: BoxedPairStream<'a>) -> Self {
        DistinctOp {
            input,
            seen: HashSet::new(),
        }
    }
}

impl PairStream for DistinctOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        loop {
            let Some((a, b)) = self.input.next_pair()? else {
                return Ok(None);
            };
            if self.seen.insert((a.0, b.0)) {
                return Ok(Some((a, b)));
            }
        }
    }

    fn sortedness(&self) -> Sortedness {
        self.input.sortedness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_pairs;
    use crate::scan::MaterializedOp;
    use pathix_graph::NodeId;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    fn mat(pairs: Vec<Pair>) -> BoxedPairStream<'static> {
        Box::new(MaterializedOp::new(pairs, Sortedness::Unsorted))
    }

    #[test]
    fn union_concatenates_all_inputs() {
        let union = UnionAllOp::new(vec![
            mat(vec![(n(1), n(2))]),
            mat(vec![]),
            mat(vec![(n(3), n(4)), (n(1), n(2))]),
        ]);
        let pairs = collect_pairs(union).unwrap();
        assert_eq!(pairs, vec![(n(1), n(2)), (n(3), n(4))]);
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let union = UnionAllOp::new(vec![]);
        assert!(collect_pairs(union).unwrap().is_empty());
    }

    #[test]
    fn distinct_removes_duplicates_preserving_first_occurrence() {
        let mut distinct = DistinctOp::new(mat(vec![
            (n(5), n(6)),
            (n(1), n(2)),
            (n(5), n(6)),
            (n(1), n(2)),
            (n(7), n(8)),
        ]));
        let mut out = Vec::new();
        while let Some(p) = distinct.next_pair().unwrap() {
            out.push(p);
        }
        assert_eq!(out, vec![(n(5), n(6)), (n(1), n(2)), (n(7), n(8))]);
    }

    #[test]
    fn distinct_preserves_claimed_order_of_input() {
        let inner = Box::new(MaterializedOp::new(
            vec![(n(1), n(1)), (n(2), n(2))],
            Sortedness::BySource,
        ));
        let distinct = DistinctOp::new(inner);
        assert_eq!(distinct.sortedness(), Sortedness::BySource);
    }
}
