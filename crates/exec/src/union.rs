//! Union and duplicate elimination.

use crate::operator::{BoxedPairStream, Pair, PairStream, Sortedness};
use pathix_index::backend::{BackendResult, PairBatch};
use std::collections::HashSet;

/// Concatenates the outputs of several streams (bag semantics).
///
/// The paper's complete physical plan is "formed as a union of the sub-plans"
/// for the individual disjuncts; a [`DistinctOp`] on top restores set
/// semantics.
pub struct UnionAllOp<'a> {
    inputs: Vec<BoxedPairStream<'a>>,
    current: usize,
}

impl<'a> UnionAllOp<'a> {
    /// Creates a union over `inputs`, drained in order.
    pub fn new(inputs: Vec<BoxedPairStream<'a>>) -> Self {
        UnionAllOp { inputs, current: 0 }
    }
}

impl PairStream for UnionAllOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        while self.current < self.inputs.len() {
            if let Some(pair) = self.inputs[self.current].next_pair()? {
                return Ok(Some(pair));
            }
            self.current += 1;
        }
        Ok(None)
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        while self.current < self.inputs.len() {
            let n = self.inputs[self.current].next_batch(batch)?;
            if n > 0 {
                return Ok(n);
            }
            self.current += 1;
        }
        batch.clear();
        Ok(0)
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Unsorted
    }
}

/// Streaming duplicate elimination.
///
/// Sorted inputs (`BySource`, `ByTarget` or `Both` — total orders over the
/// pair) are deduplicated by comparing against the previously emitted pair,
/// without any side state; unsorted inputs fall back to a hash set of seen
/// pairs. Both paths emit the first occurrence of each pair in input order.
pub struct DistinctOp<'a> {
    input: BoxedPairStream<'a>,
    sorted: bool,
    last: Option<Pair>,
    seen: HashSet<(u32, u32)>,
    /// Scratch input batch for the batched pull path, with a resume position
    /// so survivors that would overflow the output batch stay buffered.
    buf: PairBatch,
    buf_pos: usize,
}

impl<'a> DistinctOp<'a> {
    /// Wraps `input`, suppressing repeated pairs.
    pub fn new(input: BoxedPairStream<'a>) -> Self {
        let s = input.sortedness();
        DistinctOp {
            input,
            sorted: s.is_by_source() || s.is_by_target(),
            last: None,
            seen: HashSet::new(),
            buf: PairBatch::new(),
            buf_pos: 0,
        }
    }

    /// `true` if `pair` has not been seen before (and records it).
    fn fresh(&mut self, pair: Pair) -> bool {
        if self.sorted {
            if self.last == Some(pair) {
                return false;
            }
            self.last = Some(pair);
            true
        } else {
            self.seen.insert((pair.0 .0, pair.1 .0))
        }
    }
}

impl PairStream for DistinctOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        loop {
            if self.buf_pos < self.buf.len() {
                let pair = self.buf.get(self.buf_pos);
                self.buf_pos += 1;
                if self.fresh(pair) {
                    return Ok(Some(pair));
                }
                continue;
            }
            let Some(pair) = self.input.next_pair()? else {
                return Ok(None);
            };
            if self.fresh(pair) {
                return Ok(Some(pair));
            }
        }
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        batch.clear();
        loop {
            while self.buf_pos < self.buf.len() && !batch.is_full() {
                let pair = self.buf.get(self.buf_pos);
                self.buf_pos += 1;
                if self.fresh(pair) {
                    batch.push(pair);
                }
            }
            if batch.is_full() {
                return Ok(batch.len());
            }
            self.buf_pos = 0;
            if self.input.next_batch(&mut self.buf)? == 0 {
                self.buf.clear();
                return Ok(batch.len());
            }
        }
    }

    fn sortedness(&self) -> Sortedness {
        self.input.sortedness()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_pairs;
    use crate::scan::MaterializedOp;
    use pathix_graph::NodeId;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    fn mat(pairs: Vec<Pair>) -> BoxedPairStream<'static> {
        Box::new(MaterializedOp::new(pairs, Sortedness::Unsorted))
    }

    #[test]
    fn union_concatenates_all_inputs() {
        let union = UnionAllOp::new(vec![
            mat(vec![(n(1), n(2))]),
            mat(vec![]),
            mat(vec![(n(3), n(4)), (n(1), n(2))]),
        ]);
        let pairs = collect_pairs(union).unwrap();
        assert_eq!(pairs, vec![(n(1), n(2)), (n(3), n(4))]);
    }

    #[test]
    fn union_of_nothing_is_empty() {
        let union = UnionAllOp::new(vec![]);
        assert!(collect_pairs(union).unwrap().is_empty());
    }

    #[test]
    fn union_batches_cross_input_boundaries() {
        let mut union = UnionAllOp::new(vec![
            mat(vec![(n(1), n(2)), (n(3), n(4))]),
            mat(vec![]),
            mat(vec![(n(5), n(6))]),
        ]);
        let mut batch = PairBatch::with_capacity(8);
        let mut out = Vec::new();
        while union.next_batch(&mut batch).unwrap() > 0 {
            out.extend(batch.iter());
        }
        assert_eq!(out, vec![(n(1), n(2)), (n(3), n(4)), (n(5), n(6))]);
    }

    #[test]
    fn distinct_removes_duplicates_preserving_first_occurrence() {
        let mut distinct = DistinctOp::new(mat(vec![
            (n(5), n(6)),
            (n(1), n(2)),
            (n(5), n(6)),
            (n(1), n(2)),
            (n(7), n(8)),
        ]));
        let mut out = Vec::new();
        while let Some(p) = distinct.next_pair().unwrap() {
            out.push(p);
        }
        assert_eq!(out, vec![(n(5), n(6)), (n(1), n(2)), (n(7), n(8))]);
    }

    #[test]
    fn distinct_on_sorted_input_needs_no_side_set() {
        let pairs = vec![
            (n(1), n(2)),
            (n(1), n(2)),
            (n(1), n(3)),
            (n(2), n(0)),
            (n(2), n(0)),
            (n(2), n(0)),
        ];
        let inner = Box::new(MaterializedOp::new(pairs, Sortedness::BySource));
        let mut distinct = DistinctOp::new(inner);
        let mut out = Vec::new();
        let mut batch = PairBatch::with_capacity(4);
        while distinct.next_batch(&mut batch).unwrap() > 0 {
            out.extend(batch.iter());
        }
        assert_eq!(out, vec![(n(1), n(2)), (n(1), n(3)), (n(2), n(0))]);
        assert!(distinct.seen.is_empty(), "sorted dedup must not hash");
    }

    #[test]
    fn distinct_dedups_across_batch_boundaries_when_sorted() {
        // 1200 copies of one pair straddle the default batch capacity.
        let mut pairs = vec![(n(0), n(1)); 1200];
        pairs.extend(vec![(n(3), n(0)); 700]);
        let inner = Box::new(MaterializedOp::new(pairs, Sortedness::BySource));
        let distinct = DistinctOp::new(inner);
        assert_eq!(
            collect_pairs(distinct).unwrap(),
            vec![(n(0), n(1)), (n(3), n(0))]
        );
    }

    #[test]
    fn distinct_preserves_claimed_order_of_input() {
        let inner = Box::new(MaterializedOp::new(
            vec![(n(1), n(1)), (n(2), n(2))],
            Sortedness::BySource,
        ));
        let distinct = DistinctOp::new(inner);
        assert_eq!(distinct.sortedness(), Sortedness::BySource);
    }
}
