//! Composition joins: merge join and hash join.
//!
//! Both operators compute the composition of two pair relations
//! `L ∘ R = {(x, z) | (x, y) ∈ L, (y, z) ∈ R}` — the physical counterpart of
//! the `◦` operator after a disjunct has been cut into index-sized pieces.

use crate::operator::{BoxedPairStream, Pair, PairStream, Sortedness};
use pathix_graph::NodeId;
use pathix_index::backend::{BackendError, BackendResult};
use std::collections::HashMap;

/// Merge join over the shared middle node.
///
/// Requires the left input sorted by **target** and the right input sorted by
/// **source** (the planner arranges this by scanning inverse paths). This is
/// the join the paper prefers "whenever possible (to make the best use of the
/// physical sort order of the index)".
pub struct MergeJoinOp<'a> {
    left: BoxedPairStream<'a>,
    right: BoxedPairStream<'a>,
    left_peek: Option<Pair>,
    right_peek: Option<Pair>,
    primed: bool,
    out_buf: std::vec::IntoIter<Pair>,
    // A backend error is latched: polling again after an error must re-raise
    // it, never resume merging from half-advanced input cursors.
    poisoned: Option<BackendError>,
}

impl<'a> MergeJoinOp<'a> {
    /// Creates a merge join. Panics if the inputs do not provide the
    /// required sort orders — the planner must only emit valid merge joins.
    /// (Input *errors* are deferred to the first `next_pair` call.)
    pub fn new(left: BoxedPairStream<'a>, right: BoxedPairStream<'a>) -> Self {
        assert!(
            left.sortedness().is_by_target(),
            "merge join requires the left input sorted by target"
        );
        assert!(
            right.sortedness().is_by_source(),
            "merge join requires the right input sorted by source"
        );
        MergeJoinOp {
            left,
            right,
            left_peek: None,
            right_peek: None,
            primed: false,
            out_buf: Vec::new().into_iter(),
            poisoned: None,
        }
    }

    /// Gathers the next group of matching pairs into `out_buf`.
    fn refill(&mut self) -> BackendResult<bool> {
        if !self.primed {
            self.primed = true;
            self.left_peek = self.left.next_pair()?;
            self.right_peek = self.right.next_pair()?;
        }
        loop {
            let (lp, rp) = match (self.left_peek, self.right_peek) {
                (Some(l), Some(r)) => (l, r),
                _ => return Ok(false),
            };
            let lkey = lp.1;
            let rkey = rp.0;
            if lkey < rkey {
                self.left_peek = self.left.next_pair()?;
            } else if rkey < lkey {
                self.right_peek = self.right.next_pair()?;
            } else {
                // Collect the full group on both sides.
                let key = lkey;
                let mut left_group: Vec<NodeId> = Vec::new();
                while let Some((src, tgt)) = self.left_peek {
                    if tgt != key {
                        break;
                    }
                    left_group.push(src);
                    self.left_peek = self.left.next_pair()?;
                }
                let mut right_group: Vec<NodeId> = Vec::new();
                while let Some((src, tgt)) = self.right_peek {
                    if src != key {
                        break;
                    }
                    right_group.push(tgt);
                    self.right_peek = self.right.next_pair()?;
                }
                let mut buf = Vec::with_capacity(left_group.len() * right_group.len());
                for &x in &left_group {
                    for &z in &right_group {
                        buf.push((x, z));
                    }
                }
                self.out_buf = buf.into_iter();
                return Ok(true);
            }
        }
    }
}

impl PairStream for MergeJoinOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        loop {
            if let Some(pair) = self.out_buf.next() {
                return Ok(Some(pair));
            }
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return Ok(None),
                Err(e) => {
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
            }
        }
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Unsorted
    }
}

/// Hash join over the shared middle node.
///
/// The right input is materialized into a hash table keyed by its source
/// node; the left input is streamed and probed by its target node. Used
/// whenever the merge join's sort-order requirements cannot be met (e.g. when
/// one input is an intermediate join result).
pub struct HashJoinOp<'a> {
    left: BoxedPairStream<'a>,
    right: Option<BoxedPairStream<'a>>,
    table: HashMap<NodeId, Vec<NodeId>>,
    pending: std::vec::IntoIter<Pair>,
    // A backend error is latched: polling again after an error must re-raise
    // it, never stream answers computed from a partially built hash table.
    poisoned: Option<BackendError>,
}

impl<'a> HashJoinOp<'a> {
    /// Creates a hash join; the right side is built into the hash table on
    /// first use.
    pub fn new(left: BoxedPairStream<'a>, right: BoxedPairStream<'a>) -> Self {
        HashJoinOp {
            left,
            right: Some(right),
            table: HashMap::new(),
            pending: Vec::new().into_iter(),
            poisoned: None,
        }
    }

    fn ensure_built(&mut self) -> BackendResult<()> {
        if let Some(mut right) = self.right.take() {
            while let Some((src, tgt)) = right.next_pair()? {
                self.table.entry(src).or_default().push(tgt);
            }
        }
        Ok(())
    }

    fn next_pair_inner(&mut self) -> BackendResult<Option<Pair>> {
        self.ensure_built()?;
        loop {
            if let Some(pair) = self.pending.next() {
                return Ok(Some(pair));
            }
            let Some((src, tgt)) = self.left.next_pair()? else {
                return Ok(None);
            };
            if let Some(matches) = self.table.get(&tgt) {
                self.pending = matches
                    .iter()
                    .map(|&z| (src, z))
                    .collect::<Vec<_>>()
                    .into_iter();
            }
        }
    }
}

impl PairStream for HashJoinOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.next_pair_inner() {
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
            ok => ok,
        }
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Unsorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_pairs;
    use crate::scan::MaterializedOp;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    /// Reference composition for cross-checking.
    fn compose(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
        let mut out = Vec::new();
        for &(x, y) in left {
            for &(y2, z) in right {
                if y == y2 {
                    out.push((x, z));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn by_target(mut pairs: Vec<Pair>) -> MaterializedOp {
        pairs.sort_unstable_by_key(|&(a, b)| (b, a));
        MaterializedOp::new(pairs, Sortedness::ByTarget)
    }

    fn by_source(mut pairs: Vec<Pair>) -> MaterializedOp {
        pairs.sort_unstable();
        MaterializedOp::new(pairs, Sortedness::BySource)
    }

    #[test]
    fn merge_join_composes_relations() {
        let left = vec![(n(1), n(10)), (n(2), n(10)), (n(3), n(11)), (n(4), n(12))];
        let right = vec![
            (n(10), n(20)),
            (n(10), n(21)),
            (n(12), n(22)),
            (n(13), n(23)),
        ];
        let join = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        assert_eq!(collect_pairs(join).unwrap(), compose(&left, &right));
    }

    #[test]
    fn hash_join_composes_relations() {
        let left = vec![(n(1), n(10)), (n(2), n(10)), (n(3), n(11)), (n(4), n(12))];
        let right = vec![
            (n(10), n(20)),
            (n(10), n(21)),
            (n(12), n(22)),
            (n(13), n(23)),
        ];
        let join = HashJoinOp::new(
            Box::new(MaterializedOp::new(left.clone(), Sortedness::Unsorted)),
            Box::new(MaterializedOp::new(right.clone(), Sortedness::Unsorted)),
        );
        assert_eq!(collect_pairs(join).unwrap(), compose(&left, &right));
    }

    #[test]
    fn joins_agree_on_duplicate_heavy_inputs() {
        // Many pairs sharing the same middle node exercise group handling.
        let left: Vec<Pair> = (0..20).map(|i| (n(i), n(100 + i % 3))).collect();
        let right: Vec<Pair> = (0..15).map(|i| (n(100 + i % 3), n(200 + i))).collect();
        let merge = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        let hash = HashJoinOp::new(
            Box::new(MaterializedOp::new(left.clone(), Sortedness::Unsorted)),
            Box::new(MaterializedOp::new(right.clone(), Sortedness::Unsorted)),
        );
        let expected = compose(&left, &right);
        assert_eq!(collect_pairs(merge).unwrap(), expected);
        assert_eq!(collect_pairs(hash).unwrap(), expected);
        assert_eq!(expected.len(), 20 * 5);
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let some = vec![(n(1), n(2))];
        let merge = MergeJoinOp::new(
            Box::new(by_target(vec![])),
            Box::new(by_source(some.clone())),
        );
        assert!(collect_pairs(merge).unwrap().is_empty());
        let hash = HashJoinOp::new(
            Box::new(MaterializedOp::new(some, Sortedness::Unsorted)),
            Box::new(MaterializedOp::new(vec![], Sortedness::Unsorted)),
        );
        assert!(collect_pairs(hash).unwrap().is_empty());
    }

    #[test]
    fn disjoint_keys_produce_empty_output() {
        let left = vec![(n(1), n(5)), (n(2), n(6))];
        let right = vec![(n(7), n(1)), (n(8), n(2))];
        let merge = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        assert!(collect_pairs(merge).unwrap().is_empty());
    }

    /// A stream that yields one pair, then an error, then (wrongly, like a
    /// drained backend scan would) a clean end — the shape that could trick a
    /// join into returning silently partial results on re-poll.
    struct FailingOp {
        yielded: bool,
        errored: bool,
        sortedness: Sortedness,
    }

    impl FailingOp {
        fn new(sortedness: Sortedness) -> Self {
            FailingOp {
                yielded: false,
                errored: false,
                sortedness,
            }
        }
    }

    impl PairStream for FailingOp {
        fn next_pair(&mut self) -> pathix_index::BackendResult<Option<Pair>> {
            if !self.yielded {
                self.yielded = true;
                return Ok(Some((n(1), n(10))));
            }
            if !self.errored {
                self.errored = true;
                return Err(pathix_index::BackendError::new("test", "page torn"));
            }
            Ok(None)
        }

        fn sortedness(&self) -> Sortedness {
            self.sortedness
        }
    }

    #[test]
    fn joins_stay_poisoned_after_a_backend_error() {
        // Hash join: the error hits while building the right side; polling
        // again must re-raise it, not answer from a partial hash table.
        let mut hash = HashJoinOp::new(
            Box::new(by_source(vec![(n(1), n(10)), (n(2), n(10))])),
            Box::new(FailingOp::new(Sortedness::BySource)),
        );
        let first = hash.next_pair();
        assert!(first.is_err(), "build-side error must surface");
        let second = hash.next_pair();
        assert_eq!(
            first.unwrap_err(),
            second.unwrap_err(),
            "hash join must stay poisoned"
        );

        // Merge join: the error hits while gathering the left group (the
        // operator peeks past the first tuple before emitting anything).
        let mut merge = MergeJoinOp::new(
            Box::new(FailingOp::new(Sortedness::ByTarget)),
            Box::new(by_source(vec![(n(10), n(20)), (n(10), n(21))])),
        );
        let first = merge.next_pair();
        assert!(first.is_err(), "input error must surface");
        let second = merge.next_pair();
        assert_eq!(
            first.unwrap_err(),
            second.unwrap_err(),
            "merge join must stay poisoned"
        );
    }

    #[test]
    #[should_panic(expected = "sorted by target")]
    fn merge_join_rejects_unsorted_left() {
        let _ = MergeJoinOp::new(
            Box::new(MaterializedOp::new(vec![], Sortedness::Unsorted)),
            Box::new(by_source(vec![])),
        );
    }

    #[test]
    #[should_panic(expected = "sorted by source")]
    fn merge_join_rejects_unsorted_right() {
        let _ = MergeJoinOp::new(
            Box::new(by_target(vec![])),
            Box::new(MaterializedOp::new(vec![], Sortedness::Unsorted)),
        );
    }
}
