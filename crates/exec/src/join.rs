//! Composition joins: merge join and hash join.
//!
//! Both operators compute the composition of two pair relations
//! `L ∘ R = {(x, z) | (x, y) ∈ L, (y, z) ∈ R}` — the physical counterpart of
//! the `◦` operator after a disjunct has been cut into index-sized pieces.
//!
//! Both consume their inputs batch-at-a-time through an internal batch
//! reader: the
//! merge join advances over sorted key columns with galloping (exponential
//! probe + binary search) when runs are skewed, and the hash join drains its
//! build side into a flat open-addressing table probed per left batch.

use crate::operator::{BoxedPairStream, Pair, PairStream, Sortedness};
use pathix_graph::NodeId;
use pathix_index::backend::{BackendError, BackendResult, PairBatch};

/// Which column of a batch carries the merge key for one input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum KeyCol {
    /// Keys are in the source column (right join inputs).
    Source,
    /// Keys are in the target column (left join inputs).
    Target,
}

/// First index in `keys` whose value is ≥ `key`, found by exponential probe
/// followed by binary search — O(log d) in the distance d advanced, so a long
/// non-matching run costs its logarithm instead of its length.
fn gallop_lower_bound(keys: &[NodeId], key: NodeId) -> usize {
    if keys.is_empty() || keys[0] >= key {
        return 0;
    }
    let mut hi = 1;
    while hi < keys.len() && keys[hi] < key {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(keys.len());
    lo + keys[lo..hi].partition_point(|&k| k < key)
}

/// First index in `keys` whose value is ≥ `key`, by linear scan — the
/// pre-galloping advancement, kept for benchmarking the difference.
fn linear_lower_bound(keys: &[NodeId], key: NodeId) -> usize {
    keys.iter().position(|&k| k >= key).unwrap_or(keys.len())
}

/// A buffered batch-at-a-time reader over one join input, exposing peeking,
/// key-directed skipping and whole-group extraction over the batch's sorted
/// key column.
struct BatchReader<'a> {
    input: BoxedPairStream<'a>,
    buf: PairBatch,
    pos: usize,
    done: bool,
}

impl<'a> BatchReader<'a> {
    fn new(input: BoxedPairStream<'a>) -> Self {
        BatchReader {
            input,
            buf: PairBatch::new(),
            pos: 0,
            done: false,
        }
    }

    /// Ensures at least one unconsumed buffered pair, pulling input batches
    /// as needed. Returns `false` once the input is exhausted.
    fn fill(&mut self) -> BackendResult<bool> {
        while !self.done && self.pos >= self.buf.len() {
            self.pos = 0;
            if self.input.next_batch(&mut self.buf)? == 0 {
                self.done = true;
                self.buf.clear();
            }
        }
        Ok(!self.done)
    }

    /// The next unconsumed pair, without consuming it.
    fn peek(&mut self) -> BackendResult<Option<Pair>> {
        Ok(if self.fill()? {
            Some(self.buf.get(self.pos))
        } else {
            None
        })
    }

    /// Consumes the pair last returned by a successful [`peek`](Self::peek).
    fn advance(&mut self) {
        self.pos += 1;
    }

    fn keys(&self, col: KeyCol) -> &[NodeId] {
        match col {
            KeyCol::Source => self.buf.sources(),
            KeyCol::Target => self.buf.targets(),
        }
    }

    /// Consumes every pair whose key is < `key` (the key column must be
    /// non-decreasing, which the merge join's sortedness contract provides).
    fn skip_until(&mut self, key: NodeId, col: KeyCol, gallop: bool) -> BackendResult<()> {
        while self.fill()? {
            let keys = &self.keys(col)[self.pos..];
            let off = if gallop {
                gallop_lower_bound(keys, key)
            } else {
                linear_lower_bound(keys, key)
            };
            self.pos += off;
            if self.pos < self.buf.len() {
                return Ok(());
            }
        }
        Ok(())
    }

    /// Consumes the run of pairs whose key equals `key` (positioned at its
    /// start) and appends their value column — the *other* column — to `out`.
    fn take_group(&mut self, key: NodeId, col: KeyCol, out: &mut Vec<NodeId>) -> BackendResult<()> {
        while self.fill()? {
            let end = self.pos + self.keys(col)[self.pos..].partition_point(|&k| k <= key);
            if end == self.pos {
                return Ok(());
            }
            let vals = match col {
                KeyCol::Source => self.buf.targets(),
                KeyCol::Target => self.buf.sources(),
            };
            out.extend_from_slice(&vals[self.pos..end]);
            let at_batch_end = end == self.buf.len();
            self.pos = end;
            if !at_batch_end {
                return Ok(());
            }
            // The group may continue into the next batch.
        }
        Ok(())
    }
}

/// Merge join over the shared middle node.
///
/// Requires the left input sorted by **target** and the right input sorted by
/// **source** (the planner arranges this by scanning inverse paths). This is
/// the join the paper prefers "whenever possible (to make the best use of the
/// physical sort order of the index)".
pub struct MergeJoinOp<'a> {
    left: BatchReader<'a>,
    right: BatchReader<'a>,
    gallop: bool,
    // Scratch buffers reused across matching groups — refilling must not
    // allocate per group.
    left_group: Vec<NodeId>,
    right_group: Vec<NodeId>,
    out_buf: Vec<Pair>,
    out_pos: usize,
    // A backend error is latched: polling again after an error must re-raise
    // it, never resume merging from half-advanced input cursors.
    poisoned: Option<BackendError>,
}

impl<'a> MergeJoinOp<'a> {
    /// Creates a merge join with galloping advancement. Panics if the inputs
    /// do not provide the required sort orders — the planner must only emit
    /// valid merge joins. (Input *errors* are deferred to the first pull.)
    pub fn new(left: BoxedPairStream<'a>, right: BoxedPairStream<'a>) -> Self {
        Self::with_advancement(left, right, true)
    }

    /// Creates a merge join choosing the advancement policy: galloping
    /// (`true`, the default) or linear scanning (`false`, the pre-vectorized
    /// behavior, kept for benchmarking). Both produce identical output.
    pub fn with_advancement(
        left: BoxedPairStream<'a>,
        right: BoxedPairStream<'a>,
        gallop: bool,
    ) -> Self {
        assert!(
            left.sortedness().is_by_target(),
            "merge join requires the left input sorted by target"
        );
        assert!(
            right.sortedness().is_by_source(),
            "merge join requires the right input sorted by source"
        );
        MergeJoinOp {
            left: BatchReader::new(left),
            right: BatchReader::new(right),
            gallop,
            left_group: Vec::new(),
            right_group: Vec::new(),
            out_buf: Vec::new(),
            out_pos: 0,
            poisoned: None,
        }
    }

    /// Gathers the next group of matching pairs into the reused `out_buf`.
    fn refill(&mut self) -> BackendResult<bool> {
        self.out_buf.clear();
        self.out_pos = 0;
        loop {
            let (Some(lp), Some(rp)) = (self.left.peek()?, self.right.peek()?) else {
                return Ok(false);
            };
            let (lkey, rkey) = (lp.1, rp.0);
            if lkey < rkey {
                self.left.skip_until(rkey, KeyCol::Target, self.gallop)?;
            } else if rkey < lkey {
                self.right.skip_until(lkey, KeyCol::Source, self.gallop)?;
            } else {
                // Collect the full group on both sides, then cross-product.
                self.left_group.clear();
                self.right_group.clear();
                self.left
                    .take_group(lkey, KeyCol::Target, &mut self.left_group)?;
                self.right
                    .take_group(lkey, KeyCol::Source, &mut self.right_group)?;
                self.out_buf
                    .reserve(self.left_group.len() * self.right_group.len());
                for &x in &self.left_group {
                    for &z in &self.right_group {
                        self.out_buf.push((x, z));
                    }
                }
                return Ok(true);
            }
        }
    }
}

impl PairStream for MergeJoinOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        loop {
            if self.out_pos < self.out_buf.len() {
                let pair = self.out_buf[self.out_pos];
                self.out_pos += 1;
                return Ok(Some(pair));
            }
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return Ok(None),
                Err(e) => {
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
            }
        }
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        batch.clear();
        loop {
            if self.out_pos < self.out_buf.len() {
                let take = (self.out_buf.len() - self.out_pos).min(batch.remaining_capacity());
                batch.extend_from_pairs(&self.out_buf[self.out_pos..self.out_pos + take]);
                self.out_pos += take;
                if batch.is_full() {
                    return Ok(batch.len());
                }
                continue;
            }
            match self.refill() {
                Ok(true) => {}
                Ok(false) => return Ok(batch.len()),
                Err(e) => {
                    self.poisoned = Some(e.clone());
                    return Err(e);
                }
            }
        }
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Unsorted
    }
}

/// A flat open-addressing hash table mapping middle nodes to contiguous
/// ranges of right-side targets.
///
/// All values live in one `vals` array grouped by key (a stable sort keeps
/// each key's stream order); `slots` is a power-of-two open-addressing array
/// probed by fibonacci hashing with linear stepping, holding group indices.
/// Probing touches two flat arrays instead of chasing `HashMap` buckets and
/// per-key `Vec` allocations.
#[derive(Default)]
struct FlatTable {
    /// Group index + 1 per slot; 0 marks an empty slot. Load factor ≤ ½.
    slots: Vec<u32>,
    /// `(key, start, len)` ranges into `vals`, one per distinct key.
    groups: Vec<(NodeId, u32, u32)>,
    /// All right-side targets, grouped by key, stream order within a key.
    vals: Vec<NodeId>,
}

impl FlatTable {
    fn build(mut pairs: Vec<Pair>) -> FlatTable {
        // Stable: within-key order stays the build stream's order.
        pairs.sort_by_key(|&(k, _)| k);
        let mut vals = Vec::with_capacity(pairs.len());
        let mut groups: Vec<(NodeId, u32, u32)> = Vec::new();
        for (k, v) in pairs {
            match groups.last_mut() {
                Some(g) if g.0 == k => g.2 += 1,
                _ => groups.push((k, vals.len() as u32, 1)),
            }
            vals.push(v);
        }
        let cap = (groups.len() * 2).next_power_of_two().max(8);
        let mut slots = vec![0u32; cap];
        for (i, g) in groups.iter().enumerate() {
            let mut slot = Self::hash(g.0) & (cap - 1);
            while slots[slot] != 0 {
                slot = (slot + 1) & (cap - 1);
            }
            slots[slot] = i as u32 + 1;
        }
        FlatTable {
            slots,
            groups,
            vals,
        }
    }

    fn hash(key: NodeId) -> usize {
        ((key.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) as usize
    }

    /// The `vals` range joined to `key`, if any.
    fn probe(&self, key: NodeId) -> Option<(usize, usize)> {
        if self.groups.is_empty() {
            return None;
        }
        let mask = self.slots.len() - 1;
        let mut slot = Self::hash(key) & mask;
        loop {
            match self.slots[slot] {
                0 => return None,
                g => {
                    let (k, start, len) = self.groups[(g - 1) as usize];
                    if k == key {
                        return Some((start as usize, (start + len) as usize));
                    }
                }
            }
            slot = (slot + 1) & mask;
        }
    }
}

/// Hash join over the shared middle node.
///
/// The right input is materialized into a flat open-addressing table keyed
/// by its source
/// node; the left input is streamed batch-at-a-time and probed by its target
/// node. Used whenever the merge join's sort-order requirements cannot be met
/// (e.g. when one input is an intermediate join result).
pub struct HashJoinOp<'a> {
    left: BatchReader<'a>,
    right: Option<BoxedPairStream<'a>>,
    table: FlatTable,
    // Matches of the current probe pair still to emit (resume state when an
    // output batch fills mid-probe): source node + `vals` range.
    cur_src: NodeId,
    cur_start: usize,
    cur_end: usize,
    // A backend error is latched: polling again after an error must re-raise
    // it, never stream answers computed from a partially built hash table.
    poisoned: Option<BackendError>,
}

impl<'a> HashJoinOp<'a> {
    /// Creates a hash join; the right side is built into the hash table on
    /// first use.
    pub fn new(left: BoxedPairStream<'a>, right: BoxedPairStream<'a>) -> Self {
        HashJoinOp {
            left: BatchReader::new(left),
            right: Some(right),
            table: FlatTable::default(),
            cur_src: NodeId(0),
            cur_start: 0,
            cur_end: 0,
            poisoned: None,
        }
    }

    fn ensure_built(&mut self) -> BackendResult<()> {
        if let Some(mut right) = self.right.take() {
            let mut batch = PairBatch::new();
            let mut pairs = Vec::new();
            while right.next_batch(&mut batch)? > 0 {
                pairs.extend(batch.iter());
            }
            self.table = FlatTable::build(pairs);
        }
        Ok(())
    }

    /// Moves to the next probing left pair with at least one match.
    /// Returns `false` when the left input is exhausted.
    fn next_probe(&mut self) -> BackendResult<bool> {
        loop {
            let Some((src, tgt)) = self.left.peek()? else {
                return Ok(false);
            };
            self.left.advance();
            if let Some((start, end)) = self.table.probe(tgt) {
                self.cur_src = src;
                self.cur_start = start;
                self.cur_end = end;
                return Ok(true);
            }
        }
    }

    fn next_pair_inner(&mut self) -> BackendResult<Option<Pair>> {
        self.ensure_built()?;
        loop {
            if self.cur_start < self.cur_end {
                let pair = (self.cur_src, self.table.vals[self.cur_start]);
                self.cur_start += 1;
                return Ok(Some(pair));
            }
            if !self.next_probe()? {
                return Ok(None);
            }
        }
    }

    fn next_batch_inner(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        self.ensure_built()?;
        batch.clear();
        loop {
            while self.cur_start < self.cur_end && !batch.is_full() {
                batch.push((self.cur_src, self.table.vals[self.cur_start]));
                self.cur_start += 1;
            }
            if batch.is_full() || !self.next_probe()? {
                return Ok(batch.len());
            }
        }
    }
}

impl PairStream for HashJoinOp<'_> {
    fn next_pair(&mut self) -> BackendResult<Option<Pair>> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.next_pair_inner() {
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
            ok => ok,
        }
    }

    fn next_batch(&mut self, batch: &mut PairBatch) -> BackendResult<usize> {
        if let Some(e) = &self.poisoned {
            return Err(e.clone());
        }
        match self.next_batch_inner(batch) {
            Err(e) => {
                self.poisoned = Some(e.clone());
                Err(e)
            }
            ok => ok,
        }
    }

    fn sortedness(&self) -> Sortedness {
        Sortedness::Unsorted
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::operator::collect_pairs;
    use crate::scan::MaterializedOp;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    /// Reference composition for cross-checking.
    fn compose(left: &[Pair], right: &[Pair]) -> Vec<Pair> {
        let mut out = Vec::new();
        for &(x, y) in left {
            for &(y2, z) in right {
                if y == y2 {
                    out.push((x, z));
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }

    fn by_target(mut pairs: Vec<Pair>) -> MaterializedOp {
        pairs.sort_unstable_by_key(|&(a, b)| (b, a));
        MaterializedOp::new(pairs, Sortedness::ByTarget)
    }

    fn by_source(mut pairs: Vec<Pair>) -> MaterializedOp {
        pairs.sort_unstable();
        MaterializedOp::new(pairs, Sortedness::BySource)
    }

    #[test]
    fn merge_join_composes_relations() {
        let left = vec![(n(1), n(10)), (n(2), n(10)), (n(3), n(11)), (n(4), n(12))];
        let right = vec![
            (n(10), n(20)),
            (n(10), n(21)),
            (n(12), n(22)),
            (n(13), n(23)),
        ];
        let join = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        assert_eq!(collect_pairs(join).unwrap(), compose(&left, &right));
    }

    #[test]
    fn hash_join_composes_relations() {
        let left = vec![(n(1), n(10)), (n(2), n(10)), (n(3), n(11)), (n(4), n(12))];
        let right = vec![
            (n(10), n(20)),
            (n(10), n(21)),
            (n(12), n(22)),
            (n(13), n(23)),
        ];
        let join = HashJoinOp::new(
            Box::new(MaterializedOp::new(left.clone(), Sortedness::Unsorted)),
            Box::new(MaterializedOp::new(right.clone(), Sortedness::Unsorted)),
        );
        assert_eq!(collect_pairs(join).unwrap(), compose(&left, &right));
    }

    #[test]
    fn joins_agree_on_duplicate_heavy_inputs() {
        // Many pairs sharing the same middle node exercise group handling.
        let left: Vec<Pair> = (0..20).map(|i| (n(i), n(100 + i % 3))).collect();
        let right: Vec<Pair> = (0..15).map(|i| (n(100 + i % 3), n(200 + i))).collect();
        let merge = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        let hash = HashJoinOp::new(
            Box::new(MaterializedOp::new(left.clone(), Sortedness::Unsorted)),
            Box::new(MaterializedOp::new(right.clone(), Sortedness::Unsorted)),
        );
        let expected = compose(&left, &right);
        assert_eq!(collect_pairs(merge).unwrap(), expected);
        assert_eq!(collect_pairs(hash).unwrap(), expected);
        assert_eq!(expected.len(), 20 * 5);
    }

    #[test]
    fn galloping_and_linear_advancement_agree_on_skewed_runs() {
        // One side has long runs of keys the other side never matches — the
        // workload galloping exists for. Include runs that straddle batch
        // boundaries (well over BATCH_CAPACITY pairs per key).
        let mut left: Vec<Pair> = Vec::new();
        for key in [5u32, 1000, 5000] {
            for i in 0..1500 {
                left.push((n(i), n(key)));
            }
        }
        let right: Vec<Pair> = (0..3000).map(|i| (n(2 * i), n(i))).collect();
        let expected = compose(&left, &right);
        for gallop in [false, true] {
            let join = MergeJoinOp::with_advancement(
                Box::new(by_target(left.clone())),
                Box::new(by_source(right.clone())),
                gallop,
            );
            assert_eq!(collect_pairs(join).unwrap(), expected, "gallop={gallop}");
        }
    }

    #[test]
    fn gallop_lower_bound_matches_partition_point() {
        let keys: Vec<NodeId> = [0u32, 1, 1, 3, 7, 7, 7, 8, 20, 40, 41, 42, 90]
            .iter()
            .map(|&v| n(v))
            .collect();
        for probe in 0..=100u32 {
            let expected = keys.partition_point(|&k| k < n(probe));
            assert_eq!(gallop_lower_bound(&keys, n(probe)), expected, "{probe}");
            assert_eq!(linear_lower_bound(&keys, n(probe)), expected, "{probe}");
        }
        assert_eq!(gallop_lower_bound(&[], n(1)), 0);
    }

    #[test]
    fn joins_drain_identically_pair_and_batch_wise() {
        let left: Vec<Pair> = (0..900).map(|i| (n(i), n(i % 7))).collect();
        let right: Vec<Pair> = (0..300).map(|i| (n(i % 7), n(i))).collect();
        let pair_wise = {
            let mut join = MergeJoinOp::new(
                Box::new(by_target(left.clone())),
                Box::new(by_source(right.clone())),
            );
            let mut out = Vec::new();
            while let Some(p) = join.next_pair().unwrap() {
                out.push(p);
            }
            out
        };
        let batch_wise = {
            let mut join = MergeJoinOp::new(
                Box::new(by_target(left.clone())),
                Box::new(by_source(right.clone())),
            );
            let mut out = Vec::new();
            let mut batch = PairBatch::new();
            while join.next_batch(&mut batch).unwrap() > 0 {
                out.extend(batch.iter());
            }
            out
        };
        assert_eq!(pair_wise, batch_wise);
        let hash_pair_wise = {
            let mut join = HashJoinOp::new(
                Box::new(by_target(left.clone())),
                Box::new(by_source(right.clone())),
            );
            let mut out = Vec::new();
            while let Some(p) = join.next_pair().unwrap() {
                out.push(p);
            }
            out
        };
        let hash_batch_wise = {
            let mut join = HashJoinOp::new(Box::new(by_target(left)), Box::new(by_source(right)));
            let mut out = Vec::new();
            let mut batch = PairBatch::new();
            while join.next_batch(&mut batch).unwrap() > 0 {
                out.extend(batch.iter());
            }
            out
        };
        assert_eq!(hash_pair_wise, hash_batch_wise);
    }

    #[test]
    fn empty_inputs_produce_empty_output() {
        let some = vec![(n(1), n(2))];
        let merge = MergeJoinOp::new(
            Box::new(by_target(vec![])),
            Box::new(by_source(some.clone())),
        );
        assert!(collect_pairs(merge).unwrap().is_empty());
        let hash = HashJoinOp::new(
            Box::new(MaterializedOp::new(some, Sortedness::Unsorted)),
            Box::new(MaterializedOp::new(vec![], Sortedness::Unsorted)),
        );
        assert!(collect_pairs(hash).unwrap().is_empty());
    }

    #[test]
    fn disjoint_keys_produce_empty_output() {
        let left = vec![(n(1), n(5)), (n(2), n(6))];
        let right = vec![(n(7), n(1)), (n(8), n(2))];
        let merge = MergeJoinOp::new(
            Box::new(by_target(left.clone())),
            Box::new(by_source(right.clone())),
        );
        assert!(collect_pairs(merge).unwrap().is_empty());
    }

    /// A stream that yields one pair, then an error, then (wrongly, like a
    /// drained backend scan would) a clean end — the shape that could trick a
    /// join into returning silently partial results on re-poll.
    struct FailingOp {
        yielded: bool,
        errored: bool,
        sortedness: Sortedness,
    }

    impl FailingOp {
        fn new(sortedness: Sortedness) -> Self {
            FailingOp {
                yielded: false,
                errored: false,
                sortedness,
            }
        }
    }

    impl PairStream for FailingOp {
        fn next_pair(&mut self) -> pathix_index::BackendResult<Option<Pair>> {
            if !self.yielded {
                self.yielded = true;
                return Ok(Some((n(1), n(10))));
            }
            if !self.errored {
                self.errored = true;
                return Err(pathix_index::BackendError::new("test", "page torn"));
            }
            Ok(None)
        }

        fn sortedness(&self) -> Sortedness {
            self.sortedness
        }
    }

    #[test]
    fn joins_stay_poisoned_after_a_backend_error() {
        // Hash join: the error hits while building the right side; polling
        // again must re-raise it, not answer from a partial hash table.
        let mut hash = HashJoinOp::new(
            Box::new(by_source(vec![(n(1), n(10)), (n(2), n(10))])),
            Box::new(FailingOp::new(Sortedness::BySource)),
        );
        let first = hash.next_pair();
        assert!(first.is_err(), "build-side error must surface");
        let second = hash.next_pair();
        assert_eq!(
            first.unwrap_err(),
            second.unwrap_err(),
            "hash join must stay poisoned"
        );

        // Merge join: the error hits while batching up the left input (the
        // operator buffers ahead of the first emitted pair).
        let mut merge = MergeJoinOp::new(
            Box::new(FailingOp::new(Sortedness::ByTarget)),
            Box::new(by_source(vec![(n(10), n(20)), (n(10), n(21))])),
        );
        let first = merge.next_pair();
        assert!(first.is_err(), "input error must surface");
        let second = merge.next_pair();
        assert_eq!(
            first.unwrap_err(),
            second.unwrap_err(),
            "merge join must stay poisoned"
        );
    }

    #[test]
    #[should_panic(expected = "sorted by target")]
    fn merge_join_rejects_unsorted_left() {
        let _ = MergeJoinOp::new(
            Box::new(MaterializedOp::new(vec![], Sortedness::Unsorted)),
            Box::new(by_source(vec![])),
        );
    }

    #[test]
    #[should_panic(expected = "sorted by source")]
    fn merge_join_rejects_unsorted_right() {
        let _ = MergeJoinOp::new(
            Box::new(by_target(vec![])),
            Box::new(MaterializedOp::new(vec![], Sortedness::Unsorted)),
        );
    }
}
