//! A heterogeneous social-network generator over the paper's vocabulary.
//!
//! The running example of the paper uses the labels `knows`, `worksFor` and
//! `supervisor`. This generator produces larger graphs with the same flavor:
//! people know each other (heavy-tailed), people work for companies, and a
//! sparse supervision hierarchy links people. It is used by the example
//! binaries and by tests that need a graph with semantically distinct labels
//! of very different selectivities.

use pathix_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Configuration of the social-network generator.
#[derive(Debug, Clone, Copy)]
pub struct SocialConfig {
    /// Number of people.
    pub people: usize,
    /// Number of companies.
    pub companies: usize,
    /// Average number of `knows` edges per person.
    pub knows_per_person: usize,
    /// Fraction of people that have a `supervisor` edge to another person.
    pub supervisor_fraction: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for SocialConfig {
    fn default() -> Self {
        SocialConfig {
            people: 1_000,
            companies: 50,
            knows_per_person: 8,
            supervisor_fraction: 0.3,
            seed: 0x50C1A1,
        }
    }
}

/// Generates a social network with `knows`, `worksFor` and `supervisor`
/// edges.
///
/// * every person `worksFor` exactly one company (chosen with a preference
///   for low-index, i.e. large, companies);
/// * `knows` edges connect people with a heavy-tailed popularity bias;
/// * a `supervisor_fraction` of people point to a supervisor within the same
///   company.
pub fn social_network(config: SocialConfig) -> Graph {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut builder = GraphBuilder::with_capacity(config.people * (config.knows_per_person + 2));
    for p in 0..config.people {
        builder.add_node(&format!("p{p}"));
    }
    for c in 0..config.companies {
        builder.add_node(&format!("c{c}"));
    }
    for label in ["knows", "worksFor", "supervisor"] {
        builder.add_label(label);
    }

    // worksFor: company chosen with quadratic skew toward low indices.
    let mut employer = vec![0usize; config.people];
    for (p, slot) in employer.iter_mut().enumerate() {
        let r: f64 = rng.gen::<f64>();
        let c = ((r * r) * config.companies as f64) as usize;
        let c = c.min(config.companies - 1);
        *slot = c;
        builder.add_edge_named(&format!("p{p}"), "worksFor", &format!("c{c}"));
    }

    // knows: popularity-biased directed edges between people.
    let mut seen: HashSet<(usize, usize)> = HashSet::new();
    for p in 0..config.people {
        for _ in 0..config.knows_per_person {
            // Quadratic skew toward low person indices (the "celebrities").
            let r: f64 = rng.gen::<f64>();
            let q = ((r * r) * config.people as f64) as usize;
            let q = q.min(config.people - 1);
            if p == q || !seen.insert((p, q)) {
                continue;
            }
            builder.add_edge_named(&format!("p{p}"), "knows", &format!("p{q}"));
        }
    }

    // supervisor: a fraction of people report to a colleague at the same
    // company (lower index = more senior).
    for p in 0..config.people {
        if rng.gen::<f64>() < config.supervisor_fraction {
            let company = employer[p];
            // Find a more senior colleague in the same company.
            if let Some(boss) = (0..p).rev().find(|&q| employer[q] == company) {
                builder.add_edge_named(&format!("p{boss}"), "supervisor", &format!("p{p}"));
            }
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generates_all_three_labels() {
        let g = social_network(SocialConfig {
            people: 300,
            companies: 10,
            ..Default::default()
        });
        for label in ["knows", "worksFor", "supervisor"] {
            let l = g.label_id(label).unwrap();
            assert!(g.label_edge_count(l) > 0, "missing {label} edges");
        }
        assert_eq!(g.node_count(), 310);
    }

    #[test]
    fn every_person_works_somewhere() {
        let cfg = SocialConfig {
            people: 200,
            companies: 5,
            ..Default::default()
        };
        let g = social_network(cfg);
        let works = g.label_id("worksFor").unwrap();
        assert_eq!(g.label_edge_count(works), cfg.people);
    }

    #[test]
    fn labels_have_distinct_selectivities() {
        let g = social_network(SocialConfig::default());
        let knows = g.label_edge_count(g.label_id("knows").unwrap());
        let works = g.label_edge_count(g.label_id("worksFor").unwrap());
        let sup = g.label_edge_count(g.label_id("supervisor").unwrap());
        assert!(
            knows > works,
            "knows ({knows}) should dominate worksFor ({works})"
        );
        assert!(
            works > sup,
            "worksFor ({works}) should dominate supervisor ({sup})"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let a = social_network(SocialConfig::default());
        let b = social_network(SocialConfig::default());
        assert_eq!(a.edge_count(), b.edge_count());
    }
}
