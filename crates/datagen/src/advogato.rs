//! Advogato-like trust network generator.
//!
//! Advogato (Massa et al., DASC 2009; KONECT id `advogato`) is the real-world
//! dataset used in the paper's Figure 2: **6,541 nodes and 51,127 edges**
//! whose labels are the three trust certification levels `apprentice`,
//! `journeyer` and `master`. The original download is not available in this
//! offline reproduction, so this generator produces a graph with
//!
//! * the same node count, edge count and vocabulary size (scaled by
//!   [`AdvogatoConfig::scale`]),
//! * a heavy-tailed in/out-degree distribution (discrete power law over the
//!   node ranks), matching the hub-dominated structure of the real trust
//!   network,
//! * a skewed label distribution (most certifications are at the lower trust
//!   levels, as in the real data).
//!
//! The generator is deterministic for a fixed seed and configuration.

use pathix_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Node count of the real Advogato dataset.
pub const ADVOGATO_NODES: usize = 6_541;
/// Edge count of the real Advogato dataset.
pub const ADVOGATO_EDGES: usize = 51_127;
/// The three trust levels used as edge labels.
pub const ADVOGATO_LABELS: [&str; 3] = ["apprentice", "journeyer", "master"];

/// Configuration of the Advogato-like generator.
#[derive(Debug, Clone, Copy)]
pub struct AdvogatoConfig {
    /// Scale factor applied to the real node and edge counts. `1.0` produces
    /// the full-size graph; benchmarks default to smaller scales so that
    /// k = 3 index construction stays laptop-friendly.
    pub scale: f64,
    /// Power-law exponent of the rank-based degree weights (larger values
    /// concentrate more edges on the hubs). The default of 0.6 reproduces a
    /// heavy-tailed degree distribution whose largest hubs certify a few
    /// percent of the network, as in the real data, without collapsing the
    /// graph into a single dense core.
    pub exponent: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for AdvogatoConfig {
    fn default() -> Self {
        AdvogatoConfig {
            scale: 1.0,
            exponent: 0.6,
            seed: 0xAD06A70,
        }
    }
}

impl AdvogatoConfig {
    /// A configuration scaled to `scale`, keeping the other defaults.
    pub fn scaled(scale: f64) -> Self {
        AdvogatoConfig {
            scale,
            ..Self::default()
        }
    }

    /// Number of nodes this configuration generates.
    pub fn node_count(&self) -> usize {
        ((ADVOGATO_NODES as f64) * self.scale).round().max(8.0) as usize
    }

    /// Number of edges this configuration aims to generate.
    pub fn edge_count(&self) -> usize {
        ((ADVOGATO_EDGES as f64) * self.scale).round().max(16.0) as usize
    }
}

/// Generates an Advogato-like trust network.
pub fn advogato_like(config: AdvogatoConfig) -> Graph {
    let n = config.node_count();
    let m = config.edge_count();
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Rank-based power-law weights: node i has weight (i + 1)^-exponent.
    // Cumulative weights allow O(log n) sampling by binary search.
    let sampler = PowerLawSampler::new(n, config.exponent);

    // Label skew of the real data: most certifications are at the two lower
    // trust levels.
    let label_cumulative = [0.45f64, 0.82, 1.0];

    let mut builder = GraphBuilder::with_capacity(m);
    // Intern nodes up front so node ids are 0..n in rank order (rank 0 is the
    // largest hub).
    for i in 0..n {
        builder.add_node(&format!("u{i}"));
    }
    for label in ADVOGATO_LABELS {
        builder.add_label(label);
    }

    let mut seen: HashSet<(u32, u32, u8)> = HashSet::with_capacity(m * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m * 40;
    while added < m && attempts < max_attempts {
        attempts += 1;
        let src = sampler.sample(&mut rng);
        let dst = sampler.sample(&mut rng);
        if src == dst {
            continue;
        }
        let r: f64 = rng.gen();
        let label_idx = label_cumulative.iter().position(|&c| r <= c).unwrap_or(2) as u8;
        if !seen.insert((src as u32, dst as u32, label_idx)) {
            continue;
        }
        builder.add_edge_named(
            &format!("u{src}"),
            ADVOGATO_LABELS[label_idx as usize],
            &format!("u{dst}"),
        );
        added += 1;
    }
    builder.build()
}

/// Samples node ranks from a discrete power-law distribution.
struct PowerLawSampler {
    cumulative: Vec<f64>,
}

impl PowerLawSampler {
    fn new(n: usize, exponent: f64) -> Self {
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cumulative.push(acc);
        }
        PowerLawSampler { cumulative }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().expect("non-empty sampler");
        let x: f64 = rng.gen::<f64>() * total;
        self.cumulative.partition_point(|&c| c < x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_scale_matches_published_counts() {
        let cfg = AdvogatoConfig::default();
        assert_eq!(cfg.node_count(), ADVOGATO_NODES);
        assert_eq!(cfg.edge_count(), ADVOGATO_EDGES);
    }

    #[test]
    fn small_scale_generates_requested_size() {
        let cfg = AdvogatoConfig::scaled(0.05);
        let g = advogato_like(cfg);
        assert_eq!(g.node_count(), cfg.node_count());
        assert_eq!(g.label_count(), 3);
        // Duplicate rejection can fall slightly short of the target, but the
        // generator should get within a few percent.
        let target = cfg.edge_count();
        assert!(
            g.edge_count() >= target * 95 / 100,
            "generated {} edges, wanted ≈{}",
            g.edge_count(),
            target
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = AdvogatoConfig {
            scale: 0.03,
            ..Default::default()
        };
        let a = advogato_like(cfg);
        let b = advogato_like(cfg);
        assert_eq!(a.edge_count(), b.edge_count());
        for label in a.labels() {
            let name = a.label_name(label).unwrap();
            let lb = b.label_id(name).unwrap();
            assert!(a.edges(label).eq(b.edges(lb)));
        }
    }

    #[test]
    fn different_seeds_give_different_graphs() {
        let a = advogato_like(AdvogatoConfig {
            scale: 0.03,
            seed: 1,
            ..Default::default()
        });
        let b = advogato_like(AdvogatoConfig {
            scale: 0.03,
            seed: 2,
            ..Default::default()
        });
        let same_edges = a.labels().all(|l| {
            a.edges(l)
                .eq(b.edges(b.label_id(a.label_name(l).unwrap()).unwrap()))
        });
        assert!(!same_edges);
    }

    #[test]
    fn degree_distribution_is_heavy_tailed() {
        let g = advogato_like(AdvogatoConfig::scaled(0.1));
        let mut degrees: Vec<usize> = g.nodes().map(|n| g.total_degree(n)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        let top_share: usize = degrees.iter().take(degrees.len() / 20).sum();
        let total: usize = degrees.iter().sum();
        // The top 5% of nodes should carry well over a quarter of all degree.
        assert!(
            top_share * 4 > total,
            "top-5% share {top_share} of {total} is not heavy-tailed"
        );
    }

    #[test]
    fn all_three_labels_are_used() {
        let g = advogato_like(AdvogatoConfig::scaled(0.05));
        for name in ADVOGATO_LABELS {
            let l = g.label_id(name).unwrap();
            assert!(g.label_edge_count(l) > 0, "label {name} unused");
        }
    }
}
