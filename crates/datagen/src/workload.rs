//! RPQ workload generation.
//!
//! Two kinds of workloads are provided:
//!
//! * [`advogato_queries`] — the fixed set of eight queries (A1–A8) used to
//!   reproduce Figure 2. The paper only identifies its benchmark queries as
//!   Q1…Q8 (their definitions live in the accompanying MSc thesis), so these
//!   eight cover the same structural families over the three Advogato trust
//!   labels: concatenations of increasing length, inverse steps, unions and
//!   bounded recursion. See EXPERIMENTS.md.
//! * [`WorkloadGenerator`] — random query generation over an arbitrary
//!   vocabulary, used by property tests and the scaling experiments.

use pathix_graph::Graph;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A named benchmark query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NamedQuery {
    /// Short identifier, e.g. `A3`.
    pub name: String,
    /// Query text in the `pathix-rpq` syntax.
    pub text: String,
    /// The structural family the query belongs to.
    pub family: QueryFamily,
}

/// Structural families of generated queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum QueryFamily {
    /// A plain concatenation of forward steps.
    Chain,
    /// A concatenation that mixes forward and backward steps.
    ChainWithInverse,
    /// A union of two or more chains.
    UnionOfChains,
    /// A query with bounded recursion.
    BoundedRecursion,
}

/// The eight fixed Advogato benchmark queries (A1–A8) used for Figure 2.
///
/// Labels refer to the Advogato trust levels `apprentice`, `journeyer`,
/// `master` produced by [`crate::advogato_like`].
pub fn advogato_queries() -> Vec<NamedQuery> {
    let q = |name: &str, text: &str, family| NamedQuery {
        name: name.to_owned(),
        text: text.to_owned(),
        family,
    };
    vec![
        q("A1", "journeyer/master", QueryFamily::Chain),
        q("A2", "apprentice/journeyer/master", QueryFamily::Chain),
        q(
            "A3",
            "journeyer/journeyer-/master/apprentice",
            QueryFamily::ChainWithInverse,
        ),
        q(
            "A4",
            "(journeyer/master)|(apprentice/apprentice/journeyer)",
            QueryFamily::UnionOfChains,
        ),
        q("A5", "journeyer{1,3}", QueryFamily::BoundedRecursion),
        q(
            "A6",
            "(journeyer/master){1,2}",
            QueryFamily::BoundedRecursion,
        ),
        q(
            "A7",
            "apprentice/(journeyer/master){1,2}/apprentice-",
            QueryFamily::BoundedRecursion,
        ),
        q(
            "A8",
            "master/journeyer/apprentice/journeyer/master-/apprentice",
            QueryFamily::ChainWithInverse,
        ),
    ]
}

/// Configuration of the random workload generator.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Maximum length of generated chains.
    pub max_chain_len: usize,
    /// Maximum number of branches in a union.
    pub max_union_branches: usize,
    /// Maximum upper bound used in bounded recursion.
    pub max_recursion: u32,
    /// Probability that an individual step is inverted.
    pub inverse_probability: f64,
    /// Random seed.
    pub seed: u64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            max_chain_len: 5,
            max_union_branches: 3,
            max_recursion: 3,
            inverse_probability: 0.25,
            seed: 0xC0FFEE,
        }
    }
}

/// Generates random RPQ texts over the vocabulary of a given graph.
#[derive(Debug)]
pub struct WorkloadGenerator {
    labels: Vec<String>,
    config: WorkloadConfig,
    rng: StdRng,
}

impl WorkloadGenerator {
    /// Creates a generator over the labels of `graph`.
    ///
    /// Panics if the graph has no labels.
    pub fn new(graph: &Graph, config: WorkloadConfig) -> Self {
        let labels: Vec<String> = graph.label_names().into_iter().map(str::to_owned).collect();
        assert!(!labels.is_empty(), "graph has no labels to query");
        WorkloadGenerator {
            labels,
            config,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    fn random_step(&mut self) -> String {
        let label = &self.labels[self.rng.gen_range(0..self.labels.len())];
        if self.rng.gen::<f64>() < self.config.inverse_probability {
            format!("{label}-")
        } else {
            label.clone()
        }
    }

    fn random_chain(&mut self, min_len: usize) -> String {
        let len = self
            .rng
            .gen_range(min_len..=self.config.max_chain_len.max(min_len));
        (0..len)
            .map(|_| self.random_step())
            .collect::<Vec<_>>()
            .join("/")
    }

    /// Generates one query of the given family.
    pub fn generate(&mut self, family: QueryFamily) -> String {
        match family {
            QueryFamily::Chain => {
                let len = self.rng.gen_range(1..=self.config.max_chain_len);
                (0..len)
                    .map(|_| {
                        let l = self.rng.gen_range(0..self.labels.len());
                        self.labels[l].clone()
                    })
                    .collect::<Vec<_>>()
                    .join("/")
            }
            QueryFamily::ChainWithInverse => self.random_chain(2),
            QueryFamily::UnionOfChains => {
                let branches = self
                    .rng
                    .gen_range(2..=self.config.max_union_branches.max(2));
                let parts: Vec<String> = (0..branches)
                    .map(|_| format!("({})", self.random_chain(1)))
                    .collect();
                parts.join("|")
            }
            QueryFamily::BoundedRecursion => {
                let min = self.rng.gen_range(0..=1u32);
                let max = self
                    .rng
                    .gen_range(min.max(1)..=self.config.max_recursion.max(1));
                let body = self.random_chain(1);
                format!("({body}){{{min},{max}}}")
            }
        }
    }

    /// Generates a mixed workload of `count` queries cycling through all
    /// families.
    pub fn generate_mixed(&mut self, count: usize) -> Vec<NamedQuery> {
        let families = [
            QueryFamily::Chain,
            QueryFamily::ChainWithInverse,
            QueryFamily::UnionOfChains,
            QueryFamily::BoundedRecursion,
        ];
        (0..count)
            .map(|i| {
                let family = families[i % families.len()];
                NamedQuery {
                    name: format!("W{i}"),
                    text: self.generate(family),
                    family,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::example::paper_example_graph;
    use pathix_rpq::parse;

    #[test]
    fn advogato_queries_are_eight_and_parse() {
        let queries = advogato_queries();
        assert_eq!(queries.len(), 8);
        for q in &queries {
            parse(&q.text).unwrap_or_else(|e| panic!("query {} does not parse: {e}", q.name));
        }
        // Names are unique.
        let mut names: Vec<_> = queries.iter().map(|q| q.name.clone()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), 8);
    }

    #[test]
    fn advogato_queries_cover_all_families() {
        let queries = advogato_queries();
        for family in [
            QueryFamily::Chain,
            QueryFamily::ChainWithInverse,
            QueryFamily::UnionOfChains,
            QueryFamily::BoundedRecursion,
        ] {
            assert!(
                queries.iter().any(|q| q.family == family),
                "no query of family {family:?}"
            );
        }
    }

    #[test]
    fn generated_queries_parse() {
        let g = paper_example_graph();
        let mut gen = WorkloadGenerator::new(&g, WorkloadConfig::default());
        for q in gen.generate_mixed(40) {
            parse(&q.text)
                .unwrap_or_else(|e| panic!("generated query {:?} does not parse: {e}", q.text));
        }
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let g = paper_example_graph();
        let mut a = WorkloadGenerator::new(&g, WorkloadConfig::default());
        let mut b = WorkloadGenerator::new(&g, WorkloadConfig::default());
        assert_eq!(a.generate_mixed(10), b.generate_mixed(10));
        let mut c = WorkloadGenerator::new(
            &g,
            WorkloadConfig {
                seed: 999,
                ..Default::default()
            },
        );
        assert_ne!(a.generate_mixed(10), c.generate_mixed(10));
    }

    #[test]
    fn recursion_family_produces_bounds() {
        let g = paper_example_graph();
        let mut gen = WorkloadGenerator::new(&g, WorkloadConfig::default());
        let q = gen.generate(QueryFamily::BoundedRecursion);
        assert!(
            q.contains('{') && q.contains('}'),
            "query {q:?} lacks bounds"
        );
    }
}
