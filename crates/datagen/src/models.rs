//! Classic random graph models with labeled edges.
//!
//! These are used for the scaling experiments (the MSc thesis accompanying
//! the paper evaluates synthetic datasets next to Advogato) and as generic
//! fixtures in tests.

use pathix_graph::{Graph, GraphBuilder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Generates a labeled Erdős–Rényi `G(n, m)` graph: `m` distinct directed
/// labeled edges drawn uniformly at random among `n` nodes.
///
/// `labels` must be non-empty; each edge receives a uniformly random label.
pub fn erdos_renyi(n: usize, m: usize, labels: &[&str], seed: u64) -> Graph {
    assert!(!labels.is_empty(), "at least one label is required");
    assert!(n >= 2, "at least two nodes are required");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(m);
    for i in 0..n {
        builder.add_node(&format!("v{i}"));
    }
    for label in labels {
        builder.add_label(label);
    }
    let mut seen: HashSet<(u32, u32, u8)> = HashSet::with_capacity(m * 2);
    let mut added = 0usize;
    let mut attempts = 0usize;
    let max_attempts = m.saturating_mul(50).max(1000);
    while added < m && attempts < max_attempts {
        attempts += 1;
        let src = rng.gen_range(0..n) as u32;
        let dst = rng.gen_range(0..n) as u32;
        if src == dst {
            continue;
        }
        let label_idx = rng.gen_range(0..labels.len()) as u8;
        if !seen.insert((src, dst, label_idx)) {
            continue;
        }
        builder.add_edge_named(
            &format!("v{src}"),
            labels[label_idx as usize],
            &format!("v{dst}"),
        );
        added += 1;
    }
    builder.build()
}

/// Generates a labeled Barabási–Albert preferential-attachment graph.
///
/// Nodes arrive one at a time and attach `edges_per_node` directed labeled
/// edges to already-present nodes chosen proportionally to their current
/// degree, producing the heavy-tailed degree distribution typical of social
/// and citation networks.
pub fn barabasi_albert(n: usize, edges_per_node: usize, labels: &[&str], seed: u64) -> Graph {
    assert!(!labels.is_empty(), "at least one label is required");
    assert!(n >= 2, "at least two nodes are required");
    assert!(
        edges_per_node >= 1,
        "each node must attach at least one edge"
    );
    let mut rng = StdRng::seed_from_u64(seed);
    let mut builder = GraphBuilder::with_capacity(n * edges_per_node);
    for i in 0..n {
        builder.add_node(&format!("v{i}"));
    }
    for label in labels {
        builder.add_label(label);
    }

    // `targets` holds one entry per edge endpoint, so sampling uniformly from
    // it implements degree-proportional selection.
    let mut endpoint_pool: Vec<u32> = vec![0];
    for new_node in 1..n as u32 {
        let attach = edges_per_node.min(new_node as usize);
        let mut chosen: HashSet<u32> = HashSet::with_capacity(attach);
        let mut guard = 0;
        while chosen.len() < attach && guard < attach * 30 {
            guard += 1;
            let pick = endpoint_pool[rng.gen_range(0..endpoint_pool.len())];
            if pick != new_node {
                chosen.insert(pick);
            }
        }
        for target in chosen {
            let label = labels[rng.gen_range(0..labels.len())];
            builder.add_edge_named(&format!("v{new_node}"), label, &format!("v{target}"));
            endpoint_pool.push(new_node);
            endpoint_pool.push(target);
        }
    }
    builder.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erdos_renyi_has_requested_size() {
        let g = erdos_renyi(200, 1000, &["a", "b"], 7);
        assert_eq!(g.node_count(), 200);
        assert_eq!(g.label_count(), 2);
        assert!(g.edge_count() >= 950, "got {}", g.edge_count());
        assert!(g.edge_count() <= 1000);
    }

    #[test]
    fn erdos_renyi_is_deterministic_per_seed() {
        let a = erdos_renyi(100, 400, &["x"], 42);
        let b = erdos_renyi(100, 400, &["x"], 42);
        let c = erdos_renyi(100, 400, &["x"], 43);
        let l = a.label_id("x").unwrap();
        assert!(a.edges(l).eq(b.edges(b.label_id("x").unwrap())));
        assert!(!a.edges(l).eq(c.edges(c.label_id("x").unwrap())));
    }

    #[test]
    fn erdos_renyi_has_no_self_loops() {
        let g = erdos_renyi(50, 300, &["a"], 3);
        for label in g.labels() {
            assert!(g.edges(label).all(|(s, t)| s != t));
        }
    }

    #[test]
    fn barabasi_albert_attaches_edges() {
        let g = barabasi_albert(300, 3, &["a", "b", "c"], 11);
        assert_eq!(g.node_count(), 300);
        // Each node after the first attaches up to 3 edges.
        assert!(g.edge_count() > 600);
        assert!(g.edge_count() <= 3 * 299);
    }

    #[test]
    fn barabasi_albert_is_heavy_tailed() {
        let g = barabasi_albert(500, 2, &["a"], 5);
        let mut degrees: Vec<usize> = g.nodes().map(|n| g.total_degree(n)).collect();
        degrees.sort_unstable_by(|a, b| b.cmp(a));
        // The largest hub should have far more than the median degree.
        let median = degrees[degrees.len() / 2];
        assert!(
            degrees[0] >= median * 5,
            "max {} median {}",
            degrees[0],
            median
        );
    }

    #[test]
    #[should_panic(expected = "at least one label")]
    fn empty_label_set_is_rejected() {
        let _ = erdos_renyi(10, 10, &[], 0);
    }
}
