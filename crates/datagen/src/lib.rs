//! # pathix-datagen
//!
//! Deterministic synthetic datasets and RPQ workloads for tests, examples and
//! the benchmark harness.
//!
//! The paper's evaluation uses the **Advogato** trust network (6,541 nodes,
//! 51,127 edges, three trust levels) plus synthetic datasets from the
//! accompanying MSc thesis. The real Advogato download is not available in
//! this offline reproduction, so [`advogato`] provides a generator that
//! matches its published scale, vocabulary and heavy-tailed degree shape (see
//! DESIGN.md for the substitution rationale). All generators take explicit
//! seeds and are fully deterministic.
//!
//! Modules:
//!
//! * [`example`] — the small `{knows, worksFor, supervisor}` graph used by
//!   the paper's running example.
//! * [`advogato`] — Advogato-like trust network generator.
//! * [`models`] — classic random graph models (Erdős–Rényi, Barabási–Albert).
//! * [`social`] — a person/company social network with heterogeneous labels.
//! * [`workload`] — RPQ workloads, including the eight fixed Advogato
//!   benchmark queries used to reproduce Figure 2.

pub mod advogato;
pub mod example;
pub mod models;
pub mod social;
pub mod workload;

pub use advogato::{advogato_like, AdvogatoConfig, ADVOGATO_EDGES, ADVOGATO_NODES};
pub use example::paper_example_graph;
pub use models::{barabasi_albert, erdos_renyi};
pub use social::{social_network, SocialConfig};
pub use workload::{advogato_queries, QueryFamily, WorkloadConfig, WorkloadGenerator};
