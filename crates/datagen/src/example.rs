//! The paper's running-example graph.
//!
//! Figure 1 of the paper shows a nine-person social graph over the vocabulary
//! `{supervisor, knows, worksFor}`. The figure's exact edge list is not
//! recoverable from the text of the paper, so this module builds a graph with
//! the same node set and vocabulary that satisfies the worked examples the
//! paper states explicitly:
//!
//! * `(sam, ada) ∈ paths₂(G)` via `sam ←knows− zoe −worksFor→ ada` and
//!   `sam ←knows− zoe ←knows− ada`, while `(sam, ada) ∉ paths₁(G)`
//!   (Section 2.1);
//! * `supervisor ∘ worksFor⁻ (G) = {(kim, sue)}` (Section 2.2).
//!
//! Integration tests assert these properties against the full query pipeline.

use pathix_graph::{Graph, GraphBuilder};

/// Builds the nine-node running-example graph.
///
/// Nodes: `ada, jan, joe, kim, liz, sam, sue, tim, zoe`.
/// Labels: `supervisor, knows, worksFor`.
pub fn paper_example_graph() -> Graph {
    let mut b = GraphBuilder::new();
    // Register nodes first so ids follow a stable, documented order.
    for name in [
        "ada", "jan", "joe", "kim", "liz", "sam", "sue", "tim", "zoe",
    ] {
        b.add_node(name);
    }
    // knows edges (directed "trusts/knows" statements).
    let knows = [
        ("zoe", "sam"),
        ("ada", "zoe"),
        ("jan", "ada"),
        ("joe", "jan"),
        ("tim", "joe"),
        ("kim", "tim"),
        ("liz", "sue"),
        ("sam", "tim"),
        ("jan", "kim"),
    ];
    for (s, t) in knows {
        b.add_edge_named(s, "knows", t);
    }
    // worksFor edges (person → person they work for).
    let works_for = [
        ("zoe", "ada"),
        ("sue", "liz"),
        ("tim", "kim"),
        ("joe", "kim"),
        ("sam", "jan"),
        ("jan", "joe"),
    ];
    for (s, t) in works_for {
        b.add_edge_named(s, "worksFor", t);
    }
    // The single supervisor edge: kim supervises liz. Together with
    // `sue worksFor liz` this makes supervisor ∘ worksFor⁻ = {(kim, sue)}.
    b.add_edge_named("kim", "supervisor", "liz");
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_graph::SignedLabel;

    #[test]
    fn vocabulary_and_size_match_the_figure() {
        let g = paper_example_graph();
        assert_eq!(g.node_count(), 9);
        assert_eq!(g.label_count(), 3);
        assert_eq!(g.edges(g.label_id("supervisor").unwrap()).count(), 1);
        assert_eq!(g.edges(g.label_id("knows").unwrap()).count(), 9);
        assert_eq!(g.edges(g.label_id("worksFor").unwrap()).count(), 6);
    }

    #[test]
    fn sam_ada_is_a_two_path_but_not_a_one_path() {
        let g = paper_example_graph();
        let sam = g.node_id("sam").unwrap();
        let ada = g.node_id("ada").unwrap();
        let zoe = g.node_id("zoe").unwrap();
        let knows = g.label_id("knows").unwrap();
        let works = g.label_id("worksFor").unwrap();
        // Path 1: sam ←knows− zoe −worksFor→ ada.
        assert!(g.has_edge(zoe, knows, sam));
        assert!(g.has_edge(zoe, works, ada));
        // Path 2: sam ←knows− zoe ←knows− ada.
        assert!(g.has_edge(ada, knows, zoe));
        // No direct edge between sam and ada in either direction.
        for l in g.labels() {
            assert!(!g.has_edge(sam, l, ada));
            assert!(!g.has_edge(ada, l, sam));
        }
    }

    #[test]
    fn supervisor_works_for_inverse_is_kim_sue_only() {
        let g = paper_example_graph();
        let sup = g.label_id("supervisor").unwrap();
        let works = g.label_id("worksFor").unwrap();
        // Compose by hand: x −supervisor→ y ←worksFor− z gives (x, z).
        let mut pairs = Vec::new();
        for (x, y) in g.edges(sup) {
            for z in g.neighbors(y, SignedLabel::backward(works)) {
                pairs.push((
                    g.node_name(x).unwrap().to_owned(),
                    g.node_name(z).unwrap().to_owned(),
                ));
            }
        }
        pairs.sort();
        pairs.dedup();
        assert_eq!(pairs, vec![("kim".to_owned(), "sue".to_owned())]);
    }

    #[test]
    fn construction_is_deterministic() {
        let a = paper_example_graph();
        let b = paper_example_graph();
        assert_eq!(a.node_count(), b.node_count());
        for name in ["ada", "kim", "zoe"] {
            assert_eq!(a.node_id(name), b.node_id(name));
        }
    }
}
