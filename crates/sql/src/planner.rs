//! Binding and physical planning: AST → [`PhysicalNode`].
//!
//! The planner mirrors, at the relational level, the physical decisions the
//! paper's plan generator makes over the path index:
//!
//! * every `FROM` input becomes a sequential scan (of a base table or a CTE
//!   result), qualified by its alias;
//! * single-input `WHERE` predicates are pushed down onto that scan;
//! * equality predicates across two inputs become join conditions; joins are
//!   assembled left-deep in `FROM` order;
//! * a join runs as a **merge join** when both inputs arrive sorted on their
//!   join keys (e.g. `path_index` filtered on `path = '…'` is still sorted on
//!   `(src, dst)`, so joining on `src` merges; joining on `dst` hashes) and a
//!   **hash join** otherwise.

use crate::ast::{ColumnRef, CompareOp, Operand, Predicate, Query, Select, SelectItem, SetExpr};
use crate::catalog::Catalog;
use crate::engine::SqlError;
use crate::plan::{qualify, strip_qualifier, BoundOperand, BoundPredicate, JoinKind, PhysicalNode};
use std::collections::HashMap;

/// Column name environment of a (possibly composite) plan node.
#[derive(Debug, Clone, Default)]
struct Scope {
    /// Qualified output column names in order (`alias.column`).
    columns: Vec<String>,
    /// Aliases contributing to this scope.
    aliases: Vec<String>,
}

impl Scope {
    fn resolve(&self, col: &ColumnRef) -> Result<usize, SqlError> {
        match &col.table {
            Some(alias) => {
                let name = qualify(alias, &col.column);
                self.columns
                    .iter()
                    .position(|c| c == &name)
                    .ok_or_else(|| SqlError::Plan(format!("unknown column `{}`", col.display())))
            }
            None => {
                let matches: Vec<usize> = self
                    .columns
                    .iter()
                    .enumerate()
                    .filter(|(_, c)| strip_qualifier(c) == col.column)
                    .map(|(i, _)| i)
                    .collect();
                match matches.len() {
                    0 => Err(SqlError::Plan(format!(
                        "unknown column `{}`",
                        col.display()
                    ))),
                    1 => Ok(matches[0]),
                    _ => Err(SqlError::Plan(format!(
                        "ambiguous column `{}` (qualify it with a table alias)",
                        col.display()
                    ))),
                }
            }
        }
    }

    fn has_alias_of(&self, col: &ColumnRef) -> bool {
        match &col.table {
            Some(alias) => self.aliases.iter().any(|a| a == alias),
            None => self
                .columns
                .iter()
                .any(|c| strip_qualifier(c) == col.column),
        }
    }
}

/// Plans a whole query body (CTEs are handled by the engine; `schemas` maps
/// CTE names to their column lists so scans of CTEs can be resolved).
pub fn plan_query(
    query: &Query,
    catalog: &Catalog,
    cte_schemas: &HashMap<String, Vec<String>>,
) -> Result<PhysicalNode, SqlError> {
    let (mut node, scope) = plan_set_expr(&query.body, catalog, cte_schemas)?;
    if !query.order_by.is_empty() {
        let mut keys = Vec::new();
        for (col, asc) in &query.order_by {
            keys.push((scope.resolve(col)?, *asc));
        }
        node = PhysicalNode::Sort {
            input: Box::new(node),
            keys,
        };
    }
    if let Some(limit) = query.limit {
        node = PhysicalNode::Limit {
            input: Box::new(node),
            limit,
        };
    }
    Ok(node)
}

/// Plans a set expression (used for CTE bodies), returning just the node.
pub fn plan_body(
    expr: &SetExpr,
    catalog: &Catalog,
    cte_schemas: &HashMap<String, Vec<String>>,
) -> Result<PhysicalNode, SqlError> {
    plan_set_expr(expr, catalog, cte_schemas).map(|(node, _)| node)
}

/// Plans a set expression, returning the node plus its output scope.
fn plan_set_expr(
    expr: &SetExpr,
    catalog: &Catalog,
    cte_schemas: &HashMap<String, Vec<String>>,
) -> Result<(PhysicalNode, Scope), SqlError> {
    match expr {
        SetExpr::Select(select) => plan_select(select, catalog, cte_schemas),
        SetExpr::Union { .. } => {
            let (selects, dedup) = expr.flatten_union();
            let mut nodes = Vec::new();
            let mut scope: Option<Scope> = None;
            for s in selects {
                let (node, s_scope) = plan_select(s, catalog, cte_schemas)?;
                if let Some(existing) = &scope {
                    if existing.columns.len() != s_scope.columns.len() {
                        return Err(SqlError::Plan(
                            "UNION branches have different arities".into(),
                        ));
                    }
                } else {
                    scope = Some(s_scope);
                }
                nodes.push(node);
            }
            let mut node = PhysicalNode::UnionAll { inputs: nodes };
            if dedup {
                node = PhysicalNode::Distinct {
                    input: Box::new(node),
                };
            }
            Ok((node, scope.unwrap_or_default()))
        }
    }
}

fn plan_select(
    select: &Select,
    catalog: &Catalog,
    cte_schemas: &HashMap<String, Vec<String>>,
) -> Result<(PhysicalNode, Scope), SqlError> {
    if select.from.is_empty() {
        return Err(SqlError::Plan(
            "SELECT without FROM is not supported".into(),
        ));
    }

    // Scans, with their individual scopes.
    let mut inputs: Vec<(PhysicalNode, Scope)> = Vec::new();
    for table_ref in &select.from {
        let alias = table_ref.binding_name().to_ascii_lowercase();
        let columns: Vec<String> = if let Some(cols) = cte_schemas.get(&table_ref.table) {
            cols.iter().map(|c| qualify(&alias, c)).collect()
        } else if let Some(table) = catalog.get(&table_ref.table) {
            table
                .schema()
                .columns()
                .iter()
                .map(|c| qualify(&alias, &c.name))
                .collect()
        } else {
            return Err(SqlError::Plan(format!(
                "unknown table `{}`",
                table_ref.table
            )));
        };
        let scope = Scope {
            columns,
            aliases: vec![alias.clone()],
        };
        let node = PhysicalNode::Scan {
            table: table_ref.table.clone(),
            alias,
        };
        inputs.push((node, scope));
    }

    // Classify predicates: single-input (pushed down), equi-join, residual.
    let mut pushdown: Vec<Vec<&Predicate>> = vec![Vec::new(); inputs.len()];
    let mut join_preds: Vec<&Predicate> = Vec::new();
    let mut residual: Vec<&Predicate> = Vec::new();
    for pred in &select.selection {
        match classify(pred, &inputs) {
            Classified::Single(idx) => pushdown[idx].push(pred),
            Classified::Join => join_preds.push(pred),
            Classified::Residual => residual.push(pred),
        }
    }

    // Push single-table predicates onto their scans.
    let mut planned: Vec<(PhysicalNode, Scope)> = Vec::new();
    for (idx, (node, scope)) in inputs.into_iter().enumerate() {
        let mut node = node;
        if !pushdown[idx].is_empty() {
            let predicates = pushdown[idx]
                .iter()
                .map(|p| bind_predicate(p, &scope))
                .collect::<Result<Vec<_>, _>>()?;
            node = PhysicalNode::Filter {
                input: Box::new(node),
                predicates,
            };
        }
        planned.push((node, scope));
    }

    // Left-deep joins in FROM order.
    let mut remaining_joins: Vec<&Predicate> = join_preds;
    let mut iter = planned.into_iter();
    let (mut node, mut scope) = iter.next().expect("FROM is non-empty");
    for (right_node, right_scope) in iter {
        // Join predicates connecting the current composite with this input.
        let mut left_keys = Vec::new();
        let mut right_keys = Vec::new();
        let mut used = Vec::new();
        for (i, pred) in remaining_joins.iter().enumerate() {
            if let (Operand::Column(a), CompareOp::Eq, Operand::Column(b)) =
                (&pred.left, pred.op, &pred.right)
            {
                let (l, r) = if scope.has_alias_of(a) && right_scope.has_alias_of(b) {
                    (a, b)
                } else if scope.has_alias_of(b) && right_scope.has_alias_of(a) {
                    (b, a)
                } else {
                    continue;
                };
                left_keys.push(scope.resolve(l)?);
                right_keys.push(right_scope.resolve(r)?);
                used.push(i);
            }
        }
        for i in used.into_iter().rev() {
            remaining_joins.remove(i);
        }
        let kind = if left_keys.is_empty() {
            JoinKind::Hash
        } else {
            // The executor switches to a merge join when both inputs turn out
            // to be sorted on the join keys (clustered path_index scans).
            JoinKind::Auto
        };
        node = PhysicalNode::Join {
            left: Box::new(node),
            right: Box::new(right_node),
            left_keys,
            right_keys,
            kind,
        };
        scope = Scope {
            columns: scope
                .columns
                .iter()
                .chain(right_scope.columns.iter())
                .cloned()
                .collect(),
            aliases: scope
                .aliases
                .iter()
                .chain(right_scope.aliases.iter())
                .cloned()
                .collect(),
        };
    }

    // Any join predicate that did not find its inputs (plus residual
    // predicates) is applied on top of the final join tree.
    let leftover: Vec<&Predicate> = remaining_joins.into_iter().chain(residual).collect();
    if !leftover.is_empty() {
        let predicates = leftover
            .iter()
            .map(|p| bind_predicate(p, &scope))
            .collect::<Result<Vec<_>, _>>()?;
        node = PhysicalNode::Filter {
            input: Box::new(node),
            predicates,
        };
    }

    // Projection.
    let (node, out_scope) = plan_projection(select, node, &scope)?;
    let node = if select.distinct {
        PhysicalNode::Distinct {
            input: Box::new(node),
        }
    } else {
        node
    };
    Ok((node, out_scope))
}

fn plan_projection(
    select: &Select,
    node: PhysicalNode,
    scope: &Scope,
) -> Result<(PhysicalNode, Scope), SqlError> {
    // COUNT(*) as the only projection item produces a one-column aggregate.
    if select.projection.len() == 1 {
        if let SelectItem::CountStar { alias } = &select.projection[0] {
            let name = alias.clone().unwrap_or_else(|| "count".to_owned());
            let out_scope = Scope {
                columns: vec![name.clone()],
                aliases: vec![],
            };
            return Ok((
                PhysicalNode::CountStar {
                    input: Box::new(node),
                    alias: name,
                },
                out_scope,
            ));
        }
    }

    let mut columns: Vec<(usize, String)> = Vec::new();
    for item in &select.projection {
        match item {
            SelectItem::Wildcard => {
                for (i, name) in scope.columns.iter().enumerate() {
                    columns.push((i, strip_qualifier(name).to_owned()));
                }
            }
            SelectItem::Column { column, alias } => {
                let idx = scope.resolve(column)?;
                let name = alias.clone().unwrap_or_else(|| column.column.clone());
                columns.push((idx, name));
            }
            SelectItem::CountStar { .. } => {
                return Err(SqlError::Plan(
                    "COUNT(*) cannot be mixed with other projection items".into(),
                ))
            }
        }
    }
    let out_scope = Scope {
        columns: columns.iter().map(|(_, n)| n.clone()).collect(),
        aliases: vec![],
    };
    Ok((
        PhysicalNode::Project {
            input: Box::new(node),
            columns,
        },
        out_scope,
    ))
}

enum Classified {
    Single(usize),
    Join,
    Residual,
}

fn classify(pred: &Predicate, inputs: &[(PhysicalNode, Scope)]) -> Classified {
    let columns: Vec<&ColumnRef> = [&pred.left, &pred.right]
        .iter()
        .filter_map(|o| match o {
            Operand::Column(c) => Some(c),
            Operand::Literal(_) => None,
        })
        .collect();
    if columns.is_empty() {
        return Classified::Residual;
    }
    // Which single input can see all referenced columns?
    let single = inputs
        .iter()
        .position(|(_, scope)| columns.iter().all(|c| scope.has_alias_of(c)));
    if let Some(idx) = single {
        return Classified::Single(idx);
    }
    if columns.len() == 2 && pred.op == CompareOp::Eq {
        return Classified::Join;
    }
    Classified::Residual
}

fn bind_predicate(pred: &Predicate, scope: &Scope) -> Result<BoundPredicate, SqlError> {
    let bind = |op: &Operand| -> Result<BoundOperand, SqlError> {
        Ok(match op {
            Operand::Column(c) => BoundOperand::Column(scope.resolve(c)?),
            Operand::Literal(v) => BoundOperand::Literal(v.clone()),
        })
    };
    Ok(BoundPredicate {
        left: bind(&pred.left)?,
        op: pred.op,
        right: bind(&pred.right)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Schema, Table};
    use crate::parser::parse_sql;
    use crate::plan::Bindings;

    fn catalog() -> Catalog {
        let mut pi = Table::new("path_index", Schema::new(vec!["path", "src", "dst"]));
        for (p, s, d) in [
            ("knows", 1, 2),
            ("knows", 2, 3),
            ("worksFor", 2, 9),
            ("worksFor", 3, 9),
            ("knows.worksFor", 1, 9),
            ("knows.worksFor", 2, 9),
        ] {
            pi.push(vec![p.into(), (s as u32).into(), (d as u32).into()]);
        }
        pi.cluster_by(&["path", "src", "dst"]);
        let mut c = Catalog::new();
        c.register(pi);
        c
    }

    fn run(sql: &str) -> crate::plan::Relation {
        let q = parse_sql(sql).unwrap();
        let plan = plan_query(&q, &catalog(), &HashMap::new()).unwrap();
        plan.execute(&catalog(), &Bindings::new()).unwrap()
    }

    #[test]
    fn plans_and_runs_a_join_query() {
        let rel = run("SELECT DISTINCT t1.src AS src, t2.dst AS dst \
             FROM path_index AS t1, path_index AS t2 \
             WHERE t1.path = 'knows' AND t2.path = 'worksFor' AND t1.dst = t2.src");
        assert_eq!(rel.columns, vec!["src", "dst"]);
        assert_eq!(rel.rows.len(), 2);
    }

    #[test]
    fn wildcard_order_by_limit() {
        let rel = run("SELECT * FROM path_index WHERE path = 'knows' ORDER BY src DESC LIMIT 1");
        assert_eq!(rel.columns, vec!["path", "src", "dst"]);
        assert_eq!(rel.rows.len(), 1);
        assert_eq!(rel.rows[0][1].as_int(), Some(2));
    }

    #[test]
    fn union_dedups_and_union_all_does_not() {
        let rel = run("SELECT src FROM path_index WHERE path = 'knows' \
             UNION SELECT src FROM path_index WHERE path = 'knows'");
        assert_eq!(rel.rows.len(), 2);
        let rel = run("SELECT src FROM path_index WHERE path = 'knows' \
             UNION ALL SELECT src FROM path_index WHERE path = 'knows'");
        assert_eq!(rel.rows.len(), 4);
    }

    #[test]
    fn count_star_aggregate() {
        let rel = run("SELECT COUNT(*) AS n FROM path_index WHERE path = 'knows.worksFor'");
        assert_eq!(rel.columns, vec!["n"]);
        assert_eq!(rel.rows[0][0].as_int(), Some(2));
    }

    #[test]
    fn errors_on_unknown_names_and_ambiguity() {
        let q = parse_sql("SELECT nope FROM path_index").unwrap();
        assert!(plan_query(&q, &catalog(), &HashMap::new()).is_err());
        let q = parse_sql("SELECT src FROM nope").unwrap();
        assert!(plan_query(&q, &catalog(), &HashMap::new()).is_err());
        let q = parse_sql("SELECT src FROM path_index AS a, path_index AS b WHERE a.dst = b.src")
            .unwrap();
        assert!(
            plan_query(&q, &catalog(), &HashMap::new()).is_err(),
            "ambiguous src"
        );
    }

    #[test]
    fn three_way_join_runs_left_deep() {
        let rel = run("SELECT DISTINCT t1.src AS src, t3.dst AS dst \
             FROM path_index AS t1, path_index AS t2, path_index AS t3 \
             WHERE t1.path = 'knows' AND t2.path = 'knows' AND t3.path = 'worksFor' \
               AND t1.dst = t2.src AND t2.dst = t3.src");
        // knows(1,2) ∘ knows(2,3) ∘ worksFor(3,9) = (1, 9).
        assert_eq!(rel.rows.len(), 1);
        assert_eq!(rel.rows[0][0].as_int(), Some(1));
        assert_eq!(rel.rows[0][1].as_int(), Some(9));
    }
}
