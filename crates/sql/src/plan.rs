//! Physical query plans and their evaluation.
//!
//! Plans are trees of classic relational operators — sequential scans over
//! catalog tables or CTE results, filters, projections, hash and merge
//! joins, unions, distinct, sort, limit and `COUNT(*)`. Each node evaluates
//! to a [`Relation`]: the output column names, the rows, and the prefix of
//! columns the rows are sorted by. The sortedness metadata is what carries
//! the paper's clustered-B+tree argument into the relational setting: a scan
//! of `path_index` filtered on `path = '…'` stays sorted on `(src, dst)`, so
//! a join on `src` can be a merge join; a join on `dst` cannot.

use crate::ast::CompareOp;
use crate::catalog::Catalog;
use crate::engine::SqlError;
use crate::value::{Row, Value};
use std::collections::HashMap;

/// A materialized intermediate result.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    /// Output column names (qualified like `t1.src` for scans, bare names
    /// after projection).
    pub columns: Vec<String>,
    /// The tuples.
    pub rows: Vec<Row>,
    /// Indexes of the columns the rows are currently sorted by
    /// (lexicographically); empty when the order is unknown.
    pub sorted_by: Vec<usize>,
}

impl Relation {
    /// Position of a column by exact name.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c == name)
    }
}

/// One side of a bound predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum BoundOperand {
    /// Column by output index.
    Column(usize),
    /// Constant.
    Literal(Value),
}

/// A predicate bound to column indexes of its input relation.
#[derive(Debug, Clone, PartialEq)]
pub struct BoundPredicate {
    /// Left operand.
    pub left: BoundOperand,
    /// Comparison operator.
    pub op: CompareOp,
    /// Right operand.
    pub right: BoundOperand,
}

impl BoundPredicate {
    fn eval(&self, row: &Row) -> bool {
        let lookup = |op: &BoundOperand| -> Value {
            match op {
                BoundOperand::Column(i) => row[*i].clone(),
                BoundOperand::Literal(v) => v.clone(),
            }
        };
        let left = lookup(&self.left);
        let right = lookup(&self.right);
        if left.is_null() || right.is_null() {
            return false;
        }
        let ord = left.sql_cmp(&right);
        match self.op {
            CompareOp::Eq => ord == std::cmp::Ordering::Equal,
            CompareOp::NotEq => ord != std::cmp::Ordering::Equal,
            CompareOp::Lt => ord == std::cmp::Ordering::Less,
            CompareOp::LtEq => ord != std::cmp::Ordering::Greater,
            CompareOp::Gt => ord == std::cmp::Ordering::Greater,
            CompareOp::GtEq => ord != std::cmp::Ordering::Less,
        }
    }
}

/// Join algorithm chosen by the planner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinKind {
    /// Build a hash table on the right input, probe with the left.
    Hash,
    /// Merge two inputs already sorted on their join keys.
    Merge,
    /// Decide at execution time: merge when both inputs arrive sorted on
    /// their join keys (the clustered-index case the paper exploits), hash
    /// otherwise.
    Auto,
}

/// A node of a physical plan.
#[derive(Debug, Clone)]
pub enum PhysicalNode {
    /// Scan a base table (or a CTE result registered under the same name),
    /// qualifying output columns with `alias.`.
    Scan {
        /// Table or CTE name.
        table: String,
        /// Alias used for column qualification.
        alias: String,
    },
    /// Keep rows satisfying all predicates.
    Filter {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Conjunctive predicates bound to input column indexes.
        predicates: Vec<BoundPredicate>,
    },
    /// Keep (and rename) a subset of columns.
    Project {
        /// Input node.
        input: Box<PhysicalNode>,
        /// `(input column index, output name)` pairs in output order.
        columns: Vec<(usize, String)>,
    },
    /// Equi-join two inputs (cartesian product when `left_keys` is empty).
    Join {
        /// Left input.
        left: Box<PhysicalNode>,
        /// Right input.
        right: Box<PhysicalNode>,
        /// Join key column indexes of the left input.
        left_keys: Vec<usize>,
        /// Join key column indexes of the right input.
        right_keys: Vec<usize>,
        /// Hash or merge.
        kind: JoinKind,
    },
    /// Concatenate inputs with identical arity.
    UnionAll {
        /// Inputs in order.
        inputs: Vec<PhysicalNode>,
    },
    /// Sort by all columns and drop duplicate rows.
    Distinct {
        /// Input node.
        input: Box<PhysicalNode>,
    },
    /// Sort by the given keys (`true` = ascending).
    Sort {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Sort keys.
        keys: Vec<(usize, bool)>,
    },
    /// Keep the first `limit` rows.
    Limit {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Row budget.
        limit: usize,
    },
    /// Produce a single row with the input cardinality.
    CountStar {
        /// Input node.
        input: Box<PhysicalNode>,
        /// Output column name.
        alias: String,
    },
}

/// Extra relations visible to scans besides the catalog (CTE results, and the
/// delta relation while a recursive CTE iterates).
pub type Bindings = HashMap<String, Relation>;

impl PhysicalNode {
    /// Evaluates the plan against `catalog` and `bindings`.
    pub fn execute(&self, catalog: &Catalog, bindings: &Bindings) -> Result<Relation, SqlError> {
        match self {
            PhysicalNode::Scan { table, alias } => scan(catalog, bindings, table, alias),
            PhysicalNode::Filter { input, predicates } => {
                let mut rel = input.execute(catalog, bindings)?;
                rel.rows
                    .retain(|row| predicates.iter().all(|p| p.eval(row)));
                // Filtering never perturbs the order; additionally, equality
                // against a literal pins leading sort columns, so they can be
                // peeled off the sort prefix for downstream merge joins.
                let mut sorted = rel.sorted_by.clone();
                while let Some(&first) = sorted.first() {
                    let pinned = predicates.iter().any(|p| {
                        p.op == CompareOp::Eq
                            && matches!(
                                (&p.left, &p.right),
                                (BoundOperand::Column(c), BoundOperand::Literal(_))
                                    | (BoundOperand::Literal(_), BoundOperand::Column(c))
                                    if *c == first
                            )
                    });
                    if pinned {
                        sorted.remove(0);
                    } else {
                        break;
                    }
                }
                rel.sorted_by = sorted;
                Ok(rel)
            }
            PhysicalNode::Project { input, columns } => {
                let rel = input.execute(catalog, bindings)?;
                let rows = rel
                    .rows
                    .iter()
                    .map(|row| columns.iter().map(|(i, _)| row[*i].clone()).collect())
                    .collect();
                // Sort order survives projection as long as its prefix is
                // preserved (remapped to the new positions).
                let mut sorted_by = Vec::new();
                for key in &rel.sorted_by {
                    match columns.iter().position(|(i, _)| i == key) {
                        Some(new_idx) => sorted_by.push(new_idx),
                        None => break,
                    }
                }
                Ok(Relation {
                    columns: columns.iter().map(|(_, n)| n.clone()).collect(),
                    rows,
                    sorted_by,
                })
            }
            PhysicalNode::Join {
                left,
                right,
                left_keys,
                right_keys,
                kind,
            } => {
                let left_rel = left.execute(catalog, bindings)?;
                let right_rel = right.execute(catalog, bindings)?;
                let kind = match kind {
                    JoinKind::Auto => {
                        if !left_keys.is_empty()
                            && left_rel.sorted_by.starts_with(left_keys)
                            && right_rel.sorted_by.starts_with(right_keys)
                        {
                            JoinKind::Merge
                        } else {
                            JoinKind::Hash
                        }
                    }
                    other => *other,
                };
                match kind {
                    JoinKind::Merge => Ok(merge_join(left_rel, right_rel, left_keys, right_keys)),
                    _ => Ok(hash_join(left_rel, right_rel, left_keys, right_keys)),
                }
            }
            PhysicalNode::UnionAll { inputs } => {
                let mut iter = inputs.iter();
                let first = iter
                    .next()
                    .ok_or_else(|| SqlError::Plan("UNION of zero inputs".into()))?;
                let mut out = first.execute(catalog, bindings)?;
                out.sorted_by.clear();
                for node in iter {
                    let rel = node.execute(catalog, bindings)?;
                    if rel.columns.len() != out.columns.len() {
                        return Err(SqlError::Plan(format!(
                            "UNION arity mismatch: {} vs {} columns",
                            out.columns.len(),
                            rel.columns.len()
                        )));
                    }
                    out.rows.extend(rel.rows);
                }
                Ok(out)
            }
            PhysicalNode::Distinct { input } => {
                let mut rel = input.execute(catalog, bindings)?;
                sort_rows(
                    &mut rel.rows,
                    &(0..rel.columns.len())
                        .map(|i| (i, true))
                        .collect::<Vec<_>>(),
                );
                rel.rows.dedup_by(|a, b| rows_equal(a, b));
                rel.sorted_by = (0..rel.columns.len()).collect();
                Ok(rel)
            }
            PhysicalNode::Sort { input, keys } => {
                let mut rel = input.execute(catalog, bindings)?;
                sort_rows(&mut rel.rows, keys);
                rel.sorted_by = keys
                    .iter()
                    .filter(|(_, asc)| *asc)
                    .map(|(i, _)| *i)
                    .collect();
                if keys.iter().any(|(_, asc)| !asc) {
                    rel.sorted_by.clear();
                }
                Ok(rel)
            }
            PhysicalNode::Limit { input, limit } => {
                let mut rel = input.execute(catalog, bindings)?;
                rel.rows.truncate(*limit);
                Ok(rel)
            }
            PhysicalNode::CountStar { input, alias } => {
                let rel = input.execute(catalog, bindings)?;
                Ok(Relation {
                    columns: vec![alias.clone()],
                    rows: vec![vec![Value::Int(rel.rows.len() as i64)]],
                    sorted_by: vec![],
                })
            }
        }
    }

    /// Renders the plan as an indented EXPLAIN-style tree.
    pub fn explain(&self) -> String {
        let mut out = String::new();
        self.explain_into(&mut out, 0);
        out
    }

    fn explain_into(&self, out: &mut String, depth: usize) {
        let pad = "  ".repeat(depth);
        match self {
            PhysicalNode::Scan { table, alias } => {
                out.push_str(&format!("{pad}SeqScan {table} AS {alias}\n"));
            }
            PhysicalNode::Filter { input, predicates } => {
                out.push_str(&format!("{pad}Filter ({} predicates)\n", predicates.len()));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Project { input, columns } => {
                let names: Vec<&str> = columns.iter().map(|(_, n)| n.as_str()).collect();
                out.push_str(&format!("{pad}Project [{}]\n", names.join(", ")));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Join {
                left,
                right,
                kind,
                left_keys,
                ..
            } => {
                let name = match kind {
                    JoinKind::Hash => "HashJoin",
                    JoinKind::Merge => "MergeJoin",
                    JoinKind::Auto => "Join(merge-if-sorted)",
                };
                let shape = if left_keys.is_empty() {
                    " (cartesian)"
                } else {
                    ""
                };
                out.push_str(&format!("{pad}{name}{shape}\n"));
                left.explain_into(out, depth + 1);
                right.explain_into(out, depth + 1);
            }
            PhysicalNode::UnionAll { inputs } => {
                out.push_str(&format!("{pad}UnionAll ({} inputs)\n", inputs.len()));
                for i in inputs {
                    i.explain_into(out, depth + 1);
                }
            }
            PhysicalNode::Distinct { input } => {
                out.push_str(&format!("{pad}Distinct\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Sort { input, keys } => {
                out.push_str(&format!("{pad}Sort ({} keys)\n", keys.len()));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::Limit { input, limit } => {
                out.push_str(&format!("{pad}Limit {limit}\n"));
                input.explain_into(out, depth + 1);
            }
            PhysicalNode::CountStar { input, alias } => {
                out.push_str(&format!("{pad}Aggregate COUNT(*) AS {alias}\n"));
                input.explain_into(out, depth + 1);
            }
        }
    }
}

fn scan(
    catalog: &Catalog,
    bindings: &Bindings,
    table: &str,
    alias: &str,
) -> Result<Relation, SqlError> {
    if let Some(rel) = bindings.get(table) {
        return Ok(Relation {
            columns: rel
                .columns
                .iter()
                .map(|c| qualify(alias, strip_qualifier(c)))
                .collect(),
            rows: rel.rows.clone(),
            sorted_by: rel.sorted_by.clone(),
        });
    }
    let t = catalog
        .get(table)
        .ok_or_else(|| SqlError::Plan(format!("unknown table `{table}`")))?;
    Ok(Relation {
        columns: t
            .schema()
            .columns()
            .iter()
            .map(|c| qualify(alias, &c.name))
            .collect(),
        rows: t.rows().to_vec(),
        sorted_by: t.sort_order().to_vec(),
    })
}

/// Qualifies a bare column name with an alias.
pub fn qualify(alias: &str, column: &str) -> String {
    format!("{alias}.{column}")
}

/// Strips an `alias.` qualifier, if present.
pub fn strip_qualifier(name: &str) -> &str {
    match name.rsplit_once('.') {
        Some((_, col)) => col,
        None => name,
    }
}

fn rows_equal(a: &Row, b: &Row) -> bool {
    a.len() == b.len()
        && a.iter()
            .zip(b)
            .all(|(x, y)| x.sql_cmp(y) == std::cmp::Ordering::Equal)
}

fn sort_rows(rows: &mut [Row], keys: &[(usize, bool)]) {
    rows.sort_by(|a, b| {
        for (i, asc) in keys {
            let ord = a[*i].sql_cmp(&b[*i]);
            let ord = if *asc { ord } else { ord.reverse() };
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn key_of(row: &Row, keys: &[usize]) -> Vec<Value> {
    keys.iter().map(|i| row[*i].clone()).collect()
}

fn keys_cmp(a: &[Value], b: &[Value]) -> std::cmp::Ordering {
    for (x, y) in a.iter().zip(b) {
        let ord = x.sql_cmp(y);
        if ord != std::cmp::Ordering::Equal {
            return ord;
        }
    }
    std::cmp::Ordering::Equal
}

fn joined_columns(left: &Relation, right: &Relation) -> Vec<String> {
    left.columns
        .iter()
        .chain(right.columns.iter())
        .cloned()
        .collect()
}

fn hash_join(
    left: Relation,
    right: Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let columns = joined_columns(&left, &right);
    let mut rows = Vec::new();
    if left_keys.is_empty() {
        // Cartesian product.
        for l in &left.rows {
            for r in &right.rows {
                rows.push(l.iter().chain(r.iter()).cloned().collect());
            }
        }
    } else {
        // Build on the right, probe with the left (preserves left order).
        let mut table: HashMap<String, Vec<usize>> = HashMap::new();
        for (idx, r) in right.rows.iter().enumerate() {
            let key = hash_key(&key_of(r, right_keys));
            table.entry(key).or_default().push(idx);
        }
        for l in &left.rows {
            let key = hash_key(&key_of(l, left_keys));
            if let Some(matches) = table.get(&key) {
                for &idx in matches {
                    let r = &right.rows[idx];
                    // Guard against hash-key collisions with a real compare.
                    if keys_cmp(&key_of(l, left_keys), &key_of(r, right_keys))
                        == std::cmp::Ordering::Equal
                    {
                        rows.push(l.iter().chain(r.iter()).cloned().collect());
                    }
                }
            }
        }
    }
    // Probing in left order preserves the left input's sortedness.
    Relation {
        columns,
        rows,
        sorted_by: left.sorted_by.clone(),
    }
}

fn hash_key(values: &[Value]) -> String {
    let mut s = String::new();
    for v in values {
        s.push_str(&format!("{v:?}|"));
    }
    s
}

fn merge_join(
    left: Relation,
    right: Relation,
    left_keys: &[usize],
    right_keys: &[usize],
) -> Relation {
    let columns = joined_columns(&left, &right);
    let mut rows = Vec::new();
    let mut i = 0usize;
    let mut j = 0usize;
    while i < left.rows.len() && j < right.rows.len() {
        let lk = key_of(&left.rows[i], left_keys);
        let rk = key_of(&right.rows[j], right_keys);
        match keys_cmp(&lk, &rk) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                // Find the full run of equal keys on both sides.
                let mut i_end = i + 1;
                while i_end < left.rows.len()
                    && keys_cmp(&key_of(&left.rows[i_end], left_keys), &lk)
                        == std::cmp::Ordering::Equal
                {
                    i_end += 1;
                }
                let mut j_end = j + 1;
                while j_end < right.rows.len()
                    && keys_cmp(&key_of(&right.rows[j_end], right_keys), &rk)
                        == std::cmp::Ordering::Equal
                {
                    j_end += 1;
                }
                for l in &left.rows[i..i_end] {
                    for r in &right.rows[j..j_end] {
                        rows.push(l.iter().chain(r.iter()).cloned().collect());
                    }
                }
                i = i_end;
                j = j_end;
            }
        }
    }
    Relation {
        columns,
        rows,
        sorted_by: left_keys.to_vec(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{Schema, Table};

    fn catalog_with_edges() -> Catalog {
        let mut t = Table::new("edge", Schema::new(vec!["label", "src", "dst"]));
        t.push(vec!["knows".into(), 1u32.into(), 2u32.into()]);
        t.push(vec!["knows".into(), 2u32.into(), 3u32.into()]);
        t.push(vec!["worksFor".into(), 2u32.into(), 9u32.into()]);
        t.push(vec!["worksFor".into(), 3u32.into(), 9u32.into()]);
        t.cluster_by(&["label", "src", "dst"]);
        let mut c = Catalog::new();
        c.register(t);
        c
    }

    fn scan_edge(alias: &str) -> PhysicalNode {
        PhysicalNode::Scan {
            table: "edge".into(),
            alias: alias.into(),
        }
    }

    #[test]
    fn scan_qualifies_columns_and_keeps_clustering() {
        let rel = scan_edge("e")
            .execute(&catalog_with_edges(), &Bindings::new())
            .unwrap();
        assert_eq!(rel.columns, vec!["e.label", "e.src", "e.dst"]);
        assert_eq!(rel.rows.len(), 4);
        assert_eq!(rel.sorted_by, vec![0, 1, 2]);
    }

    #[test]
    fn filter_peels_pinned_sort_columns() {
        let node = PhysicalNode::Filter {
            input: Box::new(scan_edge("e")),
            predicates: vec![BoundPredicate {
                left: BoundOperand::Column(0),
                op: CompareOp::Eq,
                right: BoundOperand::Literal("knows".into()),
            }],
        };
        let rel = node
            .execute(&catalog_with_edges(), &Bindings::new())
            .unwrap();
        assert_eq!(rel.rows.len(), 2);
        assert_eq!(rel.sorted_by, vec![1, 2], "label pinned, (src, dst) remain");
    }

    #[test]
    fn hash_and_merge_join_agree() {
        let catalog = catalog_with_edges();
        let filter = |alias: &str, label: &str| PhysicalNode::Filter {
            input: Box::new(scan_edge(alias)),
            predicates: vec![BoundPredicate {
                left: BoundOperand::Column(0),
                op: CompareOp::Eq,
                right: BoundOperand::Literal(label.into()),
            }],
        };
        let join = |kind| PhysicalNode::Join {
            left: Box::new(filter("a", "knows")),
            right: Box::new(filter("b", "worksFor")),
            left_keys: vec![2],
            right_keys: vec![1],
            kind,
        };
        let hash = join(JoinKind::Hash)
            .execute(&catalog, &Bindings::new())
            .unwrap();
        let merge = join(JoinKind::Merge)
            .execute(&catalog, &Bindings::new())
            .unwrap();
        let normalize = |rel: &Relation| {
            let mut rows = rel.rows.clone();
            sort_rows(&mut rows, &[(1, true), (5, true)]);
            rows
        };
        assert_eq!(normalize(&hash), normalize(&merge));
        assert_eq!(
            hash.rows.len(),
            2,
            "knows(1,2)->worksFor(2,9) and knows(2,3)->worksFor(3,9)"
        );
    }

    #[test]
    fn cartesian_product_when_no_keys() {
        let node = PhysicalNode::Join {
            left: Box::new(scan_edge("a")),
            right: Box::new(scan_edge("b")),
            left_keys: vec![],
            right_keys: vec![],
            kind: JoinKind::Hash,
        };
        let rel = node
            .execute(&catalog_with_edges(), &Bindings::new())
            .unwrap();
        assert_eq!(rel.rows.len(), 16);
        assert_eq!(rel.columns.len(), 6);
    }

    #[test]
    fn distinct_sort_limit_count() {
        let catalog = catalog_with_edges();
        let project_src = PhysicalNode::Project {
            input: Box::new(scan_edge("e")),
            columns: vec![(1, "src".into())],
        };
        let distinct = PhysicalNode::Distinct {
            input: Box::new(project_src.clone()),
        };
        let rel = distinct.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(rel.rows.len(), 3, "sources 1, 2, 3");

        let sorted = PhysicalNode::Sort {
            input: Box::new(project_src.clone()),
            keys: vec![(0, false)],
        };
        let rel = sorted.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(rel.rows[0][0].as_int(), Some(3));

        let limited = PhysicalNode::Limit {
            input: Box::new(sorted),
            limit: 2,
        };
        assert_eq!(
            limited
                .execute(&catalog, &Bindings::new())
                .unwrap()
                .rows
                .len(),
            2
        );

        let count = PhysicalNode::CountStar {
            input: Box::new(project_src),
            alias: "n".into(),
        };
        let rel = count.execute(&catalog, &Bindings::new()).unwrap();
        assert_eq!(rel.rows, vec![vec![Value::Int(4)]]);
    }

    #[test]
    fn bindings_shadow_catalog_tables() {
        let catalog = catalog_with_edges();
        let mut bindings = Bindings::new();
        bindings.insert(
            "edge".into(),
            Relation {
                columns: vec!["label".into(), "src".into(), "dst".into()],
                rows: vec![vec!["x".into(), 7u32.into(), 8u32.into()]],
                sorted_by: vec![],
            },
        );
        let rel = scan_edge("e").execute(&catalog, &bindings).unwrap();
        assert_eq!(rel.rows.len(), 1);
        assert_eq!(rel.columns, vec!["e.label", "e.src", "e.dst"]);
    }

    #[test]
    fn explain_renders_a_tree() {
        let node = PhysicalNode::Distinct {
            input: Box::new(PhysicalNode::Join {
                left: Box::new(scan_edge("a")),
                right: Box::new(scan_edge("b")),
                left_keys: vec![2],
                right_keys: vec![1],
                kind: JoinKind::Merge,
            }),
        };
        let text = node.explain();
        assert!(text.contains("Distinct"));
        assert!(text.contains("MergeJoin"));
        assert!(text.contains("SeqScan edge AS a"));
    }
}
