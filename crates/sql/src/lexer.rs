//! SQL tokenizer.
//!
//! Produces the token stream consumed by [`crate::parser`]. The dialect is
//! the small fragment the paper's RPQ-to-SQL translation emits (plus what the
//! recursive-view baseline needs): `SELECT` queries with joins, conjunctive
//! `WHERE` clauses, `UNION [ALL]`, `WITH [RECURSIVE]`, `ORDER BY`, `LIMIT`
//! and `COUNT(*)`.

use crate::engine::SqlError;
use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Keyword or identifier (uppercased keywords are normalized by the
    /// parser; the original text is preserved here).
    Ident(String),
    /// String literal (single quotes, `''` escapes a quote).
    StringLit(String),
    /// Integer literal.
    IntLit(i64),
    /// Float literal.
    FloatLit(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `;`
    Semicolon,
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::StringLit(s) => write!(f, "'{s}'"),
            Token::IntLit(i) => write!(f, "{i}"),
            Token::FloatLit(x) => write!(f, "{x}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::Comma => write!(f, ","),
            Token::Dot => write!(f, "."),
            Token::Star => write!(f, "*"),
            Token::Eq => write!(f, "="),
            Token::NotEq => write!(f, "<>"),
            Token::Lt => write!(f, "<"),
            Token::LtEq => write!(f, "<="),
            Token::Gt => write!(f, ">"),
            Token::GtEq => write!(f, ">="),
            Token::Semicolon => write!(f, ";"),
        }
    }
}

/// Splits `sql` into tokens.
pub fn tokenize(sql: &str) -> Result<Vec<Token>, SqlError> {
    let bytes: Vec<char> = sql.chars().collect();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '-' if bytes.get(i + 1) == Some(&'-') => {
                // Line comment.
                while i < bytes.len() && bytes[i] != '\n' {
                    i += 1;
                }
            }
            '(' => {
                tokens.push(Token::LParen);
                i += 1;
            }
            ')' => {
                tokens.push(Token::RParen);
                i += 1;
            }
            ',' => {
                tokens.push(Token::Comma);
                i += 1;
            }
            '.' => {
                tokens.push(Token::Dot);
                i += 1;
            }
            '*' => {
                tokens.push(Token::Star);
                i += 1;
            }
            ';' => {
                tokens.push(Token::Semicolon);
                i += 1;
            }
            '=' => {
                tokens.push(Token::Eq);
                i += 1;
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                tokens.push(Token::NotEq);
                i += 2;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'>') {
                    tokens.push(Token::NotEq);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::LtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    tokens.push(Token::GtEq);
                    i += 2;
                } else {
                    tokens.push(Token::Gt);
                    i += 1;
                }
            }
            '\'' => {
                // String literal with '' escaping.
                let mut s = String::new();
                i += 1;
                loop {
                    match bytes.get(i) {
                        None => return Err(SqlError::Parse("unterminated string literal".into())),
                        Some('\'') if bytes.get(i + 1) == Some(&'\'') => {
                            s.push('\'');
                            i += 2;
                        }
                        Some('\'') => {
                            i += 1;
                            break;
                        }
                        Some(&ch) => {
                            s.push(ch);
                            i += 1;
                        }
                    }
                }
                tokens.push(Token::StringLit(s));
            }
            c if c.is_ascii_digit() => {
                let start = i;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == '.') {
                    i += 1;
                }
                let text: String = bytes[start..i].iter().collect();
                if text.contains('.') {
                    let v = text.parse::<f64>().map_err(|_| {
                        SqlError::Parse(format!("malformed numeric literal `{text}`"))
                    })?;
                    tokens.push(Token::FloatLit(v));
                } else {
                    let v = text.parse::<i64>().map_err(|_| {
                        SqlError::Parse(format!("malformed integer literal `{text}`"))
                    })?;
                    tokens.push(Token::IntLit(v));
                }
            }
            c if c.is_alphabetic() || c == '_' || c == '"' => {
                // Identifier / keyword; double quotes delimit identifiers
                // with special characters (label paths like "knows.worksFor-"
                // never appear as identifiers, but aliases may be quoted).
                if c == '"' {
                    let mut s = String::new();
                    i += 1;
                    while i < bytes.len() && bytes[i] != '"' {
                        s.push(bytes[i]);
                        i += 1;
                    }
                    if i == bytes.len() {
                        return Err(SqlError::Parse("unterminated quoted identifier".into()));
                    }
                    i += 1;
                    tokens.push(Token::Ident(s));
                } else {
                    let start = i;
                    while i < bytes.len()
                        && (bytes[i].is_alphanumeric() || bytes[i] == '_' || bytes[i] == '-')
                    {
                        // A '-' is part of an identifier only when followed by
                        // an alphanumeric character (inverse-label suffixes
                        // never appear in identifiers; keep it conservative).
                        if bytes[i] == '-' {
                            break;
                        }
                        i += 1;
                    }
                    let text: String = bytes[start..i].iter().collect();
                    tokens.push(Token::Ident(text));
                }
            }
            other => {
                return Err(SqlError::Parse(format!(
                    "unexpected character `{other}` at position {i}"
                )))
            }
        }
    }
    Ok(tokens)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tokenizes_a_typical_translation() {
        let sql = "SELECT DISTINCT t1.src, t2.dst FROM path_index AS t1, path_index AS t2 \
                   WHERE t1.path = 'knows.knows' AND t2.path = 'worksFor' AND t1.dst = t2.src";
        let tokens = tokenize(sql).unwrap();
        assert!(tokens.contains(&Token::Ident("DISTINCT".into())));
        assert!(tokens.contains(&Token::StringLit("knows.knows".into())));
        assert!(tokens.contains(&Token::Eq));
        assert_eq!(tokens.iter().filter(|t| **t == Token::Comma).count(), 2);
    }

    #[test]
    fn numbers_strings_and_operators() {
        let tokens = tokenize("WHERE a >= 10 AND b < 2.5 AND c <> 'it''s'").unwrap();
        assert!(tokens.contains(&Token::GtEq));
        assert!(tokens.contains(&Token::IntLit(10)));
        assert!(tokens.contains(&Token::FloatLit(2.5)));
        assert!(tokens.contains(&Token::NotEq));
        assert!(tokens.contains(&Token::StringLit("it's".into())));
    }

    #[test]
    fn comments_and_whitespace_are_skipped() {
        let tokens = tokenize("SELECT * -- projection\nFROM t;").unwrap();
        assert_eq!(
            tokens,
            vec![
                Token::Ident("SELECT".into()),
                Token::Star,
                Token::Ident("FROM".into()),
                Token::Ident("t".into()),
                Token::Semicolon,
            ]
        );
    }

    #[test]
    fn quoted_identifiers_and_errors() {
        let tokens = tokenize("SELECT \"weird name\" FROM t").unwrap();
        assert!(tokens.contains(&Token::Ident("weird name".into())));
        assert!(tokenize("SELECT 'open").is_err());
        assert!(tokenize("SELECT \"open").is_err());
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn count_star_shape() {
        let tokens = tokenize("SELECT COUNT(*) FROM path_index").unwrap();
        assert_eq!(
            &tokens[..5],
            &[
                Token::Ident("SELECT".into()),
                Token::Ident("COUNT".into()),
                Token::LParen,
                Token::Star,
                Token::RParen,
            ]
        );
    }
}
