//! The SQL engine: parse → plan → execute, with common table expressions and
//! semi-naive evaluation of recursive CTEs.
//!
//! Recursive CTEs are what makes the engine able to play the role of
//! "approach (2)" from the paper's introduction — Datalog-style / recursive
//! SQL view evaluation of RPQs — entirely inside this repository. The
//! iteration is semi-naive: each round joins only the *delta* of the previous
//! round against the recursive term, and stops when no new rows appear.

use crate::ast::{Cte, Query, SetExpr};
use crate::catalog::{Catalog, Table};
use crate::parser::parse_sql;
use crate::plan::{Bindings, PhysicalNode, Relation};
use crate::planner::{plan_body, plan_query};
use crate::value::Row;
use std::collections::HashMap;
use std::fmt;

/// Errors produced while parsing, planning or executing SQL.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The statement text is not valid SQL (for the supported fragment).
    Parse(String),
    /// The statement references unknown tables/columns or unsupported shapes.
    Plan(String),
    /// The statement failed while executing.
    Exec(String),
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Parse(msg) => write!(f, "SQL parse error: {msg}"),
            SqlError::Plan(msg) => write!(f, "SQL planning error: {msg}"),
            SqlError::Exec(msg) => write!(f, "SQL execution error: {msg}"),
        }
    }
}

impl std::error::Error for SqlError {}

/// The result of a query: column names plus rows.
#[derive(Debug, Clone, Default)]
pub struct ResultSet {
    /// Output column names.
    pub columns: Vec<String>,
    /// Result rows.
    pub rows: Vec<Row>,
}

impl ResultSet {
    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the result has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Interprets a two-column integer result as node-id pairs, the shape
    /// every RPQ translation produces.
    pub fn as_pairs(&self) -> Vec<(u32, u32)> {
        self.rows
            .iter()
            .filter_map(|r| match (r.first(), r.get(1)) {
                (Some(a), Some(b)) => Some((a.as_int()? as u32, b.as_int()? as u32)),
                _ => None,
            })
            .collect()
    }

    /// Renders the result as an aligned text table (for the examples).
    pub fn to_table_string(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(ToString::to_string).collect())
            .collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:<w$}", c, w = widths.get(i).copied().unwrap_or(4)))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.columns.to_vec()));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in rendered {
            out.push_str(&fmt_row(&row));
            out.push('\n');
        }
        out
    }
}

/// Maximum number of semi-naive rounds before a recursive CTE is aborted
/// (defence against non-terminating recursion; far above any `n(G)` the
/// experiments reach).
const MAX_RECURSION_ROUNDS: usize = 100_000;

/// An executable SQL session: a catalog of tables plus query entry points.
#[derive(Debug, Default, Clone)]
pub struct SqlEngine {
    catalog: Catalog,
}

impl SqlEngine {
    /// Creates an engine with an empty catalog.
    pub fn new() -> Self {
        SqlEngine::default()
    }

    /// Creates an engine over an existing catalog.
    pub fn with_catalog(catalog: Catalog) -> Self {
        SqlEngine { catalog }
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, table: Table) {
        self.catalog.register(table);
    }

    /// The underlying catalog.
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }

    /// Parses, plans and executes one SQL statement.
    pub fn execute(&self, sql: &str) -> Result<ResultSet, SqlError> {
        let query = parse_sql(sql)?;
        self.execute_query(&query)
    }

    /// Returns the physical plan of a statement as EXPLAIN-style text.
    pub fn explain(&self, sql: &str) -> Result<String, SqlError> {
        let query = parse_sql(sql)?;
        let (plan, _) = self.plan_with_ctes(&query)?;
        Ok(plan.explain())
    }

    fn plan_with_ctes(
        &self,
        query: &Query,
    ) -> Result<(PhysicalNode, HashMap<String, Vec<String>>), SqlError> {
        // Only the *schemas* of the CTEs are needed to plan the main body;
        // their rows are materialized at execution time.
        let mut cte_schemas = HashMap::new();
        for cte in &query.ctes {
            cte_schemas.insert(cte.name.clone(), self.cte_columns(cte, &cte_schemas)?);
        }
        let plan = plan_query(query, &self.catalog, &cte_schemas)?;
        Ok((plan, cte_schemas))
    }

    fn execute_query(&self, query: &Query) -> Result<ResultSet, SqlError> {
        let mut bindings: Bindings = Bindings::new();
        let mut cte_schemas: HashMap<String, Vec<String>> = HashMap::new();
        for cte in &query.ctes {
            let columns = self.cte_columns(cte, &cte_schemas)?;
            cte_schemas.insert(cte.name.clone(), columns.clone());
            let relation = self.materialize_cte(cte, &columns, &cte_schemas, &bindings)?;
            bindings.insert(cte.name.clone(), relation);
        }
        let plan = plan_query(query, &self.catalog, &cte_schemas)?;
        let rel = plan.execute(&self.catalog, &bindings)?;
        Ok(ResultSet {
            columns: rel.columns,
            rows: rel.rows,
        })
    }

    /// Output column names of a CTE: the declared list, or the projection
    /// names of its (first) select block.
    fn cte_columns(
        &self,
        cte: &Cte,
        cte_schemas: &HashMap<String, Vec<String>>,
    ) -> Result<Vec<String>, SqlError> {
        if !cte.columns.is_empty() {
            return Ok(cte.columns.clone());
        }
        // Derive from the first branch by planning it against the known
        // schemas (self-references are impossible without a declared list).
        let (selects, _) = cte.body.flatten_union();
        let first = selects
            .first()
            .ok_or_else(|| SqlError::Plan(format!("CTE `{}` has an empty body", cte.name)))?;
        let body = SetExpr::Select(Box::new((*first).clone()));
        let node = plan_body(&body, &self.catalog, cte_schemas)?;
        let rel = node.execute(&self.catalog, &Bindings::new())?;
        Ok(rel.columns)
    }

    /// Evaluates a CTE body, using semi-naive iteration when it references
    /// itself.
    fn materialize_cte(
        &self,
        cte: &Cte,
        columns: &[String],
        cte_schemas: &HashMap<String, Vec<String>>,
        outer: &Bindings,
    ) -> Result<Relation, SqlError> {
        let self_referencing = set_expr_references(&cte.body, &cte.name);
        if !self_referencing {
            let node = plan_body(&cte.body, &self.catalog, cte_schemas)?;
            let rel = node.execute(&self.catalog, outer)?;
            return Ok(Relation {
                columns: columns.to_vec(),
                rows: rel.rows,
                sorted_by: rel.sorted_by,
            });
        }
        if columns.is_empty() {
            return Err(SqlError::Plan(format!(
                "recursive CTE `{}` must declare its column list",
                cte.name
            )));
        }

        // Split `base UNION [ALL] recursive*`: branches that do not mention
        // the CTE are base cases, the rest are recursive terms.
        let (selects, _) = cte.body.flatten_union();
        let mut base_nodes = Vec::new();
        let mut recursive_nodes = Vec::new();
        for s in selects {
            let body = SetExpr::Select(Box::new(s.clone()));
            let node = plan_body(&body, &self.catalog, cte_schemas)?;
            if s.from.iter().any(|t| t.table == cte.name) {
                recursive_nodes.push(node);
            } else {
                base_nodes.push(node);
            }
        }
        if base_nodes.is_empty() {
            return Err(SqlError::Plan(format!(
                "recursive CTE `{}` has no non-recursive base branch",
                cte.name
            )));
        }

        // Semi-naive fixpoint: seen = base; delta = base; iterate the
        // recursive terms over delta only.
        let mut seen: Vec<Row> = Vec::new();
        let mut seen_keys: std::collections::HashSet<String> = std::collections::HashSet::new();
        let mut delta: Vec<Row> = Vec::new();
        let mut absorb = |rows: Vec<Row>, seen: &mut Vec<Row>, delta: &mut Vec<Row>| {
            for row in rows {
                let key = format!("{row:?}");
                if seen_keys.insert(key) {
                    seen.push(row.clone());
                    delta.push(row);
                }
            }
        };
        let mut bindings = outer.clone();
        for node in &base_nodes {
            let rel = node.execute(&self.catalog, &bindings)?;
            check_arity(&cte.name, columns, &rel)?;
            absorb(rel.rows, &mut seen, &mut delta);
        }
        let mut rounds = 0usize;
        while !delta.is_empty() {
            rounds += 1;
            if rounds > MAX_RECURSION_ROUNDS {
                return Err(SqlError::Exec(format!(
                    "recursive CTE `{}` did not converge within {MAX_RECURSION_ROUNDS} rounds",
                    cte.name
                )));
            }
            // Bind the CTE name to the delta of the previous round.
            bindings.insert(
                cte.name.clone(),
                Relation {
                    columns: columns.to_vec(),
                    rows: std::mem::take(&mut delta),
                    sorted_by: vec![],
                },
            );
            let mut produced = Vec::new();
            for node in &recursive_nodes {
                let rel = node.execute(&self.catalog, &bindings)?;
                check_arity(&cte.name, columns, &rel)?;
                produced.extend(rel.rows);
            }
            absorb(produced, &mut seen, &mut delta);
        }
        Ok(Relation {
            columns: columns.to_vec(),
            rows: seen,
            sorted_by: vec![],
        })
    }
}

fn check_arity(name: &str, columns: &[String], rel: &Relation) -> Result<(), SqlError> {
    if rel.columns.len() != columns.len() {
        return Err(SqlError::Plan(format!(
            "CTE `{name}` branch produces {} columns, declared {}",
            rel.columns.len(),
            columns.len()
        )));
    }
    Ok(())
}

fn set_expr_references(expr: &SetExpr, name: &str) -> bool {
    let (selects, _) = expr.flatten_union();
    selects
        .iter()
        .any(|s| s.from.iter().any(|t| t.table == name))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::Schema;

    fn engine_with_edges() -> SqlEngine {
        let mut edge = Table::new("edge", Schema::new(vec!["label", "src", "dst"]));
        // A 5-node knows-chain 0 -> 1 -> 2 -> 3 -> 4 plus one worksFor edge.
        for i in 0..4u32 {
            edge.push(vec!["knows".into(), i.into(), (i + 1).into()]);
        }
        edge.push(vec!["worksFor".into(), 4u32.into(), 0u32.into()]);
        edge.cluster_by(&["label", "src", "dst"]);
        let mut engine = SqlEngine::new();
        engine.register(edge);
        engine
    }

    #[test]
    fn simple_select_and_count() {
        let engine = engine_with_edges();
        let rs = engine
            .execute("SELECT src, dst FROM edge WHERE label = 'knows' ORDER BY src")
            .unwrap();
        assert_eq!(rs.columns, vec!["src", "dst"]);
        assert_eq!(rs.len(), 4);
        assert_eq!(rs.as_pairs()[0], (0, 1));

        let rs = engine.execute("SELECT COUNT(*) AS n FROM edge").unwrap();
        assert_eq!(rs.rows[0][0].as_int(), Some(5));
    }

    #[test]
    fn non_recursive_cte() {
        let engine = engine_with_edges();
        let rs = engine
            .execute(
                "WITH k(src, dst) AS (SELECT src, dst FROM edge WHERE label = 'knows') \
                 SELECT a.src AS src, b.dst AS dst FROM k AS a, k AS b WHERE a.dst = b.src \
                 ORDER BY src",
            )
            .unwrap();
        // knows ∘ knows on a chain of 4 edges: 3 pairs.
        assert_eq!(rs.as_pairs(), vec![(0, 2), (1, 3), (2, 4)]);
    }

    #[test]
    fn recursive_cte_computes_transitive_closure() {
        let engine = engine_with_edges();
        let rs = engine
            .execute(
                "WITH RECURSIVE reach(src, dst) AS ( \
                   SELECT src, dst FROM edge WHERE label = 'knows' \
                   UNION \
                   SELECT r.src, e.dst FROM reach AS r, edge AS e \
                   WHERE e.label = 'knows' AND r.dst = e.src \
                 ) SELECT src, dst FROM reach ORDER BY src, dst",
            )
            .unwrap();
        // Transitive closure of a 5-node chain: 4 + 3 + 2 + 1 = 10 pairs.
        assert_eq!(rs.len(), 10);
        let pairs = rs.as_pairs();
        assert!(pairs.contains(&(0, 4)));
        assert!(pairs.contains(&(3, 4)));
        assert!(!pairs.contains(&(4, 0)), "worksFor edge must not leak in");
    }

    #[test]
    fn recursive_cte_requires_columns_and_base() {
        let engine = engine_with_edges();
        let err = engine
            .execute("WITH RECURSIVE r AS (SELECT src, dst FROM r) SELECT src FROM r")
            .unwrap_err();
        assert!(matches!(err, SqlError::Plan(_)));
    }

    #[test]
    fn explain_shows_plan_shape() {
        let engine = engine_with_edges();
        let text = engine
            .explain(
                "SELECT DISTINCT a.src, b.dst FROM edge AS a, edge AS b \
                 WHERE a.label = 'knows' AND b.label = 'knows' AND a.dst = b.src",
            )
            .unwrap();
        assert!(text.contains("SeqScan edge AS a"));
        assert!(text.contains("Join"));
        assert!(text.contains("Distinct"));
    }

    #[test]
    fn result_set_table_rendering() {
        let engine = engine_with_edges();
        let rs = engine
            .execute("SELECT src, dst FROM edge WHERE label = 'worksFor'")
            .unwrap();
        let text = rs.to_table_string();
        assert!(text.contains("src"));
        assert!(text.contains('4'));
        assert!(!rs.is_empty());
    }

    #[test]
    fn errors_are_reported_by_phase() {
        let engine = engine_with_edges();
        assert!(matches!(
            engine.execute("SELEC oops"),
            Err(SqlError::Parse(_))
        ));
        assert!(matches!(
            engine.execute("SELECT x FROM edge"),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(
            engine.execute("SELECT src FROM missing_table"),
            Err(SqlError::Plan(_))
        ));
    }
}
