//! Tables, schemas and the catalog of the relational backend.
//!
//! The paper's prototype keeps two relations in PostgreSQL:
//!
//! * `path_index(path, src, dst)` — the k-path index `I_{G,k}`, clustered by
//!   its composite B+tree key `(path, src, dst)`;
//! * `path_histogram(path, pairs, selectivity)` — the equi-depth histogram
//!   `sel_{G,k}`.
//!
//! This module provides the storage those translations run against: an
//! in-memory row store per table plus a declared **sort order**, which is what
//! lets the physical planner choose merge joins exactly where the paper's
//! plans do (the sort order stands in for the clustered B+tree).

use crate::value::{Row, Value};
use std::collections::HashMap;
use std::fmt;

/// A column of a table schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (lower-case).
    pub name: String,
}

/// An ordered list of named columns.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    columns: Vec<Column>,
}

impl Schema {
    /// Builds a schema from column names.
    pub fn new<S: Into<String>>(names: Vec<S>) -> Self {
        Schema {
            columns: names
                .into_iter()
                .map(|n| Column {
                    name: n.into().to_ascii_lowercase(),
                })
                .collect(),
        }
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// `true` when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// The columns in order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Position of `name` (case-insensitive), if present.
    pub fn index_of(&self, name: &str) -> Option<usize> {
        let lower = name.to_ascii_lowercase();
        self.columns.iter().position(|c| c.name == lower)
    }

    /// Column name at `idx`.
    pub fn name_at(&self, idx: usize) -> &str {
        &self.columns[idx].name
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.columns.iter().map(|c| c.name.as_str()).collect();
        write!(f, "({})", names.join(", "))
    }
}

/// An in-memory table: a schema, rows, and an optional declared sort order.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    schema: Schema,
    rows: Vec<Row>,
    /// Column indexes the rows are sorted by (lexicographically), if any —
    /// the relational stand-in for a clustered B+tree.
    sort_order: Vec<usize>,
}

impl Table {
    /// Creates an empty table.
    pub fn new<S: Into<String>>(name: S, schema: Schema) -> Self {
        Table {
            name: name.into().to_ascii_lowercase(),
            schema,
            rows: Vec::new(),
            sort_order: Vec::new(),
        }
    }

    /// Table name (lower-case).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The table schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The rows, in storage order.
    pub fn rows(&self) -> &[Row] {
        &self.rows
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// `true` when the table holds no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Declared sort order (column indexes), empty when unsorted.
    pub fn sort_order(&self) -> &[usize] {
        &self.sort_order
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics if the row arity does not match the schema.
    pub fn push(&mut self, row: Row) {
        assert_eq!(
            row.len(),
            self.schema.len(),
            "row arity {} does not match schema {} of table {}",
            row.len(),
            self.schema.len(),
            self.name
        );
        self.rows.push(row);
        // Any declared clustering is void once unordered inserts happen.
        self.sort_order.clear();
    }

    /// Appends many rows.
    pub fn extend(&mut self, rows: impl IntoIterator<Item = Row>) {
        for row in rows {
            self.push(row);
        }
    }

    /// Sorts the rows by the given columns and records the clustering, the
    /// relational equivalent of building the clustered B+tree the paper's
    /// prototype relies on.
    pub fn cluster_by(&mut self, columns: &[&str]) {
        let idxs: Vec<usize> = columns
            .iter()
            .map(|c| {
                self.schema.index_of(c).unwrap_or_else(|| {
                    panic!("unknown cluster column `{c}` in table {}", self.name)
                })
            })
            .collect();
        self.rows.sort_by(|a, b| {
            for &i in &idxs {
                let ord = a[i].sql_cmp(&b[i]);
                if ord != std::cmp::Ordering::Equal {
                    return ord;
                }
            }
            std::cmp::Ordering::Equal
        });
        self.sort_order = idxs;
    }

    /// Returns the distinct values of one column (used by tests/examples).
    pub fn distinct_values(&self, column: &str) -> Vec<Value> {
        let Some(idx) = self.schema.index_of(column) else {
            return Vec::new();
        };
        let mut values: Vec<Value> = self.rows.iter().map(|r| r[idx].clone()).collect();
        values.sort_by(|a, b| a.sql_cmp(b));
        values.dedup_by(|a, b| a.sql_cmp(b) == std::cmp::Ordering::Equal);
        values
    }
}

/// The set of named tables a query can reference.
#[derive(Debug, Default, Clone)]
pub struct Catalog {
    tables: HashMap<String, Table>,
}

impl Catalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Registers (or replaces) a table.
    pub fn register(&mut self, table: Table) {
        self.tables.insert(table.name().to_owned(), table);
    }

    /// Looks a table up by name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&Table> {
        self.tables.get(&name.to_ascii_lowercase())
    }

    /// Removes a table, returning it if it existed.
    pub fn remove(&mut self, name: &str) -> Option<Table> {
        self.tables.remove(&name.to_ascii_lowercase())
    }

    /// Names of all registered tables, sorted.
    pub fn table_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.tables.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of registered tables.
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// `true` when no tables are registered.
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("Edge", Schema::new(vec!["label", "src", "dst"]));
        t.push(vec!["knows".into(), 2u32.into(), 3u32.into()]);
        t.push(vec!["knows".into(), 1u32.into(), 2u32.into()]);
        t.push(vec!["worksFor".into(), 1u32.into(), 9u32.into()]);
        t
    }

    #[test]
    fn schema_lookup_is_case_insensitive() {
        let s = Schema::new(vec!["Path", "SRC", "dst"]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.index_of("path"), Some(0));
        assert_eq!(s.index_of("Src"), Some(1));
        assert_eq!(s.index_of("missing"), None);
        assert_eq!(s.name_at(2), "dst");
        assert_eq!(s.to_string(), "(path, src, dst)");
    }

    #[test]
    fn table_push_and_cluster() {
        let mut t = sample_table();
        assert_eq!(t.name(), "edge");
        assert_eq!(t.len(), 3);
        assert!(t.sort_order().is_empty());
        t.cluster_by(&["label", "src"]);
        assert_eq!(t.sort_order(), &[0, 1]);
        let first = &t.rows()[0];
        assert_eq!(
            first[1].as_int(),
            Some(1),
            "clustered order starts at knows,1"
        );
        // A later push voids the clustering.
        t.push(vec!["knows".into(), 0u32.into(), 0u32.into()]);
        assert!(t.sort_order().is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_mismatch_panics() {
        let mut t = sample_table();
        t.push(vec![Value::Int(1)]);
    }

    #[test]
    fn distinct_values_sorted() {
        let t = sample_table();
        let labels = t.distinct_values("label");
        assert_eq!(labels, vec![Value::text("knows"), Value::text("worksFor")]);
        assert!(t.distinct_values("nope").is_empty());
    }

    #[test]
    fn catalog_register_lookup_remove() {
        let mut c = Catalog::new();
        assert!(c.is_empty());
        c.register(sample_table());
        assert_eq!(c.len(), 1);
        assert!(c.get("EDGE").is_some());
        assert_eq!(c.table_names(), vec!["edge"]);
        assert!(c.remove("edge").is_some());
        assert!(c.get("edge").is_none());
    }
}
