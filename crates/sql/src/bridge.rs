//! Bridging graphs and path indexes into the relational catalog, and the
//! [`SqlPathDb`] facade that runs RPQs end-to-end through SQL.
//!
//! This reproduces the *deployment shape* of the paper's prototype: the graph
//! and the k-path index live in relational tables, RPQs are translated to SQL
//! ([`crate::translate`]) and executed by a relational engine. The native
//! pipeline in `pathix-core`/`pathix-plan` answers the same queries directly
//! over the B+tree; comparing the two is experiment **X5** in DESIGN.md.

use crate::catalog::{Schema, Table};
use crate::engine::{ResultSet, SqlEngine, SqlError};
use crate::translate::{path_string, rpq_to_path_index_sql, rpq_to_recursive_sql};
use pathix_core::PathDb;
use pathix_graph::Graph;
use pathix_index::{BackendError, KPathIndex, PathIndexBackend};
use pathix_rpq::{parse, to_disjuncts, RewriteOptions};

impl From<BackendError> for SqlError {
    fn from(e: BackendError) -> Self {
        SqlError::Exec(format!("index backend error while bridging: {e}"))
    }
}

/// Builds the `nodes(id)` table.
pub fn nodes_table(graph: &Graph) -> Table {
    let mut t = Table::new("nodes", Schema::new(vec!["id"]));
    for n in graph.nodes() {
        t.push(vec![n.0.into()]);
    }
    t.cluster_by(&["id"]);
    t
}

/// Builds the `edge(label, src, dst)` table, clustered by its natural key.
pub fn edge_table(graph: &Graph) -> Table {
    let mut t = Table::new("edge", Schema::new(vec!["label", "src", "dst"]));
    for label in graph.labels() {
        let name = graph.label_name(label).unwrap_or("unknown").to_owned();
        for (s, d) in graph.edges(label) {
            t.push(vec![name.clone().into(), s.0.into(), d.0.into()]);
        }
    }
    t.cluster_by(&["label", "src", "dst"]);
    t
}

/// Builds the `path_index(path, src, dst)` table from any
/// [`PathIndexBackend`], clustered exactly like the paper's composite B+tree
/// key. Backend scan failures surface as [`SqlError::Exec`].
pub fn path_index_table<B: PathIndexBackend + ?Sized>(
    index: &B,
    graph: &Graph,
) -> Result<Table, SqlError> {
    let mut t = Table::new("path_index", Schema::new(vec!["path", "src", "dst"]));
    for (path, _) in index.per_path_counts() {
        let text = path_string(graph, path);
        for item in index.scan_path(path)? {
            let (s, d) = item?;
            t.push(vec![text.clone().into(), s.0.into(), d.0.into()]);
        }
    }
    t.cluster_by(&["path", "src", "dst"]);
    Ok(t)
}

/// Builds the `path_histogram(path, pairs, selectivity)` table from any
/// [`PathIndexBackend`].
pub fn histogram_table<B: PathIndexBackend + ?Sized>(index: &B, graph: &Graph) -> Table {
    let mut t = Table::new(
        "path_histogram",
        Schema::new(vec!["path", "pairs", "selectivity"]),
    );
    let total = index.paths_k_size().max(1) as f64;
    for (path, count) in index.per_path_counts() {
        t.push(vec![
            path_string(graph, path).into(),
            (*count as i64).into(),
            ((*count as f64) / total).into(),
        ]);
    }
    t.cluster_by(&["path"]);
    t
}

/// An RPQ-queryable database whose storage and execution are entirely
/// relational: the paper's prototype shape.
#[derive(Debug, Clone)]
pub struct SqlPathDb {
    engine: SqlEngine,
    graph: Graph,
    k: usize,
    star_bound: u32,
    max_disjuncts: usize,
}

impl SqlPathDb {
    /// Builds the relational tables (nodes, edges, path index, histogram) for
    /// `graph` with locality `k` and loads them into a fresh SQL engine.
    pub fn build(graph: Graph, k: usize) -> Self {
        let index = KPathIndex::build(&graph, k);
        Self::from_parts(graph, &index, k)
            .expect("in-memory index scans cannot fail while bridging")
    }

    /// Builds the relational mirror of an existing [`PathDb`] (same graph,
    /// same k, same index contents) from one consistent snapshot. Works with
    /// every index backend; scan failures of disk-resident backends surface
    /// as [`SqlError::Exec`].
    pub fn from_path_db(db: &PathDb) -> Result<Self, SqlError> {
        let snapshot = db.snapshot();
        Self::from_parts(snapshot.graph().clone(), snapshot.index(), db.k())
    }

    fn from_parts<B: PathIndexBackend + ?Sized>(
        graph: Graph,
        index: &B,
        k: usize,
    ) -> Result<Self, SqlError> {
        let mut engine = SqlEngine::new();
        engine.register(nodes_table(&graph));
        engine.register(edge_table(&graph));
        engine.register(path_index_table(index, &graph)?);
        engine.register(histogram_table(index, &graph));
        Ok(SqlPathDb {
            engine,
            graph,
            k,
            star_bound: 4,
            max_disjuncts: 4096,
        })
    }

    /// Sets the bound substituted for unbounded recursion (`*`, `+`).
    pub fn with_star_bound(mut self, star_bound: u32) -> Self {
        self.star_bound = star_bound;
        self
    }

    /// The locality parameter k the index was built with.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The SQL engine (for ad-hoc queries against the bridged tables).
    pub fn engine(&self) -> &SqlEngine {
        &self.engine
    }

    /// The paper's translation of `query`: a union of joins over the
    /// `path_index` table.
    pub fn sql_for(&self, query: &str) -> Result<String, SqlError> {
        let disjuncts = self.disjuncts(query)?;
        Ok(rpq_to_path_index_sql(&self.graph, &disjuncts, self.k))
    }

    /// The recursive-view translation of `query` (approach 2), over the raw
    /// `edge` / `nodes` tables.
    pub fn recursive_sql_for(&self, query: &str) -> Result<String, SqlError> {
        let expr = parse(query)
            .map_err(|e| SqlError::Plan(format!("RPQ parse error: {e}")))?
            .bind(&self.graph)
            .map_err(|e| SqlError::Plan(format!("RPQ bind error: {e}")))?;
        Ok(rpq_to_recursive_sql(&self.graph, &expr, self.star_bound))
    }

    /// Evaluates `query` through the path-index SQL translation, returning
    /// the node-id pairs sorted by `(src, dst)`.
    pub fn query_pairs(&self, query: &str) -> Result<Vec<(u32, u32)>, SqlError> {
        let sql = self.sql_for(query)?;
        Ok(sorted_pairs(self.engine.execute(&sql)?))
    }

    /// Evaluates `query` through the recursive-view translation (approach 2),
    /// returning the node-id pairs sorted by `(src, dst)`.
    pub fn query_pairs_recursive(&self, query: &str) -> Result<Vec<(u32, u32)>, SqlError> {
        let sql = self.recursive_sql_for(query)?;
        Ok(sorted_pairs(self.engine.execute(&sql)?))
    }

    /// EXPLAIN text of the path-index translation of `query`.
    pub fn explain(&self, query: &str) -> Result<String, SqlError> {
        let sql = self.sql_for(query)?;
        self.engine.explain(&sql)
    }

    /// Runs an arbitrary SQL statement against the bridged tables.
    pub fn raw_sql(&self, sql: &str) -> Result<ResultSet, SqlError> {
        self.engine.execute(sql)
    }

    fn disjuncts(&self, query: &str) -> Result<Vec<Vec<pathix_graph::SignedLabel>>, SqlError> {
        let expr = parse(query)
            .map_err(|e| SqlError::Plan(format!("RPQ parse error: {e}")))?
            .bind(&self.graph)
            .map_err(|e| SqlError::Plan(format!("RPQ bind error: {e}")))?;
        to_disjuncts(
            &expr,
            RewriteOptions {
                star_bound: self.star_bound,
                max_disjuncts: self.max_disjuncts,
            },
        )
        .map_err(|e| SqlError::Plan(format!("RPQ rewrite error: {e}")))
    }
}

fn sorted_pairs(rs: ResultSet) -> Vec<(u32, u32)> {
    let mut pairs = rs.as_pairs();
    pairs.sort_unstable();
    pairs.dedup();
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_core::{PathDbConfig, QueryOptions, Strategy};
    use pathix_datagen::paper_example_graph;

    fn native_pairs(db: &PathDb, query: &str, strategy: Strategy) -> Vec<(u32, u32)> {
        let result = db
            .run(query, QueryOptions::with_strategy(strategy))
            .unwrap();
        let mut pairs: Vec<(u32, u32)> = result.pairs().iter().map(|&(a, b)| (a.0, b.0)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        pairs
    }

    #[test]
    fn tables_have_the_expected_shapes() {
        let g = paper_example_graph();
        let index = KPathIndex::build(&g, 2);
        assert_eq!(nodes_table(&g).len(), g.node_count());
        assert_eq!(edge_table(&g).len(), g.edge_count());
        let pi = path_index_table(&index, &g).unwrap();
        assert_eq!(pi.len() as u64, index.stats().entries as u64);
        assert_eq!(pi.sort_order(), &[0, 1, 2]);
        let hist = histogram_table(&index, &g);
        assert_eq!(hist.len(), index.per_path_counts().len());
    }

    #[test]
    fn sql_pipeline_matches_the_native_pipeline() {
        let g = paper_example_graph();
        let db = PathDb::build(g.clone(), PathDbConfig::with_k(2));
        let sql_db = SqlPathDb::from_path_db(&db).unwrap();
        for query in [
            "supervisor/worksFor-",
            "knows/knows/worksFor",
            "knows|worksFor",
            "(supervisor|worksFor|worksFor-){4,5}",
            "knows{1,3}",
            "worksFor-/worksFor",
        ] {
            let native = native_pairs(&db, query, Strategy::MinSupport);
            let via_sql = sql_db.query_pairs(query).unwrap();
            assert_eq!(via_sql, native, "query {query}");
        }
    }

    #[test]
    fn recursive_translation_matches_the_native_pipeline() {
        let g = paper_example_graph();
        // star_bound must cover n(G) for the fixpoint/native comparison.
        let db = PathDb::build(
            g.clone(),
            PathDbConfig {
                k: 2,
                star_bound: 10,
                ..PathDbConfig::default()
            },
        );
        let sql_db = SqlPathDb::from_path_db(&db).unwrap().with_star_bound(10);
        for query in ["knows{1,2}", "knows*", "supervisor/knows*", "worksFor+"] {
            let native = native_pairs(&db, query, Strategy::SemiNaive);
            let recursive = sql_db.query_pairs_recursive(query).unwrap();
            assert_eq!(recursive, native, "query {query}");
        }
    }

    #[test]
    fn explain_and_raw_sql_work() {
        let g = paper_example_graph();
        let sql_db = SqlPathDb::build(g, 2);
        let plan = sql_db.explain("knows/knows/worksFor").unwrap();
        assert!(plan.contains("path_index"));
        let rs = sql_db
            .raw_sql("SELECT COUNT(*) AS n FROM path_index")
            .unwrap();
        assert!(rs.rows[0][0].as_int().unwrap() > 0);
        assert_eq!(sql_db.k(), 2);
        assert!(sql_db.graph().node_count() > 0);
    }

    #[test]
    fn rpq_errors_surface_as_plan_errors() {
        let g = paper_example_graph();
        let sql_db = SqlPathDb::build(g, 2);
        assert!(matches!(
            sql_db.query_pairs("unknownLabel/knows"),
            Err(SqlError::Plan(_))
        ));
        assert!(matches!(sql_db.sql_for("((("), Err(SqlError::Plan(_))));
    }
}
