//! Abstract syntax of the supported SQL fragment.
//!
//! The fragment is exactly what the two translations in [`crate::translate`]
//! emit — the paper's path-index joins and the recursive-view baseline — plus
//! small conveniences (`ORDER BY`, `LIMIT`, `COUNT(*)`) that make the
//! examples and tests pleasant to write.

use crate::value::Value;

/// A reference to a column, optionally qualified by a table alias.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnRef {
    /// Table or alias qualifier (`t1` in `t1.src`), if given.
    pub table: Option<String>,
    /// Column name.
    pub column: String,
}

impl ColumnRef {
    /// Unqualified column reference.
    pub fn bare<S: Into<String>>(column: S) -> Self {
        ColumnRef {
            table: None,
            column: column.into().to_ascii_lowercase(),
        }
    }

    /// Qualified column reference.
    pub fn qualified<S: Into<String>, T: Into<String>>(table: S, column: T) -> Self {
        ColumnRef {
            table: Some(table.into().to_ascii_lowercase()),
            column: column.into().to_ascii_lowercase(),
        }
    }

    /// Renders the reference back to SQL text.
    pub fn display(&self) -> String {
        match &self.table {
            Some(t) => format!("{t}.{}", self.column),
            None => self.column.clone(),
        }
    }
}

/// One side of a comparison predicate.
#[derive(Debug, Clone, PartialEq)]
pub enum Operand {
    /// A column reference.
    Column(ColumnRef),
    /// A constant.
    Literal(Value),
}

/// Comparison operators supported in `WHERE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompareOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

/// A single comparison; `WHERE` clauses are conjunctions of these.
#[derive(Debug, Clone, PartialEq)]
pub struct Predicate {
    /// Left operand.
    pub left: Operand,
    /// Operator.
    pub op: CompareOp,
    /// Right operand.
    pub right: Operand,
}

/// An item of the `SELECT` list.
#[derive(Debug, Clone, PartialEq)]
pub enum SelectItem {
    /// `*`
    Wildcard,
    /// `COUNT(*) [AS alias]`
    CountStar {
        /// Output column name, `count` when omitted.
        alias: Option<String>,
    },
    /// `column [AS alias]`
    Column {
        /// The referenced column.
        column: ColumnRef,
        /// Output column name, the column's own name when omitted.
        alias: Option<String>,
    },
}

/// A table (or CTE) reference in `FROM`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableRef {
    /// Table or CTE name.
    pub table: String,
    /// Alias, if given (`path_index AS t1`).
    pub alias: Option<String>,
}

impl TableRef {
    /// The name other clauses use to refer to this input.
    pub fn binding_name(&self) -> &str {
        self.alias.as_deref().unwrap_or(&self.table)
    }
}

/// A single `SELECT ... FROM ... WHERE ...` block.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `SELECT DISTINCT`?
    pub distinct: bool,
    /// Projection list.
    pub projection: Vec<SelectItem>,
    /// `FROM` inputs (comma-separated and/or `JOIN`ed; joins are normalized
    /// into this list with their `ON` predicates moved into `selection`).
    pub from: Vec<TableRef>,
    /// Conjunctive `WHERE` clause (plus normalized `ON` conditions).
    pub selection: Vec<Predicate>,
}

/// A set expression: a select block or a union of them.
#[derive(Debug, Clone, PartialEq)]
pub enum SetExpr {
    /// A plain select block.
    Select(Box<Select>),
    /// `left UNION [ALL] right`.
    Union {
        /// Left input.
        left: Box<SetExpr>,
        /// Right input.
        right: Box<SetExpr>,
        /// `UNION ALL` keeps duplicates.
        all: bool,
    },
}

impl SetExpr {
    /// Flattens nested unions into the list of member select blocks together
    /// with a flag telling whether *any* union level removes duplicates.
    pub fn flatten_union(&self) -> (Vec<&Select>, bool) {
        match self {
            SetExpr::Select(s) => (vec![s.as_ref()], false),
            SetExpr::Union { left, right, all } => {
                let (mut l, l_dedup) = left.flatten_union();
                let (r, r_dedup) = right.flatten_union();
                l.extend(r);
                (l, l_dedup || r_dedup || !all)
            }
        }
    }
}

/// A common table expression.
#[derive(Debug, Clone, PartialEq)]
pub struct Cte {
    /// CTE name.
    pub name: String,
    /// Declared column names (required for recursive CTEs).
    pub columns: Vec<String>,
    /// Whether the CTE may reference itself (declared `WITH RECURSIVE`).
    pub recursive: bool,
    /// The CTE body.
    pub body: SetExpr,
}

/// A full query: optional CTEs, a set expression, ordering and limit.
#[derive(Debug, Clone, PartialEq)]
pub struct Query {
    /// `WITH [RECURSIVE]` definitions, in declaration order.
    pub ctes: Vec<Cte>,
    /// The query body.
    pub body: SetExpr,
    /// `ORDER BY` keys with ascending flags.
    pub order_by: Vec<(ColumnRef, bool)>,
    /// `LIMIT`, if given.
    pub limit: Option<usize>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_ref_display_and_case() {
        assert_eq!(ColumnRef::bare("SRC").display(), "src");
        assert_eq!(ColumnRef::qualified("T1", "Dst").display(), "t1.dst");
    }

    #[test]
    fn table_ref_binding_name() {
        let plain = TableRef {
            table: "path_index".into(),
            alias: None,
        };
        let aliased = TableRef {
            table: "path_index".into(),
            alias: Some("t1".into()),
        };
        assert_eq!(plain.binding_name(), "path_index");
        assert_eq!(aliased.binding_name(), "t1");
    }

    #[test]
    fn flatten_union_collects_all_branches() {
        let sel = |n: i64| {
            SetExpr::Select(Box::new(Select {
                distinct: false,
                projection: vec![SelectItem::Column {
                    column: ColumnRef::bare(format!("c{n}")),
                    alias: None,
                }],
                from: vec![],
                selection: vec![],
            }))
        };
        let expr = SetExpr::Union {
            left: Box::new(SetExpr::Union {
                left: Box::new(sel(1)),
                right: Box::new(sel(2)),
                all: true,
            }),
            right: Box::new(sel(3)),
            all: false,
        };
        let (selects, dedup) = expr.flatten_union();
        assert_eq!(selects.len(), 3);
        assert!(dedup, "outer UNION (not ALL) forces dedup");
    }
}
