//! # pathix-sql
//!
//! The relational backend of the reproduction: a small SQL engine (tables,
//! parser, planner, hash/merge joins, `WITH RECURSIVE`) plus the two RPQ
//! translations the paper discusses:
//!
//! * **path-index SQL** — the paper's own prototype translates each RPQ into
//!   joins over a `path_index(path, src, dst)` relation clustered like the
//!   composite B+tree key (Section 3.1 of the paper). [`SqlPathDb::query_pairs`]
//!   runs that translation end-to-end.
//! * **recursive SQL views** — approach (2) of the paper's introduction:
//!   RPQs evaluated bottom-up over the raw `edge` relation, with Kleene
//!   recursion as a `WITH RECURSIVE` fixpoint.
//!   [`SqlPathDb::query_pairs_recursive`] runs that baseline.
//!
//! The engine is deliberately small (the fragment those translations emit),
//! but it is a real engine: scans, filter pushdown, left-deep join trees,
//! merge joins when clustered order makes them possible, semi-naive
//! evaluation of recursive CTEs.
//!
//! ```
//! use pathix_datagen::paper_example_graph;
//! use pathix_sql::SqlPathDb;
//!
//! let db = SqlPathDb::build(paper_example_graph(), 2);
//! println!("{}", db.sql_for("knows/knows/worksFor").unwrap());
//! let pairs = db.query_pairs("supervisor/worksFor-").unwrap();
//! assert_eq!(pairs.len(), 1);
//! ```

pub mod ast;
pub mod bridge;
pub mod catalog;
pub mod engine;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod planner;
pub mod translate;
pub mod value;

pub use bridge::{edge_table, histogram_table, nodes_table, path_index_table, SqlPathDb};
pub use catalog::{Catalog, Column, Schema, Table};
pub use engine::{ResultSet, SqlEngine, SqlError};
pub use parser::parse_sql;
pub use plan::{JoinKind, PhysicalNode, Relation};
pub use translate::{
    chunk_disjunct, disjunct_to_sql, path_string, rpq_to_path_index_sql, rpq_to_recursive_sql,
};
pub use value::{Row, Value};
