//! Recursive-descent parser for the supported SQL fragment.
//!
//! Grammar (keywords are case-insensitive):
//!
//! ```text
//! query      := [ WITH [RECURSIVE] cte ("," cte)* ] set_expr
//!               [ ORDER BY order_key ("," order_key)* ] [ LIMIT int ]
//! cte        := ident [ "(" ident ("," ident)* ")" ] AS "(" set_expr ")"
//! set_expr   := select ( UNION [ALL] select )*
//! select     := SELECT [DISTINCT] select_item ("," select_item)*
//!               [ FROM table_ref ( "," table_ref | JOIN table_ref ON predicate (AND predicate)* )* ]
//!               [ WHERE predicate (AND predicate)* ]
//! select_item:= "*" | COUNT "(" "*" ")" [AS ident] | column [AS ident]
//! table_ref  := ident [AS ident] | "(" set_expr ")" -- subqueries are not supported
//! predicate  := operand op operand
//! operand    := column | literal
//! column     := ident [ "." ident ]
//! op         := "=" | "<>" | "<" | "<=" | ">" | ">="
//! ```

use crate::ast::{
    ColumnRef, CompareOp, Cte, Operand, Predicate, Query, Select, SelectItem, SetExpr, TableRef,
};
use crate::engine::SqlError;
use crate::lexer::{tokenize, Token};
use crate::value::Value;

/// Parses one SQL statement into a [`Query`].
pub fn parse_sql(sql: &str) -> Result<Query, SqlError> {
    let tokens = tokenize(sql)?;
    let mut parser = Parser { tokens, pos: 0 };
    let query = parser.parse_query()?;
    parser.consume_if(&Token::Semicolon);
    if !parser.at_end() {
        return Err(SqlError::Parse(format!(
            "unexpected trailing input starting at `{}`",
            parser.peek_text()
        )));
    }
    Ok(query)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos)
    }

    fn peek_text(&self) -> String {
        self.peek()
            .map(ToString::to_string)
            .unwrap_or_else(|| "<end>".into())
    }

    fn advance(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn consume_if(&mut self, token: &Token) -> bool {
        if self.peek() == Some(token) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect(&mut self, token: &Token) -> Result<(), SqlError> {
        if self.consume_if(token) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected `{token}`, found `{}`",
                self.peek_text()
            )))
        }
    }

    /// Returns `true` and consumes the next token when it is the given
    /// keyword (case-insensitive).
    fn consume_keyword(&mut self, kw: &str) -> bool {
        if let Some(Token::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(kw) {
                self.pos += 1;
                return true;
            }
        }
        false
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.consume_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::Parse(format!(
                "expected keyword `{kw}`, found `{}`",
                self.peek_text()
            )))
        }
    }

    fn peek_keyword(&self, kw: &str) -> bool {
        matches!(self.peek(), Some(Token::Ident(s)) if s.eq_ignore_ascii_case(kw))
    }

    fn expect_ident(&mut self) -> Result<String, SqlError> {
        match self.advance() {
            Some(Token::Ident(s)) => Ok(s),
            other => Err(SqlError::Parse(format!(
                "expected identifier, found `{}`",
                other
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| "<end>".into())
            ))),
        }
    }

    fn parse_query(&mut self) -> Result<Query, SqlError> {
        let mut ctes = Vec::new();
        if self.consume_keyword("WITH") {
            let recursive = self.consume_keyword("RECURSIVE");
            loop {
                ctes.push(self.parse_cte(recursive)?);
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let body = self.parse_set_expr()?;
        let mut order_by = Vec::new();
        if self.consume_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let col = self.parse_column_ref()?;
                let asc = if self.consume_keyword("DESC") {
                    false
                } else {
                    self.consume_keyword("ASC");
                    true
                };
                order_by.push((col, asc));
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
        }
        let limit = if self.consume_keyword("LIMIT") {
            match self.advance() {
                Some(Token::IntLit(n)) if n >= 0 => Some(n as usize),
                other => {
                    return Err(SqlError::Parse(format!(
                        "LIMIT expects a non-negative integer, found `{}`",
                        other
                            .map(|t| t.to_string())
                            .unwrap_or_else(|| "<end>".into())
                    )))
                }
            }
        } else {
            None
        };
        Ok(Query {
            ctes,
            body,
            order_by,
            limit,
        })
    }

    fn parse_cte(&mut self, recursive: bool) -> Result<Cte, SqlError> {
        let name = self.expect_ident()?;
        let mut columns = Vec::new();
        if self.consume_if(&Token::LParen) {
            loop {
                columns.push(self.expect_ident()?.to_ascii_lowercase());
                if !self.consume_if(&Token::Comma) {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        self.expect_keyword("AS")?;
        self.expect(&Token::LParen)?;
        let body = self.parse_set_expr()?;
        self.expect(&Token::RParen)?;
        Ok(Cte {
            name: name.to_ascii_lowercase(),
            columns,
            recursive,
            body,
        })
    }

    fn parse_set_expr(&mut self) -> Result<SetExpr, SqlError> {
        let mut left = SetExpr::Select(Box::new(self.parse_select()?));
        while self.consume_keyword("UNION") {
            let all = self.consume_keyword("ALL");
            let right = SetExpr::Select(Box::new(self.parse_select()?));
            left = SetExpr::Union {
                left: Box::new(left),
                right: Box::new(right),
                all,
            };
        }
        Ok(left)
    }

    fn parse_select(&mut self) -> Result<Select, SqlError> {
        // Allow a parenthesized select block.
        if self.consume_if(&Token::LParen) {
            let select = self.parse_select()?;
            self.expect(&Token::RParen)?;
            return Ok(select);
        }
        self.expect_keyword("SELECT")?;
        let distinct = self.consume_keyword("DISTINCT");
        let mut projection = Vec::new();
        loop {
            projection.push(self.parse_select_item()?);
            if !self.consume_if(&Token::Comma) {
                break;
            }
        }
        let mut from = Vec::new();
        let mut selection = Vec::new();
        if self.consume_keyword("FROM") {
            from.push(self.parse_table_ref()?);
            loop {
                if self.consume_if(&Token::Comma) {
                    from.push(self.parse_table_ref()?);
                    continue;
                }
                // INNER JOIN ... ON ... is normalized into from + selection.
                let inner = self.consume_keyword("INNER");
                if self.consume_keyword("JOIN") {
                    from.push(self.parse_table_ref()?);
                    self.expect_keyword("ON")?;
                    loop {
                        selection.push(self.parse_predicate()?);
                        if !self.consume_keyword("AND") {
                            break;
                        }
                    }
                    continue;
                } else if inner {
                    return Err(SqlError::Parse("expected JOIN after INNER".into()));
                }
                break;
            }
        }
        if self.consume_keyword("WHERE") {
            loop {
                selection.push(self.parse_predicate()?);
                if !self.consume_keyword("AND") {
                    break;
                }
            }
        }
        Ok(Select {
            distinct,
            projection,
            from,
            selection,
        })
    }

    fn parse_select_item(&mut self) -> Result<SelectItem, SqlError> {
        if self.consume_if(&Token::Star) {
            return Ok(SelectItem::Wildcard);
        }
        if self.peek_keyword("COUNT") {
            self.pos += 1;
            self.expect(&Token::LParen)?;
            self.expect(&Token::Star)?;
            self.expect(&Token::RParen)?;
            let alias = if self.consume_keyword("AS") {
                Some(self.expect_ident()?.to_ascii_lowercase())
            } else {
                None
            };
            return Ok(SelectItem::CountStar { alias });
        }
        let column = self.parse_column_ref()?;
        let alias = if self.consume_keyword("AS") {
            Some(self.expect_ident()?.to_ascii_lowercase())
        } else {
            None
        };
        Ok(SelectItem::Column { column, alias })
    }

    fn parse_table_ref(&mut self) -> Result<TableRef, SqlError> {
        let table = self.expect_ident()?.to_ascii_lowercase();
        // Reject keywords that indicate a missing table name.
        for kw in ["where", "join", "union", "order", "limit", "on", "inner"] {
            if table == kw {
                return Err(SqlError::Parse(format!(
                    "expected table name, found keyword `{kw}`"
                )));
            }
        }
        let alias = if self.consume_keyword("AS") {
            Some(self.expect_ident()?.to_ascii_lowercase())
        } else {
            match self.peek() {
                // Bare alias (no AS) as long as it is not a clause keyword.
                Some(Token::Ident(s))
                    if ![
                        "where", "join", "union", "order", "limit", "on", "inner", "as",
                    ]
                    .contains(&s.to_ascii_lowercase().as_str()) =>
                {
                    Some(self.expect_ident()?.to_ascii_lowercase())
                }
                _ => None,
            }
        };
        Ok(TableRef { table, alias })
    }

    fn parse_predicate(&mut self) -> Result<Predicate, SqlError> {
        let left = self.parse_operand()?;
        let op = match self.advance() {
            Some(Token::Eq) => CompareOp::Eq,
            Some(Token::NotEq) => CompareOp::NotEq,
            Some(Token::Lt) => CompareOp::Lt,
            Some(Token::LtEq) => CompareOp::LtEq,
            Some(Token::Gt) => CompareOp::Gt,
            Some(Token::GtEq) => CompareOp::GtEq,
            other => {
                return Err(SqlError::Parse(format!(
                    "expected comparison operator, found `{}`",
                    other
                        .map(|t| t.to_string())
                        .unwrap_or_else(|| "<end>".into())
                )))
            }
        };
        let right = self.parse_operand()?;
        Ok(Predicate { left, op, right })
    }

    fn parse_operand(&mut self) -> Result<Operand, SqlError> {
        match self.peek() {
            Some(Token::StringLit(_)) => {
                let Some(Token::StringLit(s)) = self.advance() else {
                    unreachable!()
                };
                Ok(Operand::Literal(Value::Text(s)))
            }
            Some(Token::IntLit(_)) => {
                let Some(Token::IntLit(i)) = self.advance() else {
                    unreachable!()
                };
                Ok(Operand::Literal(Value::Int(i)))
            }
            Some(Token::FloatLit(_)) => {
                let Some(Token::FloatLit(x)) = self.advance() else {
                    unreachable!()
                };
                Ok(Operand::Literal(Value::Float(x)))
            }
            Some(Token::Ident(_)) => Ok(Operand::Column(self.parse_column_ref()?)),
            other => Err(SqlError::Parse(format!(
                "expected column or literal, found `{}`",
                other
                    .map(ToString::to_string)
                    .unwrap_or_else(|| "<end>".into())
            ))),
        }
    }

    fn parse_column_ref(&mut self) -> Result<ColumnRef, SqlError> {
        let first = self.expect_ident()?;
        if self.consume_if(&Token::Dot) {
            let second = self.expect_ident()?;
            Ok(ColumnRef::qualified(first, second))
        } else {
            Ok(ColumnRef::bare(first))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_paper_style_join_query() {
        let q = parse_sql(
            "SELECT DISTINCT t1.src AS src, t2.dst AS dst \
             FROM path_index AS t1, path_index AS t2 \
             WHERE t1.path = 'knows.knows.worksFor' AND t2.path = 'worksFor' \
               AND t1.dst = t2.src",
        )
        .unwrap();
        assert!(q.ctes.is_empty());
        let (selects, _) = q.body.flatten_union();
        assert_eq!(selects.len(), 1);
        let s = selects[0];
        assert!(s.distinct);
        assert_eq!(s.projection.len(), 2);
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.selection.len(), 3);
        assert_eq!(s.from[0].binding_name(), "t1");
    }

    #[test]
    fn parses_union_of_disjuncts_and_order_limit() {
        let q = parse_sql(
            "SELECT src, dst FROM d1 UNION SELECT src, dst FROM d2 UNION ALL \
             SELECT src, dst FROM d3 ORDER BY src DESC, dst LIMIT 10",
        )
        .unwrap();
        let (selects, dedup) = q.body.flatten_union();
        assert_eq!(selects.len(), 3);
        assert!(dedup);
        assert_eq!(q.order_by.len(), 2);
        assert!(!q.order_by[0].1, "first key is DESC");
        assert!(q.order_by[1].1, "second key defaults to ASC");
        assert_eq!(q.limit, Some(10));
    }

    #[test]
    fn parses_with_recursive() {
        let q = parse_sql(
            "WITH RECURSIVE reach(src, dst, depth) AS ( \
               SELECT src, dst, 1 AS depth FROM edge WHERE label = 'knows' \
               UNION \
               SELECT r.src, e.dst, 2 AS depth FROM reach AS r JOIN edge AS e ON r.dst = e.src \
             ) SELECT src, dst FROM reach",
        );
        // The literal `1 AS depth` in the projection is not a column — the
        // parser rejects it, which keeps the grammar honest; the translator
        // emits iteration counters through a dedicated literal-free shape.
        assert!(q.is_err());

        let q = parse_sql(
            "WITH RECURSIVE reach(src, dst) AS ( \
               SELECT src, dst FROM edge WHERE label = 'knows' \
               UNION \
               SELECT r.src, e.dst FROM reach AS r JOIN edge AS e ON r.dst = e.src \
             ) SELECT src, dst FROM reach ORDER BY src",
        )
        .unwrap();
        assert_eq!(q.ctes.len(), 1);
        let cte = &q.ctes[0];
        assert!(cte.recursive);
        assert_eq!(cte.name, "reach");
        assert_eq!(cte.columns, vec!["src", "dst"]);
        let (branches, dedup) = cte.body.flatten_union();
        assert_eq!(branches.len(), 2);
        assert!(dedup);
    }

    #[test]
    fn parses_joins_count_and_bare_alias() {
        let q = parse_sql(
            "SELECT COUNT(*) AS n FROM path_index t1 JOIN path_index t2 ON t1.dst = t2.src \
             WHERE t1.path = 'knows'",
        )
        .unwrap();
        let (selects, _) = q.body.flatten_union();
        let s = selects[0];
        assert_eq!(s.from.len(), 2);
        assert_eq!(s.from[1].binding_name(), "t2");
        assert_eq!(s.selection.len(), 2, "ON predicate merged with WHERE");
        assert!(matches!(s.projection[0], SelectItem::CountStar { .. }));
    }

    #[test]
    fn rejects_malformed_queries() {
        assert!(parse_sql("SELECT").is_err());
        assert!(parse_sql("SELECT a FROM").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE").is_err());
        assert!(parse_sql("SELECT a FROM t WHERE a ==").is_err());
        assert!(parse_sql("SELECT a FROM t LIMIT x").is_err());
        assert!(parse_sql("SELECT a FROM t extra garbage ,").is_err());
        assert!(parse_sql("SELECT a FROM t INNER WHERE a = 1").is_err());
    }

    #[test]
    fn wildcard_and_semicolon() {
        let q = parse_sql("SELECT * FROM edge;").unwrap();
        let (selects, _) = q.body.flatten_union();
        assert_eq!(selects[0].projection, vec![SelectItem::Wildcard]);
    }
}
