//! Scalar values and rows of the relational backend.
//!
//! The schema the paper's prototype stores in PostgreSQL needs only two
//! scalar types: integers (node identifiers, cardinalities) and text (label
//! paths). `NULL` is included because outer data — histograms with missing
//! estimates, for instance — naturally produces it.

use std::cmp::Ordering;
use std::fmt;

/// A scalar SQL value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer.
    Int(i64),
    /// UTF-8 text.
    Text(String),
    /// Double-precision float (histogram selectivities).
    Float(f64),
}

impl Value {
    /// Builds a text value from anything string-like.
    pub fn text<S: Into<String>>(s: S) -> Value {
        Value::Text(s.into())
    }

    /// `true` when the value is NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// The integer content, if this is an [`Value::Int`].
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The text content, if this is a [`Value::Text`].
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// The float content (integers widen), if numeric.
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(f) => Some(*f),
            Value::Int(i) => Some(*i as f64),
            _ => None,
        }
    }

    /// SQL comparison: `NULL` compares less than everything (only used for
    /// ordering, not for three-valued logic), numbers before text, numeric
    /// types compare numerically across `Int`/`Float`.
    pub fn sql_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.partial_cmp(b).unwrap_or(Ordering::Equal),
            (Int(a), Float(b)) => (*a as f64).partial_cmp(b).unwrap_or(Ordering::Equal),
            (Float(a), Int(b)) => a.partial_cmp(&(*b as f64)).unwrap_or(Ordering::Equal),
            (Int(_) | Float(_), Text(_)) => Ordering::Less,
            (Text(_), Int(_) | Float(_)) => Ordering::Greater,
            (Text(a), Text(b)) => a.cmp(b),
        }
    }

    /// SQL equality: NULL equals nothing (including NULL).
    pub fn sql_eq(&self, other: &Value) -> bool {
        if self.is_null() || other.is_null() {
            return false;
        }
        self.sql_cmp(other) == Ordering::Equal
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Text(s) => write!(f, "{s}"),
            Value::Float(x) => write!(f, "{x}"),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::Int(i64::from(v))
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

/// One tuple of a relation.
pub type Row = Vec<Value>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_and_constructors() {
        assert_eq!(Value::from(7i64).as_int(), Some(7));
        assert_eq!(Value::from(3u32).as_int(), Some(3));
        assert_eq!(Value::text("abc").as_text(), Some("abc"));
        assert_eq!(Value::from(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Int(2).as_float(), Some(2.0));
        assert!(Value::Null.is_null());
        assert_eq!(Value::Null.as_int(), None);
        assert_eq!(Value::Int(1).as_text(), None);
    }

    #[test]
    fn comparison_order_and_equality() {
        assert_eq!(Value::Int(1).sql_cmp(&Value::Int(2)), Ordering::Less);
        assert_eq!(Value::Int(2).sql_cmp(&Value::Float(1.5)), Ordering::Greater);
        assert_eq!(Value::text("a").sql_cmp(&Value::text("b")), Ordering::Less);
        assert_eq!(Value::Int(5).sql_cmp(&Value::text("5")), Ordering::Less);
        assert_eq!(Value::Null.sql_cmp(&Value::Int(0)), Ordering::Less);
        assert!(Value::Int(3).sql_eq(&Value::Int(3)));
        assert!(Value::Int(3).sql_eq(&Value::Float(3.0)));
        assert!(!Value::Null.sql_eq(&Value::Null), "NULL = NULL is not true");
        assert!(!Value::text("x").sql_eq(&Value::text("y")));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(-4).to_string(), "-4");
        assert_eq!(Value::text("knows.worksFor").to_string(), "knows.worksFor");
        assert_eq!(Value::Float(0.25).to_string(), "0.25");
    }
}
