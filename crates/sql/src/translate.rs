//! RPQ → SQL translation.
//!
//! Two translations are provided, matching the two systems the paper talks
//! about:
//!
//! 1. [`rpq_to_path_index_sql`] — the paper's own prototype: each label-path
//!    disjunct is chunked into segments of length ≤ k and becomes a join of
//!    `path_index` scans; the disjuncts are `UNION`ed. This is the SQL the
//!    authors generate for PostgreSQL (Section 3.1: *"We translate RPQs into
//!    equivalent SQL statements over `I_{G,k}` implemented as a relational
//!    table and backed by a B+tree"*).
//! 2. [`rpq_to_recursive_sql`] — approach (2) from the paper's introduction:
//!    Datalog-style evaluation as recursive SQL views over the raw `edge`
//!    relation, with Kleene recursion becoming a `WITH RECURSIVE` fixpoint
//!    and bounded recursion unrolled.

use pathix_graph::{Graph, SignedLabel};
use pathix_rpq::{BoundExpr, Expr, LabelPath};

/// Renders a label path as the text key stored in the `path` column of the
/// `path_index` table, e.g. `knows.knows.worksFor-`.
pub fn path_string(graph: &Graph, path: &[SignedLabel]) -> String {
    path.iter()
        .map(|sl| graph.format_signed_label(*sl))
        .collect::<Vec<_>>()
        .join(".")
}

/// Splits a disjunct into consecutive segments of length ≤ k (the greedy
/// left-to-right chunking of the paper's *semi-naive* strategy).
pub fn chunk_disjunct(disjunct: &[SignedLabel], k: usize) -> Vec<Vec<SignedLabel>> {
    assert!(k > 0, "k must be positive");
    disjunct.chunks(k).map(<[SignedLabel]>::to_vec).collect()
}

/// SQL for a single label-path disjunct over the `path_index` / `nodes`
/// tables (no `DISTINCT`; the caller decides set semantics).
pub fn disjunct_to_sql(graph: &Graph, disjunct: &[SignedLabel], k: usize) -> String {
    if disjunct.is_empty() {
        // The ε disjunct: the identity relation over all nodes.
        return "SELECT id AS src, id AS dst FROM nodes".to_owned();
    }
    let segments = chunk_disjunct(disjunct, k);
    if segments.len() == 1 {
        return format!(
            "SELECT src, dst FROM path_index WHERE path = '{}'",
            path_string(graph, &segments[0])
        );
    }
    let mut from = Vec::new();
    let mut wheres = Vec::new();
    for (i, segment) in segments.iter().enumerate() {
        let alias = format!("t{}", i + 1);
        from.push(format!("path_index AS {alias}"));
        wheres.push(format!("{alias}.path = '{}'", path_string(graph, segment)));
    }
    for i in 1..segments.len() {
        wheres.push(format!("t{i}.dst = t{}.src", i + 1));
    }
    format!(
        "SELECT t1.src AS src, t{}.dst AS dst FROM {} WHERE {}",
        segments.len(),
        from.join(", "),
        wheres.join(" AND ")
    )
}

/// The paper's translation: the union of the per-disjunct join queries, with
/// set semantics (duplicate pairs removed).
pub fn rpq_to_path_index_sql(graph: &Graph, disjuncts: &[LabelPath], k: usize) -> String {
    assert!(
        !disjuncts.is_empty(),
        "a query must have at least one disjunct"
    );
    if disjuncts.len() == 1 {
        let body = disjunct_to_sql(graph, &disjuncts[0], k);
        // Splice DISTINCT into the single select.
        return body.replacen("SELECT ", "SELECT DISTINCT ", 1);
    }
    disjuncts
        .iter()
        .map(|d| disjunct_to_sql(graph, d, k))
        .collect::<Vec<_>>()
        .join(" UNION ")
}

/// Builder for the recursive-view translation (approach 2).
struct RecursiveTranslator<'a> {
    graph: &'a Graph,
    star_bound: u32,
    ctes: Vec<String>,
    counter: usize,
}

impl<'a> RecursiveTranslator<'a> {
    fn fresh(&mut self) -> String {
        self.counter += 1;
        format!("e{}", self.counter)
    }

    fn push_cte(&mut self, name: &str, body: String) {
        self.ctes.push(format!("{name}(src, dst) AS ({body})"));
    }

    /// Translates `expr`, returning the name of the CTE holding its result.
    fn translate(&mut self, expr: &BoundExpr) -> String {
        match expr {
            Expr::Epsilon => {
                let name = self.fresh();
                self.push_cte(&name, "SELECT id AS src, id AS dst FROM nodes".to_owned());
                name
            }
            Expr::Step { label, .. } => {
                let name = self.fresh();
                let label_name = self
                    .graph
                    .label_name(label.label)
                    .unwrap_or("unknown")
                    .to_owned();
                let body = if label.is_backward() {
                    format!("SELECT dst AS src, src AS dst FROM edge WHERE label = '{label_name}'")
                } else {
                    format!("SELECT src, dst FROM edge WHERE label = '{label_name}'")
                };
                self.push_cte(&name, body);
                name
            }
            Expr::Concat(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| self.translate(p)).collect();
                self.concat_ctes(&inner)
            }
            Expr::Union(parts) => {
                let inner: Vec<String> = parts.iter().map(|p| self.translate(p)).collect();
                let name = self.fresh();
                let body = inner
                    .iter()
                    .map(|c| format!("SELECT src, dst FROM {c}"))
                    .collect::<Vec<_>>()
                    .join(" UNION ");
                self.push_cte(&name, body);
                name
            }
            Expr::Repeat { inner, min, max } => {
                let base = self.translate(inner);
                match max {
                    // Kleene forms: a genuine recursive view (fixpoint),
                    // which on a finite graph equals the paper's bounded
                    // expansion R^{min, n(G)}.
                    None => self.kleene(&base, *min),
                    Some(max) => self.bounded(&base, *min, *max),
                }
            }
        }
    }

    /// `c1 ∘ c2 ∘ … ∘ cn` as one join query.
    fn concat_ctes(&mut self, inner: &[String]) -> String {
        if inner.len() == 1 {
            return inner[0].clone();
        }
        let name = self.fresh();
        let from: Vec<String> = inner
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c} AS t{}", i + 1))
            .collect();
        let mut wheres = Vec::new();
        for i in 1..inner.len() {
            wheres.push(format!("t{i}.dst = t{}.src", i + 1));
        }
        let body = format!(
            "SELECT t1.src AS src, t{}.dst AS dst FROM {} WHERE {}",
            inner.len(),
            from.join(", "),
            wheres.join(" AND ")
        );
        self.push_cte(&name, body);
        name
    }

    /// `base+` via `WITH RECURSIVE`, then adjusted for `min`.
    fn kleene(&mut self, base: &str, min: u32) -> String {
        let closure = self.fresh();
        let body = format!(
            "SELECT src, dst FROM {base} UNION \
             SELECT r.src AS src, s.dst AS dst FROM {closure} AS r, {base} AS s WHERE r.dst = s.src"
        );
        self.push_cte(&closure, body);
        match min {
            0 => {
                // ε ∪ base⁺
                let name = self.fresh();
                let body = format!(
                    "SELECT id AS src, id AS dst FROM nodes UNION SELECT src, dst FROM {closure}"
                );
                self.push_cte(&name, body);
                name
            }
            1 => closure,
            n => {
                // base^{n-1} ∘ base⁺
                let prefix: Vec<String> = std::iter::repeat_with(|| base.to_owned())
                    .take((n - 1) as usize)
                    .collect();
                let mut parts = prefix;
                parts.push(closure);
                self.concat_ctes(&parts)
            }
        }
    }

    /// `base^{min,max}` unrolled into powers and a union.
    fn bounded(&mut self, base: &str, min: u32, max: u32) -> String {
        let max = max.max(min).min(self.star_bound.max(max));
        // Powers base^1 .. base^max.
        let mut powers: Vec<String> = Vec::new();
        for i in 1..=max {
            if i == 1 {
                powers.push(base.to_owned());
            } else {
                let prev = powers[(i - 2) as usize].clone();
                let name = self.fresh();
                let body = format!(
                    "SELECT a.src AS src, b.dst AS dst FROM {prev} AS a, {base} AS b \
                     WHERE a.dst = b.src"
                );
                self.push_cte(&name, body);
                powers.push(name);
            }
        }
        let mut branches: Vec<String> = Vec::new();
        if min == 0 {
            branches.push("SELECT id AS src, id AS dst FROM nodes".to_owned());
        }
        for i in min.max(1)..=max {
            branches.push(format!("SELECT src, dst FROM {}", powers[(i - 1) as usize]));
        }
        let name = self.fresh();
        self.push_cte(&name, branches.join(" UNION "));
        name
    }
}

/// Approach (2): translate a bound RPQ into recursive SQL views over the
/// `edge` / `nodes` tables. `star_bound` only matters for malformed bounds
/// (`max < min`); genuine Kleene recursion becomes a fixpoint CTE.
pub fn rpq_to_recursive_sql(graph: &Graph, expr: &BoundExpr, star_bound: u32) -> String {
    let mut tr = RecursiveTranslator {
        graph,
        star_bound,
        ctes: Vec::new(),
        counter: 0,
    };
    let result = tr.translate(expr);
    format!(
        "WITH RECURSIVE {} SELECT DISTINCT src, dst FROM {result}",
        tr.ctes.join(", ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use pathix_datagen::paper_example_graph;
    use pathix_rpq::parse;

    fn bind(graph: &Graph, q: &str) -> BoundExpr {
        parse(q).unwrap().bind(graph).unwrap()
    }

    fn sl(graph: &Graph, name: &str) -> SignedLabel {
        SignedLabel::forward(graph.label_id(name).unwrap())
    }

    #[test]
    fn path_strings_include_inverse_marks() {
        let g = paper_example_graph();
        let knows = sl(&g, "knows");
        let works = sl(&g, "worksFor");
        assert_eq!(
            path_string(&g, &[knows, works.inverse()]),
            "knows.worksFor-"
        );
    }

    #[test]
    fn chunking_is_greedy_left_to_right() {
        let g = paper_example_graph();
        let knows = sl(&g, "knows");
        let path = vec![knows; 7];
        let chunks = chunk_disjunct(&path, 3);
        assert_eq!(
            chunks.iter().map(Vec::len).collect::<Vec<_>>(),
            vec![3, 3, 1]
        );
    }

    #[test]
    fn single_segment_disjunct_is_one_scan() {
        let g = paper_example_graph();
        let knows = sl(&g, "knows");
        let sql = disjunct_to_sql(&g, &[knows, knows], 3);
        assert_eq!(
            sql,
            "SELECT src, dst FROM path_index WHERE path = 'knows.knows'"
        );
    }

    #[test]
    fn multi_segment_disjunct_joins_on_dst_src() {
        let g = paper_example_graph();
        let knows = sl(&g, "knows");
        let works = sl(&g, "worksFor");
        let sql = disjunct_to_sql(&g, &[knows, knows, works, knows, works], 2);
        assert!(sql.contains("path_index AS t1"));
        assert!(sql.contains("path_index AS t3"));
        assert!(sql.contains("t1.path = 'knows.knows'"));
        assert!(sql.contains("t3.path = 'worksFor'"));
        assert!(sql.contains("t1.dst = t2.src"));
        assert!(sql.contains("t2.dst = t3.src"));
    }

    #[test]
    fn epsilon_disjunct_scans_nodes() {
        let g = paper_example_graph();
        let sql = disjunct_to_sql(&g, &[], 2);
        assert!(sql.contains("FROM nodes"));
    }

    #[test]
    fn union_of_disjuncts_and_distinct_splicing() {
        let g = paper_example_graph();
        let knows = sl(&g, "knows");
        let works = sl(&g, "worksFor");
        let single = rpq_to_path_index_sql(&g, &[vec![knows, works]], 2);
        assert!(single.starts_with("SELECT DISTINCT"));
        let multi = rpq_to_path_index_sql(&g, &[vec![knows], vec![works]], 2);
        assert_eq!(multi.matches(" UNION ").count(), 1);
    }

    #[test]
    fn recursive_translation_emits_fixpoint_for_star() {
        let g = paper_example_graph();
        let expr = bind(&g, "knows*");
        let sql = rpq_to_recursive_sql(&g, &expr, 8);
        assert!(sql.starts_with("WITH RECURSIVE"));
        assert!(sql.contains("FROM nodes"), "min = 0 includes the identity");
        assert!(sql.contains("WHERE r.dst = s.src"), "fixpoint join present");
    }

    #[test]
    fn recursive_translation_unrolls_bounded_recursion() {
        let g = paper_example_graph();
        let expr = bind(&g, "(knows/worksFor){2,3}");
        let sql = rpq_to_recursive_sql(&g, &expr, 8);
        // Unrolled: no self-referencing fixpoint join needed.
        assert!(!sql.contains("r.dst = s.src"));
        assert!(sql.contains("UNION"));
        assert!(sql.contains("edge WHERE label = 'knows'"));
    }

    #[test]
    fn recursive_translation_handles_inverse_and_union() {
        let g = paper_example_graph();
        let expr = bind(&g, "supervisor|worksFor-");
        let sql = rpq_to_recursive_sql(&g, &expr, 4);
        assert!(sql.contains("SELECT dst AS src, src AS dst FROM edge WHERE label = 'worksFor'"));
        assert!(sql.contains("label = 'supervisor'"));
    }
}
