//! Compact identifiers for nodes, labels and signed (directed) labels.
//!
//! The paper's RPQ alphabet is `{ℓ, ℓ⁻ | ℓ ∈ L}`: every edge label can be
//! traversed forwards or backwards. [`SignedLabel`] packs a [`LabelId`]
//! together with a [`Direction`] into a single `u32` whose numeric order is
//! `(label, direction)` — this ordering is what the k-path index key encoding
//! relies on.

use std::fmt;

/// Dense identifier of a node in a [`crate::Graph`].
///
/// Node ids are assigned contiguously from zero in insertion order by
/// [`crate::GraphBuilder`]; a graph with `n` nodes uses ids `0..n`.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u32);

impl NodeId {
    /// Returns the raw index for direct use in vectors sized by node count.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for NodeId {
    fn from(v: u32) -> Self {
        NodeId(v)
    }
}

/// Dense identifier of an edge label (an element of the vocabulary `L`).
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LabelId(pub u16);

impl LabelId {
    /// Returns the raw index for direct use in vectors sized by label count.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for LabelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

impl From<u16> for LabelId {
    fn from(v: u16) -> Self {
        LabelId(v)
    }
}

/// Traversal direction of a label occurrence inside a label path.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Direction {
    /// Follow an edge from its source to its target (`ℓ`).
    Forward,
    /// Follow an edge from its target back to its source (`ℓ⁻`).
    Backward,
}

impl Direction {
    /// Flips the direction (`ℓ` ↔ `ℓ⁻`).
    #[inline]
    pub fn inverse(self) -> Direction {
        match self {
            Direction::Forward => Direction::Backward,
            Direction::Backward => Direction::Forward,
        }
    }

    /// `true` for [`Direction::Backward`].
    #[inline]
    pub fn is_backward(self) -> bool {
        matches!(self, Direction::Backward)
    }
}

/// An edge label together with a traversal direction: the atoms `ℓ` / `ℓ⁻`
/// of the paper's label paths.
///
/// `SignedLabel` is `Copy`, small (4 bytes) and totally ordered by
/// `(label, direction)` with `Forward < Backward`, which makes sequences of
/// signed labels directly usable as ordered index-key components.
#[derive(Copy, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignedLabel {
    /// The underlying vocabulary label.
    pub label: LabelId,
    /// Whether the label is traversed forwards or backwards.
    pub direction: Direction,
}

impl SignedLabel {
    /// Forward occurrence `ℓ`.
    #[inline]
    pub fn forward(label: LabelId) -> Self {
        SignedLabel {
            label,
            direction: Direction::Forward,
        }
    }

    /// Backward occurrence `ℓ⁻`.
    #[inline]
    pub fn backward(label: LabelId) -> Self {
        SignedLabel {
            label,
            direction: Direction::Backward,
        }
    }

    /// The same label traversed in the opposite direction.
    #[inline]
    pub fn inverse(self) -> Self {
        SignedLabel {
            label: self.label,
            direction: self.direction.inverse(),
        }
    }

    /// `true` if this is a backward (`ℓ⁻`) occurrence.
    #[inline]
    pub fn is_backward(self) -> bool {
        self.direction.is_backward()
    }

    /// Packs the signed label into a `u16` preserving the `(label, direction)`
    /// order: `label << 1 | backward_bit`.
    ///
    /// Panics in debug builds if the label id does not fit in 15 bits; the
    /// dictionary enforces this bound at interning time.
    #[inline]
    pub fn code(self) -> u16 {
        debug_assert!(self.label.0 < (1 << 15), "label id out of range");
        (self.label.0 << 1) | (self.is_backward() as u16)
    }

    /// Reverses [`SignedLabel::code`].
    #[inline]
    pub fn from_code(code: u16) -> Self {
        let label = LabelId(code >> 1);
        if code & 1 == 1 {
            SignedLabel::backward(label)
        } else {
            SignedLabel::forward(label)
        }
    }
}

impl fmt::Debug for SignedLabel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.direction {
            Direction::Forward => write!(f, "l{}", self.label.0),
            Direction::Backward => write!(f, "l{}~", self.label.0),
        }
    }
}

impl From<LabelId> for SignedLabel {
    /// A bare label converts to its forward occurrence `ℓ`.
    fn from(label: LabelId) -> Self {
        SignedLabel::forward(label)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_index_roundtrip() {
        let n = NodeId(42);
        assert_eq!(n.index(), 42);
        assert_eq!(NodeId::from(42u32), n);
        assert_eq!(format!("{n}"), "42");
        assert_eq!(format!("{n:?}"), "n42");
    }

    #[test]
    fn label_id_index() {
        let l = LabelId(7);
        assert_eq!(l.index(), 7);
        assert_eq!(LabelId::from(7u16), l);
    }

    #[test]
    fn direction_inverse_is_involution() {
        assert_eq!(Direction::Forward.inverse(), Direction::Backward);
        assert_eq!(Direction::Backward.inverse(), Direction::Forward);
        assert_eq!(Direction::Forward.inverse().inverse(), Direction::Forward);
    }

    #[test]
    fn signed_label_inverse_is_involution() {
        let l = SignedLabel::forward(LabelId(3));
        assert_eq!(l.inverse().inverse(), l);
        assert!(l.inverse().is_backward());
        assert!(!l.is_backward());
    }

    #[test]
    fn signed_label_code_roundtrip() {
        for raw in 0..100u16 {
            for dir in [Direction::Forward, Direction::Backward] {
                let sl = SignedLabel {
                    label: LabelId(raw),
                    direction: dir,
                };
                assert_eq!(SignedLabel::from_code(sl.code()), sl);
            }
        }
    }

    #[test]
    fn signed_label_code_preserves_order() {
        let a = SignedLabel::forward(LabelId(1));
        let b = SignedLabel::backward(LabelId(1));
        let c = SignedLabel::forward(LabelId(2));
        assert!(a < b && b < c);
        assert!(a.code() < b.code() && b.code() < c.code());
    }

    #[test]
    fn signed_label_ordering_matches_tuple_ordering() {
        let mut labels: Vec<SignedLabel> = Vec::new();
        for raw in 0..8u16 {
            labels.push(SignedLabel::forward(LabelId(raw)));
            labels.push(SignedLabel::backward(LabelId(raw)));
        }
        let mut by_ord = labels.clone();
        by_ord.sort();
        let mut by_code = labels;
        by_code.sort_by_key(|sl| sl.code());
        assert_eq!(by_ord, by_code);
    }
}
