//! String interning dictionaries mapping external names to dense ids.
//!
//! Two layers live here:
//!
//! * [`Dictionary`] — the plain bidirectional map the [`crate::GraphBuilder`]
//!   accumulates names into. Each name is stored **once** as an `Arc<str>`
//!   shared between the name→code map key and the code→name vector.
//! * [`SharedDictionary`] / [`DictView`] — the live, append-only vocabulary
//!   behind [`crate::Graph`]. Codes are assigned once and never change, so a
//!   graph snapshot is just a frozen *length*: readers resolve code→name
//!   lock-free through [`DictView`] (immutable `Arc`-shared segments), while
//!   the writer keeps interning new names into the shared store. A view with
//!   length `n` sees exactly the codes `0..n`, no matter how far the store
//!   has grown since the view was frozen.

use std::collections::HashMap;
use std::sync::{Arc, RwLock};

/// Names per sealed [`SharedDictionary`] segment. Freezing a view copies at
/// most one open segment of this size, so a publish costs O(Δ + SEG) even
/// when the vocabulary grows every batch.
const SEG: usize = 256;

/// A bidirectional mapping between strings and dense `u32` codes.
///
/// Used for both node names and label names. Codes are assigned in first-seen
/// order starting from zero, so a dictionary with `n` entries uses the codes
/// `0..n` exactly. Every name is allocated once: the map key and the vector
/// entry share the same `Arc<str>`.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_name: HashMap<Arc<str>, u32>,
    by_code: Vec<Arc<str>>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its code. Re-interning an existing name
    /// returns the previously assigned code.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&code) = self.by_name.get(name) {
            return code;
        }
        let code = self.by_code.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        self.by_name.insert(Arc::clone(&shared), code);
        self.by_code.push(shared);
        code
    }

    /// Looks up an existing name without interning it.
    pub fn code(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolves a code back to its name.
    pub fn name(&self, code: u32) -> Option<&str> {
        self.by_code.get(code as usize).map(|s| &**s)
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// `true` when no entries have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Iterates over `(code, name)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_code
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, &**s))
    }

    /// All names in code order.
    pub fn names(&self) -> &[Arc<str>] {
        &self.by_code
    }
}

/// A sealed run of exactly [`SEG`] names (except possibly a frozen tail).
type Segment = Arc<[Arc<str>]>;

#[derive(Debug, Default)]
struct SharedDictInner {
    by_name: HashMap<Arc<str>, u32>,
    /// Directory of sealed segments, each exactly [`SEG`] names. Rebuilt
    /// (O(segments)) only when a segment seals — every [`SEG`]-th intern —
    /// so the amortized cost per intern stays O(1).
    sealed: Arc<Vec<Segment>>,
    /// The open segment, `< SEG` names.
    tail: Vec<Arc<str>>,
}

impl SharedDictInner {
    fn len(&self) -> usize {
        self.sealed.len() * SEG + self.tail.len()
    }
}

/// The live, append-only half of a vocabulary: a concurrent interning store
/// that snapshots read through frozen [`DictView`]s. Codes are assigned once
/// and never reassigned, which is what makes a plain length a consistent
/// snapshot boundary.
#[derive(Debug, Default)]
pub struct SharedDictionary {
    inner: RwLock<SharedDictInner>,
}

impl SharedDictionary {
    /// Adopts an already-built [`Dictionary`], sharing its `Arc<str>`
    /// allocations.
    pub fn from_dictionary(dict: Dictionary) -> Self {
        let Dictionary { by_name, by_code } = dict;
        let mut sealed = Vec::new();
        let mut tail = Vec::new();
        for chunk in by_code.chunks(SEG) {
            if chunk.len() == SEG {
                sealed.push(Segment::from(chunk.to_vec()));
            } else {
                tail = chunk.to_vec();
            }
        }
        SharedDictionary {
            inner: RwLock::new(SharedDictInner {
                by_name,
                sealed: Arc::new(sealed),
                tail,
            }),
        }
    }

    /// Interns `name`, returning its code (existing names keep their code).
    /// Takes the write lock; callers serialize publishes externally.
    pub fn intern(&self, name: &str) -> u32 {
        let mut inner = self.inner.write().unwrap_or_else(|e| e.into_inner());
        if let Some(&code) = inner.by_name.get(name) {
            return code;
        }
        let code = inner.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        inner.by_name.insert(Arc::clone(&shared), code);
        inner.tail.push(shared);
        if inner.tail.len() == SEG {
            let segment = Segment::from(std::mem::take(&mut inner.tail));
            let mut directory = inner.sealed.as_ref().clone();
            directory.push(segment);
            inner.sealed = Arc::new(directory);
        }
        code
    }

    /// Resolves `name` to its code, restricted to the codes `0..limit` a
    /// snapshot is allowed to see. A brief read lock; the append-only code
    /// assignment makes the length filter an exact epoch boundary.
    pub fn lookup(&self, name: &str, limit: u32) -> Option<u32> {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        inner.by_name.get(name).copied().filter(|&c| c < limit)
    }

    /// Total names interned so far (across every epoch).
    pub fn len(&self) -> usize {
        self.inner.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// `true` when nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Freezes a lock-free reader view over the codes `0..limit`.
    /// Cost: one directory `Arc` bump plus a copy of the open tail —
    /// O(SEG), independent of the vocabulary size.
    ///
    /// # Panics
    /// Panics if `limit` exceeds the number of interned names.
    pub fn freeze(&self, limit: u32) -> DictView {
        let inner = self.inner.read().unwrap_or_else(|e| e.into_inner());
        assert!(
            (limit as usize) <= inner.len(),
            "cannot freeze a view past the interned vocabulary"
        );
        DictView {
            sealed: Arc::clone(&inner.sealed),
            tail: Segment::from(inner.tail.clone()),
            len: limit,
        }
    }
}

/// An immutable, lock-free code→name view over one epoch's vocabulary
/// prefix. Cloning is two `Arc` bumps; resolving a name borrows from the
/// shared segments, so no lock is held on the read path.
#[derive(Debug, Clone)]
pub struct DictView {
    pub(crate) sealed: Arc<Vec<Segment>>,
    pub(crate) tail: Segment,
    pub(crate) len: u32,
}

impl Default for DictView {
    fn default() -> Self {
        DictView {
            sealed: Arc::new(Vec::new()),
            tail: Segment::from(Vec::new()),
            len: 0,
        }
    }
}

impl DictView {
    /// Resolves a code back to its name (codes at or past the frozen length
    /// resolve to `None`, even if the shared store has grown since).
    pub fn name(&self, code: u32) -> Option<&str> {
        if code >= self.len {
            return None;
        }
        let i = code as usize;
        let (seg, off) = (i / SEG, i % SEG);
        if seg < self.sealed.len() {
            self.sealed[seg].get(off).map(|s| &**s)
        } else {
            self.tail.get(i - self.sealed.len() * SEG).map(|s| &**s)
        }
    }

    /// Number of codes visible through this view.
    pub fn len(&self) -> usize {
        self.len as usize
    }

    /// `true` when the view is over an empty vocabulary.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Iterates over `(code, name)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        (0..self.len).filter_map(|c| Some((c, self.name(c)?)))
    }
}

/// The shared node and label vocabulary of a graph lineage: one interning
/// store every epoch's snapshot points at, each seeing its own frozen prefix.
#[derive(Debug, Default)]
pub struct Vocabulary {
    pub(crate) nodes: SharedDictionary,
    pub(crate) labels: SharedDictionary,
}

impl Vocabulary {
    /// Builds the vocabulary from bulk-built dictionaries.
    pub fn from_dictionaries(nodes: Dictionary, labels: Dictionary) -> Self {
        Vocabulary {
            nodes: SharedDictionary::from_dictionary(nodes),
            labels: SharedDictionary::from_dictionary(labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("x");
        assert_eq!(d.intern("x"), a);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn code_and_name_roundtrip() {
        let mut d = Dictionary::new();
        d.intern("ada");
        d.intern("jan");
        assert_eq!(d.code("ada"), Some(0));
        assert_eq!(d.code("jan"), Some(1));
        assert_eq!(d.code("zoe"), None);
        assert_eq!(d.name(0), Some("ada"));
        assert_eq!(d.name(1), Some("jan"));
        assert_eq!(d.name(2), None);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.code("anything"), None);
    }

    #[test]
    fn iter_yields_code_order() {
        let mut d = Dictionary::new();
        for name in ["k", "w", "s"] {
            d.intern(name);
        }
        let collected: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(collected, vec![(0, "k"), (1, "w"), (2, "s")]);
        let names: Vec<&str> = d.names().iter().map(|s| &**s).collect();
        assert_eq!(names, ["k", "w", "s"]);
    }

    #[test]
    fn each_name_is_stored_in_a_single_shared_allocation() {
        // The memory-shape contract: the map key and the code-order entry
        // must be the *same* allocation (two refcounts, one string), not two
        // copies — this is what halves the dictionary's string memory.
        let mut d = Dictionary::new();
        let code = d.intern("a-reasonably-long-node-name");
        let (key, _) = d
            .by_name
            .get_key_value("a-reasonably-long-node-name")
            .unwrap();
        let stored = &d.by_code[code as usize];
        assert!(
            Arc::ptr_eq(key, stored),
            "map key and code entry must share one allocation"
        );
        assert_eq!(Arc::strong_count(stored), 2);
    }

    #[test]
    fn shared_dictionary_interns_and_filters_by_epoch_length() {
        let shared = SharedDictionary::default();
        assert_eq!(shared.intern("a"), 0);
        assert_eq!(shared.intern("b"), 1);
        assert_eq!(shared.intern("a"), 0, "re-intern keeps the code");
        // An epoch frozen at length 1 must not see code 1 by name or code.
        assert_eq!(shared.lookup("a", 1), Some(0));
        assert_eq!(shared.lookup("b", 1), None);
        assert_eq!(shared.lookup("b", 2), Some(1));
        let old = shared.freeze(1);
        let new = shared.freeze(2);
        assert_eq!(old.name(0), Some("a"));
        assert_eq!(old.name(1), None);
        assert_eq!(new.name(1), Some("b"));
    }

    #[test]
    fn frozen_views_survive_later_growth_across_segment_seals() {
        let shared = SharedDictionary::default();
        for i in 0..(SEG as u32 / 2) {
            shared.intern(&format!("n{i}"));
        }
        let view = shared.freeze(shared.len() as u32);
        // Grow far past several segment boundaries after the freeze.
        for i in (SEG as u32 / 2)..(3 * SEG as u32 + 7) {
            shared.intern(&format!("n{i}"));
        }
        assert_eq!(view.len(), SEG / 2);
        for (code, name) in view.iter() {
            assert_eq!(name, format!("n{code}"));
        }
        assert_eq!(view.name(SEG as u32 / 2), None);
        let full = shared.freeze(shared.len() as u32);
        assert_eq!(full.len(), 3 * SEG + 7);
        assert_eq!(full.name(3 * SEG as u32), Some("n768"));
    }

    #[test]
    fn shared_store_also_shares_allocations_with_its_map() {
        let shared = SharedDictionary::default();
        shared.intern("solo");
        let inner = shared.inner.read().unwrap();
        let (key, _) = inner.by_name.get_key_value("solo").unwrap();
        assert!(Arc::ptr_eq(key, &inner.tail[0]));
    }

    #[test]
    fn from_dictionary_preserves_codes_and_allocations() {
        let mut d = Dictionary::new();
        for i in 0..(SEG as u32 + 3) {
            d.intern(&format!("x{i}"));
        }
        let keep = Arc::clone(&d.by_code[0]);
        let shared = SharedDictionary::from_dictionary(d);
        assert_eq!(shared.len(), SEG + 3);
        assert_eq!(shared.lookup("x0", 1), Some(0));
        let view = shared.freeze(shared.len() as u32);
        assert_eq!(view.name(0), Some("x0"));
        assert_eq!(view.name(SEG as u32), Some(&*format!("x{SEG}")));
        // The adopted store reuses the builder's allocations.
        assert!(Arc::strong_count(&keep) >= 2);
    }
}
