//! String interning dictionaries mapping external names to dense ids.

use std::collections::HashMap;

/// A bidirectional mapping between strings and dense `u32` codes.
///
/// Used for both node names and label names. Codes are assigned in first-seen
/// order starting from zero, so a dictionary with `n` entries uses the codes
/// `0..n` exactly.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    by_name: HashMap<String, u32>,
    by_code: Vec<String>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `name`, returning its code. Re-interning an existing name
    /// returns the previously assigned code.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&code) = self.by_name.get(name) {
            return code;
        }
        let code = self.by_code.len() as u32;
        self.by_name.insert(name.to_owned(), code);
        self.by_code.push(name.to_owned());
        code
    }

    /// Looks up an existing name without interning it.
    pub fn code(&self, name: &str) -> Option<u32> {
        self.by_name.get(name).copied()
    }

    /// Resolves a code back to its name.
    pub fn name(&self, code: u32) -> Option<&str> {
        self.by_code.get(code as usize).map(String::as_str)
    }

    /// Number of interned entries.
    pub fn len(&self) -> usize {
        self.by_code.len()
    }

    /// `true` when no entries have been interned.
    pub fn is_empty(&self) -> bool {
        self.by_code.is_empty()
    }

    /// Iterates over `(code, name)` pairs in code order.
    pub fn iter(&self) -> impl Iterator<Item = (u32, &str)> {
        self.by_code
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.as_str()))
    }

    /// All names in code order.
    pub fn names(&self) -> &[String] {
        &self.by_code
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_assigns_dense_codes_in_order() {
        let mut d = Dictionary::new();
        assert_eq!(d.intern("a"), 0);
        assert_eq!(d.intern("b"), 1);
        assert_eq!(d.intern("c"), 2);
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn intern_is_idempotent() {
        let mut d = Dictionary::new();
        let a = d.intern("x");
        assert_eq!(d.intern("x"), a);
        assert_eq!(d.len(), 1);
    }

    #[test]
    fn code_and_name_roundtrip() {
        let mut d = Dictionary::new();
        d.intern("ada");
        d.intern("jan");
        assert_eq!(d.code("ada"), Some(0));
        assert_eq!(d.code("jan"), Some(1));
        assert_eq!(d.code("zoe"), None);
        assert_eq!(d.name(0), Some("ada"));
        assert_eq!(d.name(1), Some("jan"));
        assert_eq!(d.name(2), None);
    }

    #[test]
    fn empty_dictionary() {
        let d = Dictionary::new();
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
        assert_eq!(d.code("anything"), None);
    }

    #[test]
    fn iter_yields_code_order() {
        let mut d = Dictionary::new();
        for name in ["k", "w", "s"] {
            d.intern(name);
        }
        let collected: Vec<(u32, &str)> = d.iter().collect();
        assert_eq!(collected, vec![(0, "k"), (1, "w"), (2, "s")]);
        assert_eq!(
            d.names(),
            &["k".to_string(), "w".to_string(), "s".to_string()]
        );
    }
}
