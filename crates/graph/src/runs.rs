//! Chunked, structurally-shared edge storage — the adjacency representation
//! behind [`crate::Graph`].
//!
//! Each label stores its edge relation (and its converse) as a sequence of
//! bounded, immutable **chunks** of `(first, second)` pairs held behind
//! `Arc`s, the same shape the shared k-path index uses for its per-path runs:
//!
//! ```text
//! run   : [Arc<chunk>, Arc<chunk>, …]          (ascending, disjoint)
//! chunk : sorted Vec<(first, second)>, ≤ CHUNK_MAX pairs
//! ```
//!
//! Applying a batch of edge mutations (`EdgeRun::apply`) rebuilds only the
//! chunks that contain a changed pair and re-shares every other chunk by
//! bumping its refcount, so a graph publish costs **O(Δ · chunk)** instead of
//! O(V + E). Old graph snapshots keep their `Arc`s untouched, which is what
//! makes every published epoch fully isolated for free.

use crate::ids::NodeId;
use pathix_audit::AuditReport;
use std::sync::Arc;

/// Preferred number of pairs per chunk: rebuilt chunk groups are re-cut to
/// this size. Smaller chunks shrink the publish ceiling (Δ scattered pairs
/// rebuild at most Δ chunks of this size) at the price of more `Arc` bumps
/// per re-shared run; 256 pairs ≈ 2 KiB keeps both cheap.
pub(crate) const CHUNK_TARGET: usize = 256;

/// A chunk never exceeds this many pairs; larger merge results are split.
pub(crate) const CHUNK_MAX: usize = 2 * CHUNK_TARGET;

/// A rebuilt region smaller than this absorbs its untouched right neighbor
/// instead of being emitted as its own chunk, so delete-heavy churn cannot
/// fragment a run into ever-tinier chunks.
pub(crate) const CHUNK_MIN: usize = CHUNK_TARGET / 2;

/// A sorted pair inside a run: `(source, target)` for forward adjacency,
/// `(target, source)` for the converse.
pub(crate) type Pair = (NodeId, NodeId);

/// One immutable, sorted slice of an edge relation.
pub(crate) type Chunk = Vec<Pair>;

/// What one graph publish reused versus rebuilt — the observable evidence
/// that the publish was proportional to the touched neighborhood, not the
/// graph.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct GraphPublishStats {
    /// Labels whose adjacency was taken over wholesale (`Arc` bumps only).
    pub labels_shared: usize,
    /// Labels with at least one rebuilt chunk.
    pub labels_rebuilt: usize,
    /// Chunks re-shared from the previous epoch.
    pub chunks_shared: usize,
    /// Chunks rebuilt because a pair inside them changed.
    pub chunks_rebuilt: usize,
}

/// One direction of one label's edge relation: bounded chunks in ascending
/// pair order, plus per-chunk `(min, max)` pair fences for chunk skipping.
/// Both the chunk list and the fence list live behind `Arc`s so an untouched
/// run is re-shared across epochs with two refcount bumps.
#[derive(Debug, Clone, Default)]
pub(crate) struct EdgeRun {
    pub(crate) chunks: Arc<Vec<Arc<Chunk>>>,
    /// `(first pair, last pair)` per chunk, parallel to the chunk list.
    pub(crate) fences: Arc<Vec<(Pair, Pair)>>,
    pub(crate) len: usize,
}

impl EdgeRun {
    /// Builds a run from pairs already sorted ascending and deduplicated.
    pub(crate) fn from_sorted(pairs: Vec<Pair>) -> EdgeRun {
        debug_assert!(pairs.windows(2).all(|w| w[0] < w[1]), "unsorted run input");
        Self::from_chunks(cut_chunks(pairs))
    }

    /// Builds a run over `chunks`, recomputing fences and the pair total.
    ///
    /// Chunks are never empty by construction; should a corrupt empty chunk
    /// appear anyway, its fence is simply omitted (leaving `fences` shorter
    /// than the chunk list), which the structural audit reports instead of
    /// panicking mid-publish.
    fn from_chunks(chunks: Vec<Arc<Chunk>>) -> EdgeRun {
        let fences = chunks
            .iter()
            .filter_map(|c| Some((*c.first()?, *c.last()?)))
            .collect();
        let len = chunks.iter().map(|c| c.len()).sum();
        EdgeRun {
            chunks: Arc::new(chunks),
            fences: Arc::new(fences),
            len,
        }
    }

    /// Number of pairs stored.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// All pairs in ascending order.
    pub(crate) fn iter(&self) -> impl Iterator<Item = Pair> + '_ {
        self.chunks.iter().flat_map(|c| c.iter().copied())
    }

    /// `true` if `pair` is stored. Fences narrow the probe to at most one
    /// chunk without touching pair data.
    pub(crate) fn contains(&self, pair: Pair) -> bool {
        let i = self.fences.partition_point(|&(_, max)| max < pair);
        self.chunks
            .get(i)
            .is_some_and(|chunk| chunk.binary_search(&pair).is_ok())
    }

    /// The second components of every pair whose first component is `first`,
    /// in ascending order — forward or backward neighbors, depending on which
    /// run this is. Fences skip every chunk that cannot contain `first`.
    pub(crate) fn seconds_for(&self, first: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        let (start, stop) = self.covering_chunks(first);
        self.chunks[start..stop].iter().flat_map(move |chunk| {
            let lo = chunk.partition_point(|&(a, _)| a < first);
            chunk[lo..]
                .iter()
                .take_while(move |&&(a, _)| a == first)
                .map(|&(_, b)| b)
        })
    }

    /// Number of pairs whose first component is `first` (a degree count),
    /// via partition points only.
    pub(crate) fn count_first(&self, first: NodeId) -> usize {
        let (start, stop) = self.covering_chunks(first);
        self.chunks[start..stop]
            .iter()
            .map(|chunk| {
                chunk.partition_point(|&(a, _)| a <= first)
                    - chunk.partition_point(|&(a, _)| a < first)
            })
            .sum()
    }

    /// The chunk range whose fences admit pairs starting with `first` (both
    /// fence bounds are non-decreasing across the run).
    fn covering_chunks(&self, first: NodeId) -> (usize, usize) {
        let start = self.fences.partition_point(|&(_, (max, _))| max < first);
        let stop = start + self.fences[start..].partition_point(|&((min, _), _)| min <= first);
        (start.min(self.chunks.len()), stop.min(self.chunks.len()))
    }

    /// Applies net pair changes (`true` = insert, `false` = remove; sorted by
    /// pair, each a real transition relative to this run) and returns the next
    /// epoch's run. Untouched chunks are re-shared; touched ones are merged
    /// with their changes and re-cut, with undersized rebuilt regions
    /// coalescing into their right neighbor.
    pub(crate) fn apply(&self, ops: &[(Pair, bool)], stats: &mut GraphPublishStats) -> EdgeRun {
        let prev = self.chunks.as_slice();
        let mut out: Vec<Arc<Chunk>> = Vec::with_capacity(prev.len() + 1);
        let mut pending: Vec<Pair> = Vec::new();
        let mut oi = 0usize;
        for (ci, chunk) in prev.iter().enumerate() {
            // Pairs strictly below the next chunk's first pair belong to this
            // chunk (the first chunk also takes everything below it).
            let upper = prev.get(ci + 1).and_then(|c| c.first()).copied();
            let start = oi;
            while oi < ops.len() && upper.is_none_or(|u| ops[oi].0 < u) {
                oi += 1;
            }
            let my_ops = &ops[start..oi];
            if my_ops.is_empty() {
                if pending.is_empty() || pending.len() >= CHUNK_MIN {
                    flush_pending(&mut pending, &mut out);
                    out.push(Arc::clone(chunk));
                    stats.chunks_shared += 1;
                } else {
                    // The rebuilt region to our left came out undersized:
                    // coalesce this neighbor into it rather than emitting a
                    // sliver.
                    pending.extend_from_slice(chunk);
                    stats.chunks_rebuilt += 1;
                }
                continue;
            }
            merge_chunk(chunk, my_ops, &mut pending);
            stats.chunks_rebuilt += 1;
            emit_full_chunks(&mut pending, &mut out);
        }
        // A previously-empty run takes all its ops here.
        if prev.is_empty() {
            for &(pair, insert) in ops {
                debug_assert!(insert, "removal from an empty run");
                if insert {
                    pending.push(pair);
                }
            }
        }
        flush_pending(&mut pending, &mut out);
        EdgeRun::from_chunks(out)
    }

    /// Audits this run's chunk/fence invariants under `loc` — the checks the
    /// scan, probe and publish paths silently rely on.
    pub(crate) fn audit(&self, loc: &str, report: &mut AuditReport) {
        report.check(
            "fence-parallel",
            loc,
            self.fences.len() == self.chunks.len(),
            || {
                format!(
                    "{} fences for {} chunks",
                    self.fences.len(),
                    self.chunks.len()
                )
            },
        );
        let mut entries = 0usize;
        let mut prev_last: Option<Pair> = None;
        for (ci, chunk) in self.chunks.iter().enumerate() {
            let cloc = format!("{loc} chunk {ci}");
            report.check("chunk-nonempty", &cloc, !chunk.is_empty(), || {
                "empty chunk stored in run".to_string()
            });
            report.check("chunk-size-max", &cloc, chunk.len() <= CHUNK_MAX, || {
                format!(
                    "{} pairs exceed the CHUNK_MAX bound of {CHUNK_MAX}",
                    chunk.len()
                )
            });
            if ci + 1 < self.chunks.len() {
                report.check("chunk-coalesced", &cloc, chunk.len() >= CHUNK_MIN, || {
                    format!(
                        "non-final chunk of {} pairs is below the CHUNK_MIN coalescing \
                         bound of {CHUNK_MIN}",
                        chunk.len()
                    )
                });
            }
            report.check(
                "chunk-sorted",
                &cloc,
                chunk.windows(2).all(|w| w[0] < w[1]),
                || "pairs are not strictly ascending".to_string(),
            );
            if let (Some(prev), Some(&first)) = (prev_last, chunk.first()) {
                report.check("chunk-disjoint", &cloc, prev < first, || {
                    format!("first pair {first:?} does not follow previous chunk's {prev:?}")
                });
            }
            prev_last = chunk.last().copied();
            if let (Some(&fence), Some(&first), Some(&last)) =
                (self.fences.get(ci), chunk.first(), chunk.last())
            {
                report.check("fence-tight", &cloc, fence == (first, last), || {
                    format!(
                        "fence {fence:?} but true pair bounds are {:?}",
                        (first, last)
                    )
                });
            }
            entries += chunk.len();
        }
        report.check("run-count", loc, entries == self.len, || {
            format!(
                "chunks hold {entries} pairs but the run claims {}",
                self.len
            )
        });
    }
}

/// Cuts a sorted pair list into chunks of at most [`CHUNK_MAX`] (re-cut at
/// [`CHUNK_TARGET`] so freshly built chunks leave headroom).
fn cut_chunks(pairs: Vec<Pair>) -> Vec<Arc<Chunk>> {
    if pairs.len() <= CHUNK_MAX {
        return if pairs.is_empty() {
            Vec::new()
        } else {
            vec![Arc::new(pairs)]
        };
    }
    pairs
        .chunks(CHUNK_TARGET)
        .map(|c| Arc::new(c.to_vec()))
        .collect()
}

/// Emits target-sized chunks while `pending` is at or over [`CHUNK_MAX`] —
/// the single size invariant every emitted chunk obeys.
fn emit_full_chunks(pending: &mut Vec<Pair>, out: &mut Vec<Arc<Chunk>>) {
    while pending.len() >= CHUNK_MAX {
        let rest = pending.split_off(CHUNK_TARGET);
        out.push(Arc::new(std::mem::replace(pending, rest)));
    }
}

/// Emits all of `pending` as chunks (target-sized while full, then the rest).
fn flush_pending(pending: &mut Vec<Pair>, out: &mut Vec<Arc<Chunk>>) {
    emit_full_chunks(pending, out);
    if !pending.is_empty() {
        out.push(Arc::new(std::mem::take(pending)));
    }
}

/// Merges one chunk's pairs with its sorted net changes into `pending`.
fn merge_chunk(chunk: &[Pair], ops: &[(Pair, bool)], pending: &mut Vec<Pair>) {
    let mut pi = 0usize;
    for &(pair, insert) in ops {
        while pi < chunk.len() && chunk[pi] < pair {
            pending.push(chunk[pi]);
            pi += 1;
        }
        let present = pi < chunk.len() && chunk[pi] == pair;
        if insert {
            debug_assert!(!present, "inserted pair {pair:?} already present");
            pending.push(pair);
        } else {
            debug_assert!(present, "removed pair {pair:?} not present");
        }
        if present {
            pi += 1;
        }
    }
    pending.extend_from_slice(&chunk[pi..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pairs_of(run: &EdgeRun) -> Vec<Pair> {
        run.iter().collect()
    }

    fn chain(n: u32) -> Vec<Pair> {
        (0..n).map(|i| (NodeId(i), NodeId(i + 1))).collect()
    }

    #[test]
    fn from_sorted_roundtrips_and_cuts_chunks() {
        let pairs = chain(3 * CHUNK_MAX as u32);
        let run = EdgeRun::from_sorted(pairs.clone());
        assert_eq!(run.len(), pairs.len());
        assert_eq!(pairs_of(&run), pairs);
        assert!(run.chunks.len() > 1, "a long run must span several chunks");
        assert!(run.chunks.iter().all(|c| c.len() <= CHUNK_MAX));
    }

    #[test]
    fn contains_and_seconds_use_fences() {
        let run = EdgeRun::from_sorted(chain(4 * CHUNK_MAX as u32));
        assert!(run.contains((NodeId(0), NodeId(1))));
        assert!(!run.contains((NodeId(0), NodeId(2))));
        let mid = 2 * CHUNK_MAX as u32;
        assert_eq!(
            run.seconds_for(NodeId(mid)).collect::<Vec<_>>(),
            vec![NodeId(mid + 1)]
        );
        assert_eq!(run.count_first(NodeId(mid)), 1);
        assert_eq!(run.count_first(NodeId(u32::MAX)), 0);
    }

    #[test]
    fn apply_shares_untouched_chunks() {
        let run = EdgeRun::from_sorted(chain(4 * CHUNK_MAX as u32));
        let mut stats = GraphPublishStats::default();
        // Touch one pair near the front: every later chunk must be the same
        // allocation in the next epoch.
        let next = run.apply(&[((NodeId(0), NodeId(7)), true)], &mut stats);
        assert_eq!(next.len(), run.len() + 1);
        assert!(stats.chunks_rebuilt >= 1);
        assert!(stats.chunks_shared >= run.chunks.len() - 2);
        let shared = next
            .chunks
            .iter()
            .filter(|c| run.chunks.iter().any(|o| Arc::ptr_eq(o, c)))
            .count();
        assert!(shared >= run.chunks.len() - 2, "chunks were not re-shared");
    }

    #[test]
    fn apply_matches_a_sorted_rebuild_under_churn() {
        let mut reference: Vec<Pair> = chain(3 * CHUNK_MAX as u32);
        let mut run = EdgeRun::from_sorted(reference.clone());
        for round in 0..4u32 {
            let mut ops: Vec<(Pair, bool)> = Vec::new();
            for i in (round..3 * CHUNK_MAX as u32).step_by(5) {
                let pair = (NodeId(i), NodeId(i + 1));
                let present = reference.binary_search(&pair).is_ok();
                ops.push((pair, !present));
                if present {
                    reference.retain(|&p| p != pair);
                } else {
                    let at = reference.partition_point(|&p| p < pair);
                    reference.insert(at, pair);
                }
            }
            ops.sort_unstable_by_key(|&(p, _)| p);
            let mut stats = GraphPublishStats::default();
            run = run.apply(&ops, &mut stats);
            assert_eq!(pairs_of(&run), reference, "round {round}");
            assert!(stats.chunks_rebuilt > 0, "round {round}");
        }
    }

    #[test]
    fn delete_heavy_churn_does_not_fragment() {
        let n = 8 * CHUNK_MAX as u32;
        let mut run = EdgeRun::from_sorted(chain(n));
        for offset in 0..15u32 {
            let ops: Vec<(Pair, bool)> = (offset..n)
                .step_by(16)
                .map(|i| ((NodeId(i), NodeId(i + 1)), false))
                .collect();
            let mut stats = GraphPublishStats::default();
            run = run.apply(&ops, &mut stats);
        }
        let live = run.len();
        assert_eq!(live, n as usize / 16);
        assert!(
            run.chunks.len() <= live / CHUNK_MIN + 2,
            "run stayed fragmented: {} chunks for {live} live pairs",
            run.chunks.len()
        );
    }

    #[test]
    fn audit_is_clean_on_built_and_churned_runs() {
        let mut run = EdgeRun::from_sorted(chain(3 * CHUNK_MAX as u32));
        let mut report = AuditReport::new();
        run.audit("fresh", &mut report);
        let mut stats = GraphPublishStats::default();
        run = run.apply(&[((NodeId(1), NodeId(9)), true)], &mut stats);
        run.audit("churned", &mut report);
        assert!(report.is_clean(), "{:?}", report.violations());
    }
}
