//! Mutable construction of [`Graph`] snapshots.

use crate::dict::{Dictionary, Vocabulary};
use crate::graph::{Graph, LabelAdjacency};
use crate::ids::{LabelId, NodeId};
use crate::runs::{EdgeRun, GraphPublishStats};
use std::sync::Arc;

/// Incrementally accumulates nodes and labeled edges, then freezes them into
/// an immutable [`Graph`].
///
/// Duplicate edges (same source, label and target) are deduplicated at build
/// time; the edge count reported by the resulting graph counts distinct
/// labeled edges, matching the paper's set-based edge relations.
#[derive(Debug, Default, Clone)]
pub struct GraphBuilder {
    node_dict: Dictionary,
    label_dict: Dictionary,
    edges: Vec<(LabelId, NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a builder pre-sized for roughly `nodes` nodes and `edges`
    /// edges.
    pub fn with_capacity(edges: usize) -> Self {
        GraphBuilder {
            edges: Vec::with_capacity(edges),
            ..Self::default()
        }
    }

    /// Interns a node by name, returning its id. Useful for adding isolated
    /// nodes or pre-registering names in a fixed order.
    pub fn add_node(&mut self, name: &str) -> NodeId {
        NodeId(self.node_dict.intern(name))
    }

    /// Interns a label by name, returning its id.
    pub fn add_label(&mut self, name: &str) -> LabelId {
        let code = self.label_dict.intern(name);
        assert!(
            code < (1 << 15),
            "pathix supports at most 2^15 distinct labels"
        );
        LabelId(code as u16)
    }

    /// Adds the labeled edge `label(src, dst)` using node and label names.
    pub fn add_edge_named(&mut self, src: &str, label: &str, dst: &str) {
        let s = self.add_node(src);
        let l = self.add_label(label);
        let d = self.add_node(dst);
        self.add_edge(s, l, d);
    }

    /// Adds the labeled edge `label(src, dst)` using already-interned ids.
    ///
    /// Node ids created through [`GraphBuilder::add_node`] (or numeric nodes
    /// added through [`GraphBuilder::add_edge_numeric`]) are required;
    /// passing ids that were never interned results in a panic at build time.
    pub fn add_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) {
        self.edges.push((label, src, dst));
    }

    /// Convenience for synthetic generators that work with numeric node ids:
    /// node `i` is interned under the name `i.to_string()`.
    pub fn add_edge_numeric(&mut self, src: u64, label: &str, dst: u64) {
        let s = self.add_node(&src.to_string());
        let l = self.add_label(label);
        let d = self.add_node(&dst.to_string());
        self.add_edge(s, l, d);
    }

    /// Number of edges added so far (before deduplication).
    pub fn pending_edges(&self) -> usize {
        self.edges.len()
    }

    /// Number of nodes interned so far.
    pub fn pending_nodes(&self) -> usize {
        self.node_dict.len()
    }

    /// Freezes the builder into an immutable [`Graph`].
    pub fn build(self) -> Graph {
        let node_count = self.node_dict.len();
        let label_count = self.label_dict.len();
        let mut edges_by_label: Vec<Vec<(NodeId, NodeId)>> = vec![Vec::new(); label_count];
        for (l, s, d) in &self.edges {
            assert!(
                s.index() < node_count && d.index() < node_count,
                "edge endpoint was not interned via the builder"
            );
            edges_by_label[l.index()].push((*s, *d));
        }
        let mut edge_count = 0;
        let mut labels = Vec::with_capacity(label_count);
        for mut per_label in edges_by_label {
            per_label.sort_unstable();
            per_label.dedup();
            edge_count += per_label.len();
            let mut reversed: Vec<(NodeId, NodeId)> =
                per_label.iter().map(|&(s, d)| (d, s)).collect();
            reversed.sort_unstable();
            labels.push(LabelAdjacency {
                forward: EdgeRun::from_sorted(per_label),
                backward: EdgeRun::from_sorted(reversed),
            });
        }
        let vocab = Arc::new(Vocabulary::from_dictionaries(
            self.node_dict,
            self.label_dict,
        ));
        let nodes_view = vocab.nodes.freeze(node_count as u32);
        let labels_view = vocab.labels.freeze(label_count as u32);
        Graph {
            vocab,
            nodes_view,
            labels_view,
            labels: Arc::new(labels),
            edge_count,
            last_publish: GraphPublishStats::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::SignedLabel;

    #[test]
    fn duplicate_edges_are_deduplicated() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("a", "x", "b");
        b.add_edge_named("a", "x", "c");
        assert_eq!(b.pending_edges(), 3);
        let g = b.build();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn isolated_nodes_are_counted() {
        let mut b = GraphBuilder::new();
        b.add_node("lonely");
        b.add_edge_named("a", "x", "b");
        let g = b.build();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 1);
        let lonely = g.node_id("lonely").unwrap();
        assert_eq!(g.total_degree(lonely), 0);
    }

    #[test]
    fn numeric_edges_intern_by_decimal_name() {
        let mut b = GraphBuilder::new();
        b.add_edge_numeric(10, "e", 20);
        let g = b.build();
        assert!(g.node_id("10").is_some());
        assert!(g.node_id("20").is_some());
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn self_loops_are_supported() {
        let mut b = GraphBuilder::new();
        b.add_edge_named("a", "x", "a");
        let g = b.build();
        let a = g.node_id("a").unwrap();
        let x = g.label_id("x").unwrap();
        assert!(g.has_edge(a, x, a));
        assert_eq!(
            g.neighbors(a, SignedLabel::forward(x)).collect::<Vec<_>>(),
            vec![a]
        );
        assert_eq!(
            g.neighbors(a, SignedLabel::backward(x)).collect::<Vec<_>>(),
            vec![a]
        );
    }

    #[test]
    fn empty_builder_builds_empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.label_count(), 0);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = GraphBuilder::with_capacity(16);
        b.add_edge_named("a", "x", "b");
        assert_eq!(b.pending_nodes(), 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
    }
}
