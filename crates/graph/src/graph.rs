//! The edge-labeled graph: bulk-built via [`crate::GraphBuilder`], then
//! optionally mutated edge-by-edge for live updates.

use crate::csr::Csr;
use crate::dict::Dictionary;
use crate::ids::{LabelId, NodeId, SignedLabel};

/// A finite, directed, edge-labeled graph (Section 2.1 of the paper).
///
/// Built in bulk via [`crate::GraphBuilder`]; all query and indexing
/// machinery treats a shared `&Graph` as a consistent snapshot. The **edge
/// set** can additionally be mutated in place over the fixed node/label
/// vocabulary ([`Graph::insert_edge`] / [`Graph::remove_edge`]) — this is the
/// maintenance path `PathDb::apply` uses to keep a private copy of the
/// adjacency in sync with incremental index updates before publishing it.
/// Per label the graph stores the deduplicated edge relation sorted by
/// `(source, target)` plus forward and backward CSR adjacency, so both `ℓ`
/// and `ℓ⁻` navigation are O(degree).
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) node_dict: Dictionary,
    pub(crate) label_dict: Dictionary,
    /// Per label: edge list sorted by `(src, dst)`, deduplicated.
    pub(crate) edges_by_label: Vec<Vec<(NodeId, NodeId)>>,
    /// Per label: forward adjacency (src → dst).
    pub(crate) forward: Vec<Csr>,
    /// Per label: backward adjacency (dst → src).
    pub(crate) backward: Vec<Csr>,
    pub(crate) edge_count: usize,
}

impl Graph {
    /// Number of nodes (size of `nodes(G)` plus any isolated nodes that were
    /// explicitly added).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.node_dict.len()
    }

    /// Total number of distinct labeled edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Size of the vocabulary `L`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.label_dict.len()
    }

    /// Iterator over all node ids `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all label ids.
    pub fn labels(&self) -> impl Iterator<Item = LabelId> {
        (0..self.label_count() as u16).map(LabelId)
    }

    /// Iterator over the signed alphabet `{ℓ, ℓ⁻ | ℓ ∈ L}` in
    /// `(label, direction)` order.
    pub fn signed_labels(&self) -> impl Iterator<Item = SignedLabel> {
        (0..self.label_count() as u16).flat_map(|l| {
            [
                SignedLabel::forward(LabelId(l)),
                SignedLabel::backward(LabelId(l)),
            ]
        })
    }

    /// The edge relation `ℓ^G`, sorted by `(source, target)` and
    /// deduplicated.
    pub fn edges(&self, label: LabelId) -> &[(NodeId, NodeId)] {
        self.edges_by_label
            .get(label.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The pair relation of a signed label: `ℓ^G` itself, or its converse for
    /// `ℓ⁻`. The result is sorted by `(source, target)`.
    pub fn signed_pairs(&self, sl: SignedLabel) -> Vec<(NodeId, NodeId)> {
        let edges = self.edges(sl.label);
        if !sl.is_backward() {
            return edges.to_vec();
        }
        let mut rev: Vec<(NodeId, NodeId)> = edges.iter().map(|&(s, t)| (t, s)).collect();
        rev.sort_unstable();
        rev
    }

    /// Neighbors reachable from `node` over one occurrence of `sl`
    /// (forward edges for `ℓ`, reverse edges for `ℓ⁻`), in ascending order.
    #[inline]
    pub fn neighbors(&self, node: NodeId, sl: SignedLabel) -> &[NodeId] {
        let per_label = if sl.is_backward() {
            &self.backward
        } else {
            &self.forward
        };
        per_label
            .get(sl.label.index())
            .map(|csr| csr.neighbors(node))
            .unwrap_or(&[])
    }

    /// Out-degree of `node` under label `ℓ`.
    pub fn out_degree(&self, node: NodeId, label: LabelId) -> usize {
        self.neighbors(node, SignedLabel::forward(label)).len()
    }

    /// In-degree of `node` under label `ℓ`.
    pub fn in_degree(&self, node: NodeId, label: LabelId) -> usize {
        self.neighbors(node, SignedLabel::backward(label)).len()
    }

    /// Total degree of `node` over every label and both directions.
    pub fn total_degree(&self, node: NodeId) -> usize {
        self.labels()
            .map(|l| self.out_degree(node, l) + self.in_degree(node, l))
            .sum()
    }

    /// `true` if the edge `ℓ(src, dst)` exists.
    pub fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.forward
            .get(label.index())
            .map(|csr| csr.contains(src, dst))
            .unwrap_or(false)
    }

    /// Resolves a node name to its id.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.node_dict.code(name).map(NodeId)
    }

    /// Resolves a node id back to its external name.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.node_dict.name(node.0)
    }

    /// Resolves a label name to its id.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.label_dict.code(name).map(|c| LabelId(c as u16))
    }

    /// Resolves a label id back to its external name.
    pub fn label_name(&self, label: LabelId) -> Option<&str> {
        self.label_dict.name(label.0 as u32)
    }

    /// All label names in id order.
    pub fn label_names(&self) -> Vec<&str> {
        self.label_dict.iter().map(|(_, s)| s).collect()
    }

    /// Number of edges carrying `label`.
    pub fn label_edge_count(&self, label: LabelId) -> usize {
        self.edges(label).len()
    }

    /// Inserts the labeled edge `label(src, dst)` in place, keeping the
    /// sorted edge relation and both CSR adjacencies consistent. Returns
    /// `false` (and changes nothing) if the edge is already present.
    ///
    /// Both endpoints and the label must already be interned — live updates
    /// mutate the edge set over a fixed vocabulary, matching the delta rules
    /// of the incremental k-path index.
    ///
    /// # Panics
    /// Panics if `src`, `dst` or `label` were never interned.
    pub fn insert_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.check_update_ids(src, label, dst);
        let edges = &mut self.edges_by_label[label.index()];
        let pos = match edges.binary_search(&(src, dst)) {
            Ok(_) => return false,
            Err(pos) => pos,
        };
        edges.insert(pos, (src, dst));
        self.forward[label.index()].insert(src, dst);
        self.backward[label.index()].insert(dst, src);
        self.edge_count += 1;
        true
    }

    /// Removes the labeled edge `label(src, dst)` in place. Returns `false`
    /// if the edge is absent.
    ///
    /// # Panics
    /// Panics if `src`, `dst` or `label` were never interned.
    pub fn remove_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.check_update_ids(src, label, dst);
        let edges = &mut self.edges_by_label[label.index()];
        let pos = match edges.binary_search(&(src, dst)) {
            Ok(pos) => pos,
            Err(_) => return false,
        };
        edges.remove(pos);
        self.forward[label.index()].remove(src, dst);
        self.backward[label.index()].remove(dst, src);
        self.edge_count -= 1;
        true
    }

    fn check_update_ids(&self, src: NodeId, label: LabelId, dst: NodeId) {
        assert!(
            src.index() < self.node_count() && dst.index() < self.node_count(),
            "edge endpoint was not interned in this graph"
        );
        assert!(
            label.index() < self.label_count(),
            "edge label was not interned in this graph"
        );
    }

    /// Renders a human-readable label-path string such as `knows/worksFor-`
    /// for diagnostics and explain output.
    pub fn format_signed_label(&self, sl: SignedLabel) -> String {
        let name = self
            .label_name(sl.label)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("l{}", sl.label.0));
        if sl.is_backward() {
            format!("{name}-")
        } else {
            name
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named("ada", "knows", "jan");
        b.add_edge_named("jan", "knows", "zoe");
        b.add_edge_named("zoe", "worksFor", "ada");
        b.add_edge_named("ada", "knows", "zoe");
        b.build()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.label_count(), 2);
    }

    #[test]
    fn name_resolution_roundtrip() {
        let g = sample();
        for name in ["ada", "jan", "zoe"] {
            let id = g.node_id(name).unwrap();
            assert_eq!(g.node_name(id), Some(name));
        }
        for name in ["knows", "worksFor"] {
            let id = g.label_id(name).unwrap();
            assert_eq!(g.label_name(id), Some(name));
        }
        assert_eq!(g.node_id("nobody"), None);
        assert_eq!(g.label_id("likes"), None);
    }

    #[test]
    fn forward_and_backward_navigation() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let zoe = g.node_id("zoe").unwrap();

        assert_eq!(g.neighbors(ada, SignedLabel::forward(knows)), &[jan, zoe]);
        assert_eq!(g.neighbors(zoe, SignedLabel::backward(knows)), &[ada, jan]);
        assert_eq!(g.out_degree(ada, knows), 2);
        assert_eq!(g.in_degree(zoe, knows), 2);
        assert_eq!(g.total_degree(ada), 3);
    }

    #[test]
    fn signed_pairs_are_sorted_and_converse() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let fwd = g.signed_pairs(SignedLabel::forward(knows));
        let bwd = g.signed_pairs(SignedLabel::backward(knows));
        assert_eq!(fwd.len(), bwd.len());
        let mut expect: Vec<_> = fwd.iter().map(|&(s, t)| (t, s)).collect();
        expect.sort_unstable();
        assert_eq!(bwd, expect);
        assert!(fwd.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn has_edge_checks_direction_and_label() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let works = g.label_id("worksFor").unwrap();
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let zoe = g.node_id("zoe").unwrap();
        assert!(g.has_edge(ada, knows, jan));
        assert!(!g.has_edge(jan, knows, ada));
        assert!(g.has_edge(zoe, works, ada));
        assert!(!g.has_edge(zoe, knows, ada));
    }

    #[test]
    fn signed_labels_enumerates_alphabet_in_order() {
        let g = sample();
        let alphabet: Vec<_> = g.signed_labels().collect();
        assert_eq!(alphabet.len(), 4);
        assert!(alphabet.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn insert_edge_updates_relation_and_both_adjacencies() {
        let mut g = sample();
        let knows = g.label_id("knows").unwrap();
        let jan = g.node_id("jan").unwrap();
        let ada = g.node_id("ada").unwrap();
        assert!(!g.has_edge(jan, knows, ada));
        assert!(g.insert_edge(jan, knows, ada));
        assert!(!g.insert_edge(jan, knows, ada), "duplicate is a no-op");
        assert_eq!(g.edge_count(), 5);
        assert!(g.has_edge(jan, knows, ada));
        assert!(g.neighbors(jan, SignedLabel::forward(knows)).contains(&ada));
        assert!(g
            .neighbors(ada, SignedLabel::backward(knows))
            .contains(&jan));
        assert!(g.edges(knows).windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_edge_restores_the_previous_state() {
        let mut g = sample();
        let knows = g.label_id("knows").unwrap();
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let before_edges = g.edges(knows).to_vec();
        let zoe = g.node_id("zoe").unwrap();
        assert!(g.insert_edge(jan, knows, ada));
        assert!(g.remove_edge(jan, knows, ada));
        assert_eq!(g.edges(knows), &before_edges[..]);
        assert_eq!(g.edge_count(), 4);
        assert!(!g.remove_edge(jan, knows, ada), "absent removal is a no-op");
        // Removing a real edge drops it from both directions.
        assert!(g.remove_edge(ada, knows, zoe));
        assert!(!g.has_edge(ada, knows, zoe));
        assert!(!g
            .neighbors(zoe, SignedLabel::backward(knows))
            .contains(&ada));
    }

    #[test]
    #[should_panic(expected = "was not interned")]
    fn inserting_with_unknown_node_panics() {
        let mut g = sample();
        let knows = g.label_id("knows").unwrap();
        g.insert_edge(NodeId(99), knows, NodeId(0));
    }

    #[test]
    fn format_signed_label_uses_names() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.format_signed_label(SignedLabel::forward(knows)), "knows");
        assert_eq!(
            g.format_signed_label(SignedLabel::backward(knows)),
            "knows-"
        );
    }
}
