//! The edge-labeled graph: bulk-built via [`crate::GraphBuilder`], then grown
//! in O(Δ) epochs through shared-structure update batches.

use crate::dict::{DictView, Vocabulary};
use crate::ids::{LabelId, NodeId, SignedLabel};
use crate::runs::{EdgeRun, GraphPublishStats, Pair};
use pathix_audit::{AuditReport, StructuralAudit};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Both directions of one label's edge relation, chunked and `Arc`-shared
/// (see [`crate::runs`]).
#[derive(Debug, Clone, Default)]
pub(crate) struct LabelAdjacency {
    /// `(source, target)` pairs, ascending.
    pub(crate) forward: EdgeRun,
    /// `(target, source)` pairs, ascending — the converse relation, so `ℓ⁻`
    /// navigation is as cheap as `ℓ`.
    pub(crate) backward: EdgeRun,
}

/// One edge mutation, already resolved to interned ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeOp {
    pub src: NodeId,
    pub label: LabelId,
    pub dst: NodeId,
    /// `true` inserts the edge, `false` removes it.
    pub insert: bool,
}

impl EdgeOp {
    /// An edge insertion.
    pub fn insert(src: NodeId, label: LabelId, dst: NodeId) -> Self {
        EdgeOp {
            src,
            label,
            dst,
            insert: true,
        }
    }

    /// An edge removal.
    pub fn delete(src: NodeId, label: LabelId, dst: NodeId) -> Self {
        EdgeOp {
            src,
            label,
            dst,
            insert: false,
        }
    }
}

/// First and last transition a `(label, src, dst)` key went through inside
/// one batch: equal means apply, opposed means the key ended where it began.
#[derive(Debug, Clone, Copy)]
struct NetOp {
    first: bool,
    last: bool,
}

/// The vocabulary side of an in-flight update batch: the next epoch's node
/// and label counts, growing as the writer interns unseen names into the
/// shared store. Existing snapshots keep their frozen lengths — a name
/// interned here only becomes visible in the graph returned by
/// [`Graph::commit_batch`].
#[derive(Debug)]
pub struct VocabBatch {
    vocab: Arc<Vocabulary>,
    node_len: u32,
    label_len: u32,
}

impl VocabBatch {
    /// Resolves a node name against the batch-visible vocabulary.
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.vocab.nodes.lookup(name, self.node_len).map(NodeId)
    }

    /// Resolves a label name against the batch-visible vocabulary.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.vocab
            .labels
            .lookup(name, self.label_len)
            .map(|c| LabelId(c as u16))
    }

    /// Interns a node name, returning its id (existing names keep theirs).
    pub fn intern_node(&mut self, name: &str) -> NodeId {
        let code = self.vocab.nodes.intern(name);
        self.node_len = self.node_len.max(code + 1);
        NodeId(code)
    }

    /// Interns a label name, returning its id.
    ///
    /// # Panics
    /// Panics when the label vocabulary would exceed `2^15` entries (the
    /// same bound [`crate::GraphBuilder::add_label`] enforces).
    pub fn intern_label(&mut self, name: &str) -> LabelId {
        let code = self.vocab.labels.intern(name);
        assert!(
            code < (1 << 15),
            "pathix supports at most 2^15 distinct labels"
        );
        self.label_len = self.label_len.max(code + 1);
        LabelId(code as u16)
    }

    /// The node count the committed graph will report.
    pub fn node_count(&self) -> usize {
        self.node_len as usize
    }

    /// The label count the committed graph will report.
    pub fn label_count(&self) -> usize {
        self.label_len as usize
    }
}

/// A finite, directed, edge-labeled graph (Section 2.1 of the paper).
///
/// Built in bulk via [`crate::GraphBuilder`]; all query and indexing
/// machinery treats a shared `&Graph` as a consistent snapshot. A graph value
/// is an **epoch** over structurally shared storage:
///
/// * per label, the edge relation and its converse live in bounded immutable
///   chunks behind `Arc`s ([`crate::runs`]), so cloning a graph and
///   committing an update batch ([`Graph::commit_batch`]) both cost O(Δ)
///   rather than O(V + E) — untouched chunks are re-shared by refcount bump;
/// * the node/label vocabulary is one shared append-only store
///   ([`crate::dict::Vocabulary`]); each epoch sees a frozen prefix through
///   lock-free [`DictView`]s while the writer interns new names live.
///
/// [`Graph::insert_edge`] / [`Graph::remove_edge`] keep the historical
/// edge-at-a-time mutation API as thin wrappers over a one-op batch.
#[derive(Debug, Clone)]
pub struct Graph {
    pub(crate) vocab: Arc<Vocabulary>,
    pub(crate) nodes_view: DictView,
    pub(crate) labels_view: DictView,
    /// Per label adjacency, indexed by label id; `labels.len()` always
    /// equals the visible label count.
    pub(crate) labels: Arc<Vec<LabelAdjacency>>,
    pub(crate) edge_count: usize,
    pub(crate) last_publish: GraphPublishStats,
}

impl Graph {
    /// An empty graph over an empty vocabulary — the seed for pure-streaming
    /// ingest, where every node, label and edge arrives through update
    /// batches.
    pub fn empty() -> Graph {
        crate::builder::GraphBuilder::new().build()
    }

    /// Number of nodes (size of `nodes(G)` plus any isolated nodes that were
    /// explicitly added).
    #[inline]
    pub fn node_count(&self) -> usize {
        self.nodes_view.len()
    }

    /// Total number of distinct labeled edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Size of the vocabulary `L`.
    #[inline]
    pub fn label_count(&self) -> usize {
        self.labels_view.len()
    }

    /// Iterator over all node ids `0..node_count`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count() as u32).map(NodeId)
    }

    /// Iterator over all label ids.
    pub fn labels(&self) -> impl Iterator<Item = LabelId> {
        (0..self.label_count() as u16).map(LabelId)
    }

    /// Iterator over the signed alphabet `{ℓ, ℓ⁻ | ℓ ∈ L}` in
    /// `(label, direction)` order.
    pub fn signed_labels(&self) -> impl Iterator<Item = SignedLabel> {
        (0..self.label_count() as u16).flat_map(|l| {
            [
                SignedLabel::forward(LabelId(l)),
                SignedLabel::backward(LabelId(l)),
            ]
        })
    }

    fn adjacency(&self, label: LabelId) -> Option<&LabelAdjacency> {
        self.labels.get(label.index())
    }

    /// The edge relation `ℓ^G` in ascending `(source, target)` order,
    /// deduplicated, streamed chunk by chunk.
    pub fn edges(&self, label: LabelId) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.adjacency(label)
            .map(|a| a.forward.iter())
            .into_iter()
            .flatten()
    }

    /// The pair relation of a signed label: `ℓ^G` itself, or its converse for
    /// `ℓ⁻`. The result is sorted by `(source, target)` — for `ℓ⁻` this is
    /// the stored converse run, so no re-sort is needed.
    pub fn signed_pairs(&self, sl: SignedLabel) -> Vec<(NodeId, NodeId)> {
        self.adjacency(sl.label)
            .map(|a| {
                if sl.is_backward() {
                    a.backward.iter().collect()
                } else {
                    a.forward.iter().collect()
                }
            })
            .unwrap_or_default()
    }

    /// Neighbors reachable from `node` over one occurrence of `sl`
    /// (forward edges for `ℓ`, reverse edges for `ℓ⁻`), in ascending order.
    pub fn neighbors(&self, node: NodeId, sl: SignedLabel) -> impl Iterator<Item = NodeId> + '_ {
        self.adjacency(sl.label)
            .map(|a| {
                if sl.is_backward() {
                    a.backward.seconds_for(node)
                } else {
                    a.forward.seconds_for(node)
                }
            })
            .into_iter()
            .flatten()
    }

    /// Out-degree of `node` under label `ℓ`.
    pub fn out_degree(&self, node: NodeId, label: LabelId) -> usize {
        self.adjacency(label)
            .map_or(0, |a| a.forward.count_first(node))
    }

    /// In-degree of `node` under label `ℓ`.
    pub fn in_degree(&self, node: NodeId, label: LabelId) -> usize {
        self.adjacency(label)
            .map_or(0, |a| a.backward.count_first(node))
    }

    /// Total degree of `node` over every label and both directions.
    pub fn total_degree(&self, node: NodeId) -> usize {
        self.labels()
            .map(|l| self.out_degree(node, l) + self.in_degree(node, l))
            .sum()
    }

    /// `true` if the edge `ℓ(src, dst)` exists.
    pub fn has_edge(&self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.adjacency(label)
            .is_some_and(|a| a.forward.contains((src, dst)))
    }

    /// Resolves a node name to its id (restricted to this epoch's frozen
    /// vocabulary prefix; takes a brief read lock on the shared name map).
    pub fn node_id(&self, name: &str) -> Option<NodeId> {
        self.vocab
            .nodes
            .lookup(name, self.nodes_view.len)
            .map(NodeId)
    }

    /// Resolves a node id back to its external name — lock-free through this
    /// epoch's frozen view.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.nodes_view.name(node.0)
    }

    /// Resolves a label name to its id.
    pub fn label_id(&self, name: &str) -> Option<LabelId> {
        self.vocab
            .labels
            .lookup(name, self.labels_view.len)
            .map(|c| LabelId(c as u16))
    }

    /// Resolves a label id back to its external name — lock-free.
    pub fn label_name(&self, label: LabelId) -> Option<&str> {
        self.labels_view.name(label.0 as u32)
    }

    /// All label names in id order.
    pub fn label_names(&self) -> Vec<&str> {
        self.labels_view.iter().map(|(_, s)| s).collect()
    }

    /// Number of edges carrying `label`.
    pub fn label_edge_count(&self, label: LabelId) -> usize {
        self.adjacency(label).map_or(0, |a| a.forward.len())
    }

    /// Opens a vocabulary batch against this epoch: name lookups see this
    /// graph's frozen prefix plus whatever the batch itself interns. Hand the
    /// batch back to [`Graph::commit_batch`] to publish the next epoch.
    pub fn vocab_batch(&self) -> VocabBatch {
        VocabBatch {
            vocab: Arc::clone(&self.vocab),
            node_len: self.nodes_view.len,
            label_len: self.labels_view.len,
        }
    }

    /// Publishes the next epoch: applies `ops` (net first/last-transition
    /// semantics per `(label, src, dst)` key — an edge inserted and deleted
    /// within one batch is a no-op) and adopts the batch's vocabulary
    /// growth. Only the chunks containing a changed pair are rebuilt;
    /// untouched labels and chunks are re-shared by refcount bump, so the
    /// cost is O(Δ · chunk + labels), never O(V + E). `self` is untouched —
    /// readers of this epoch keep a bit-stable view.
    ///
    /// # Panics
    /// Panics if an op references an id outside the batch's vocabulary, or
    /// if `batch` came from a different graph lineage.
    pub fn commit_batch(&self, batch: VocabBatch, ops: &[EdgeOp]) -> Graph {
        assert!(
            Arc::ptr_eq(&self.vocab, &batch.vocab),
            "vocab batch belongs to a different graph lineage"
        );
        let mut net: BTreeMap<(LabelId, Pair), NetOp> = BTreeMap::new();
        for op in ops {
            assert!(
                op.src.0 < batch.node_len && op.dst.0 < batch.node_len,
                "edge endpoint was not interned in this graph"
            );
            assert!(
                (op.label.0 as u32) < batch.label_len,
                "edge label was not interned in this graph"
            );
            net.entry((op.label, (op.src, op.dst)))
                .and_modify(|n| n.last = op.insert)
                .or_insert(NetOp {
                    first: op.insert,
                    last: op.insert,
                });
        }
        // Per label, the net ops that actually change the stored relation
        // (BTreeMap iteration keeps each label's pairs ascending).
        let mut per_label: BTreeMap<LabelId, Vec<(Pair, bool)>> = BTreeMap::new();
        for ((label, pair), op) in net {
            if op.first != op.last {
                continue;
            }
            let present = self
                .adjacency(label)
                .is_some_and(|a| a.forward.contains(pair));
            if op.first == present {
                continue;
            }
            per_label.entry(label).or_default().push((pair, op.first));
        }

        let mut stats = GraphPublishStats::default();
        let mut edge_count = self.edge_count;
        let mut labels = Vec::with_capacity(batch.label_len as usize);
        for l in 0..batch.label_len as u16 {
            let prev = self.labels.get(l as usize);
            match per_label.get(&LabelId(l)) {
                Some(label_ops) => {
                    stats.labels_rebuilt += 1;
                    let base = prev.cloned().unwrap_or_default();
                    let mut converse: Vec<(Pair, bool)> = label_ops
                        .iter()
                        .map(|&((s, t), insert)| ((t, s), insert))
                        .collect();
                    converse.sort_unstable_by_key(|&(p, _)| p);
                    for &(_, insert) in label_ops {
                        if insert {
                            edge_count += 1;
                        } else {
                            edge_count -= 1;
                        }
                    }
                    labels.push(LabelAdjacency {
                        forward: base.forward.apply(label_ops, &mut stats),
                        backward: base.backward.apply(&converse, &mut stats),
                    });
                }
                None => {
                    stats.labels_shared += 1;
                    match prev {
                        Some(adj) => {
                            stats.chunks_shared +=
                                adj.forward.chunks.len() + adj.backward.chunks.len();
                            labels.push(adj.clone());
                        }
                        None => labels.push(LabelAdjacency::default()),
                    }
                }
            }
        }

        // Re-freeze a view only when the vocabulary actually grew; otherwise
        // re-share this epoch's view with an `Arc` bump.
        let nodes_view = if batch.node_len == self.nodes_view.len {
            self.nodes_view.clone()
        } else {
            self.vocab.nodes.freeze(batch.node_len)
        };
        let labels_view = if batch.label_len == self.labels_view.len {
            self.labels_view.clone()
        } else {
            self.vocab.labels.freeze(batch.label_len)
        };
        Graph {
            vocab: batch.vocab,
            nodes_view,
            labels_view,
            labels: Arc::new(labels),
            edge_count,
            last_publish: stats,
        }
    }

    /// What the most recent [`Graph::commit_batch`] (or the edge-at-a-time
    /// wrappers) reused versus rebuilt — all zeros on a bulk-built graph.
    pub fn last_publish_stats(&self) -> GraphPublishStats {
        self.last_publish
    }

    /// Total number of adjacency chunks across all labels and both
    /// directions.
    pub fn chunk_count(&self) -> usize {
        self.labels
            .iter()
            .map(|a| a.forward.chunks.len() + a.backward.chunks.len())
            .sum()
    }

    /// Total names interned into the shared vocabulary store across the whole
    /// graph lineage, as `(nodes, labels)` — at least this epoch's visible
    /// counts, more when later epochs (or in-flight batches) grew it.
    pub fn vocab_interned(&self) -> (usize, usize) {
        (self.vocab.nodes.len(), self.vocab.labels.len())
    }

    /// Inserts the labeled edge `label(src, dst)`, publishing a one-op epoch
    /// in place. Returns `false` (and changes nothing) if the edge is
    /// already present.
    ///
    /// # Panics
    /// Panics if `src`, `dst` or `label` were never interned.
    pub fn insert_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.check_update_ids(src, label, dst);
        if self.has_edge(src, label, dst) {
            return false;
        }
        *self = self.commit_batch(self.vocab_batch(), &[EdgeOp::insert(src, label, dst)]);
        true
    }

    /// Removes the labeled edge `label(src, dst)`, publishing a one-op epoch
    /// in place. Returns `false` if the edge is absent.
    ///
    /// # Panics
    /// Panics if `src`, `dst` or `label` were never interned.
    pub fn remove_edge(&mut self, src: NodeId, label: LabelId, dst: NodeId) -> bool {
        self.check_update_ids(src, label, dst);
        if !self.has_edge(src, label, dst) {
            return false;
        }
        *self = self.commit_batch(self.vocab_batch(), &[EdgeOp::delete(src, label, dst)]);
        true
    }

    fn check_update_ids(&self, src: NodeId, label: LabelId, dst: NodeId) {
        assert!(
            src.index() < self.node_count() && dst.index() < self.node_count(),
            "edge endpoint was not interned in this graph"
        );
        assert!(
            label.index() < self.label_count(),
            "edge label was not interned in this graph"
        );
    }

    /// Renders a human-readable label-path string such as `knows/worksFor-`
    /// for diagnostics and explain output.
    pub fn format_signed_label(&self, sl: SignedLabel) -> String {
        let name = self
            .label_name(sl.label)
            .map(str::to_owned)
            .unwrap_or_else(|| format!("l{}", sl.label.0));
        if sl.is_backward() {
            format!("{name}-")
        } else {
            name
        }
    }
}

impl StructuralAudit for Graph {
    /// Walks every label's chunked adjacency and the vocabulary views,
    /// verifying the invariants the navigation and publish paths silently
    /// rely on:
    ///
    /// * `adjacency-arity` — one adjacency entry per visible label;
    /// * per run (both directions): `chunk-nonempty` / `chunk-size-max` /
    ///   `chunk-coalesced` / `chunk-sorted` / `chunk-disjoint` /
    ///   `fence-parallel` / `fence-tight` / `run-count` (see
    ///   [`crate::runs`]);
    /// * `forward-backward-agree` — the backward run is exactly the sorted
    ///   converse of the forward run;
    /// * `endpoint-in-range` — every stored endpoint is a visible node id;
    /// * `edge-count` — the sum of forward run lengths matches the published
    ///   edge count;
    /// * `dict-code-density` — every visible code resolves to a name (the
    ///   append-only store must be dense up to each frozen length);
    /// * `dict-roundtrip` — label names resolve back to their ids.
    fn audit(&self, report: &mut AuditReport) {
        report.check(
            "adjacency-arity",
            "graph",
            self.labels.len() == self.label_count(),
            || {
                format!(
                    "{} adjacency entries for {} visible labels",
                    self.labels.len(),
                    self.label_count()
                )
            },
        );
        for (what, view) in [("nodes", &self.nodes_view), ("labels", &self.labels_view)] {
            let resolved = (0..view.len).filter(|&c| view.name(c).is_some()).count();
            let loc = format!("dictionary {what}");
            report.check("dict-code-density", &loc, resolved == view.len(), || {
                format!("only {resolved} of {} codes resolve to names", view.len())
            });
        }
        for label in self.labels() {
            if let Some(name) = self.label_name(label) {
                report.check(
                    "dict-roundtrip",
                    &format!("label {}", label.0),
                    self.label_id(name) == Some(label),
                    || format!("name {name:?} does not resolve back to label {}", label.0),
                );
            }
        }
        let node_count = self.node_count();
        let mut edges = 0usize;
        for label in self.labels() {
            let Some(adj) = self.adjacency(label) else {
                continue; // arity violation already recorded
            };
            let loc = format!("label {}", label.0);
            adj.forward.audit(&format!("{loc} forward"), report);
            adj.backward.audit(&format!("{loc} backward"), report);
            let mut converse: Vec<Pair> = adj.forward.iter().map(|(s, t)| (t, s)).collect();
            converse.sort_unstable();
            report.check(
                "forward-backward-agree",
                &loc,
                converse.len() == adj.backward.len()
                    && converse.iter().copied().eq(adj.backward.iter()),
                || {
                    format!(
                        "backward run ({} pairs) is not the sorted converse of the forward run \
                         ({} pairs)",
                        adj.backward.len(),
                        adj.forward.len()
                    )
                },
            );
            report.check(
                "endpoint-in-range",
                &loc,
                adj.forward
                    .iter()
                    .all(|(s, t)| s.index() < node_count && t.index() < node_count),
                || format!("an edge endpoint is at or past the node count {node_count}"),
            );
            edges += adj.forward.len();
        }
        report.check("edge-count", "graph", edges == self.edge_count, || {
            format!(
                "runs hold {edges} edges but the graph claims {}",
                self.edge_count
            )
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::GraphBuilder;
    use crate::runs::CHUNK_MAX;

    fn sample() -> Graph {
        let mut b = GraphBuilder::new();
        b.add_edge_named("ada", "knows", "jan");
        b.add_edge_named("jan", "knows", "zoe");
        b.add_edge_named("zoe", "worksFor", "ada");
        b.add_edge_named("ada", "knows", "zoe");
        b.build()
    }

    fn neighbor_vec(g: &Graph, node: NodeId, sl: SignedLabel) -> Vec<NodeId> {
        g.neighbors(node, sl).collect()
    }

    #[test]
    fn counts() {
        let g = sample();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.label_count(), 2);
    }

    #[test]
    fn name_resolution_roundtrip() {
        let g = sample();
        for name in ["ada", "jan", "zoe"] {
            let id = g.node_id(name).unwrap();
            assert_eq!(g.node_name(id), Some(name));
        }
        for name in ["knows", "worksFor"] {
            let id = g.label_id(name).unwrap();
            assert_eq!(g.label_name(id), Some(name));
        }
        assert_eq!(g.node_id("nobody"), None);
        assert_eq!(g.label_id("likes"), None);
    }

    #[test]
    fn forward_and_backward_navigation() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let zoe = g.node_id("zoe").unwrap();

        assert_eq!(
            neighbor_vec(&g, ada, SignedLabel::forward(knows)),
            vec![jan, zoe]
        );
        assert_eq!(
            neighbor_vec(&g, zoe, SignedLabel::backward(knows)),
            vec![ada, jan]
        );
        assert_eq!(g.out_degree(ada, knows), 2);
        assert_eq!(g.in_degree(zoe, knows), 2);
        assert_eq!(g.total_degree(ada), 3);
    }

    #[test]
    fn signed_pairs_are_sorted_and_converse() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let fwd = g.signed_pairs(SignedLabel::forward(knows));
        let bwd = g.signed_pairs(SignedLabel::backward(knows));
        assert_eq!(fwd.len(), bwd.len());
        let mut expect: Vec<_> = fwd.iter().map(|&(s, t)| (t, s)).collect();
        expect.sort_unstable();
        assert_eq!(bwd, expect);
        assert!(fwd.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn has_edge_checks_direction_and_label() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let works = g.label_id("worksFor").unwrap();
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let zoe = g.node_id("zoe").unwrap();
        assert!(g.has_edge(ada, knows, jan));
        assert!(!g.has_edge(jan, knows, ada));
        assert!(g.has_edge(zoe, works, ada));
        assert!(!g.has_edge(zoe, knows, ada));
    }

    #[test]
    fn signed_labels_enumerates_alphabet_in_order() {
        let g = sample();
        let alphabet: Vec<_> = g.signed_labels().collect();
        assert_eq!(alphabet.len(), 4);
        assert!(alphabet.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn insert_edge_updates_relation_and_both_adjacencies() {
        let mut g = sample();
        let knows = g.label_id("knows").unwrap();
        let jan = g.node_id("jan").unwrap();
        let ada = g.node_id("ada").unwrap();
        assert!(!g.has_edge(jan, knows, ada));
        assert!(g.insert_edge(jan, knows, ada));
        assert!(!g.insert_edge(jan, knows, ada), "duplicate is a no-op");
        assert_eq!(g.edge_count(), 5);
        assert!(g.has_edge(jan, knows, ada));
        assert!(g
            .neighbors(jan, SignedLabel::forward(knows))
            .any(|n| n == ada));
        assert!(g
            .neighbors(ada, SignedLabel::backward(knows))
            .any(|n| n == jan));
        let edges: Vec<_> = g.edges(knows).collect();
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn remove_edge_restores_the_previous_state() {
        let mut g = sample();
        let knows = g.label_id("knows").unwrap();
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let before_edges: Vec<_> = g.edges(knows).collect();
        let zoe = g.node_id("zoe").unwrap();
        assert!(g.insert_edge(jan, knows, ada));
        assert!(g.remove_edge(jan, knows, ada));
        assert_eq!(g.edges(knows).collect::<Vec<_>>(), before_edges);
        assert_eq!(g.edge_count(), 4);
        assert!(!g.remove_edge(jan, knows, ada), "absent removal is a no-op");
        // Removing a real edge drops it from both directions.
        assert!(g.remove_edge(ada, knows, zoe));
        assert!(!g.has_edge(ada, knows, zoe));
        assert!(!g
            .neighbors(zoe, SignedLabel::backward(knows))
            .any(|n| n == ada));
    }

    #[test]
    #[should_panic(expected = "was not interned")]
    fn inserting_with_unknown_node_panics() {
        let mut g = sample();
        let knows = g.label_id("knows").unwrap();
        g.insert_edge(NodeId(99), knows, NodeId(0));
    }

    #[test]
    fn format_signed_label_uses_names() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        assert_eq!(g.format_signed_label(SignedLabel::forward(knows)), "knows");
        assert_eq!(
            g.format_signed_label(SignedLabel::backward(knows)),
            "knows-"
        );
    }

    #[test]
    fn commit_batch_shares_untouched_labels_across_epochs() {
        // Two labels, one large: touching only the small label must re-share
        // the big label's chunk lists by pointer.
        let mut b = GraphBuilder::new();
        for i in 0..(2 * CHUNK_MAX as u64) {
            b.add_edge_numeric(i, "big", i + 1);
        }
        b.add_edge_numeric(0, "tiny", 1);
        let g = b.build();
        let tiny = g.label_id("tiny").unwrap();
        let n0 = g.node_id("0").unwrap();
        let n2 = g.node_id("2").unwrap();

        let next = g.commit_batch(g.vocab_batch(), &[EdgeOp::insert(n0, tiny, n2)]);
        assert_eq!(next.edge_count(), g.edge_count() + 1);
        let big = g.label_id("big").unwrap();
        assert!(Arc::ptr_eq(
            &g.labels[big.index()].forward.chunks,
            &next.labels[big.index()].forward.chunks,
        ));
        let stats = next.last_publish_stats();
        assert_eq!(stats.labels_shared, 1);
        assert_eq!(stats.labels_rebuilt, 1);
        assert!(stats.chunks_shared >= g.labels[big.index()].forward.chunks.len());
        // The old epoch is untouched.
        assert!(!g.has_edge(n0, tiny, n2));
        assert!(next.has_edge(n0, tiny, n2));
    }

    #[test]
    fn insert_then_delete_within_one_batch_is_net_noop() {
        let g = sample();
        let knows = g.label_id("knows").unwrap();
        let jan = g.node_id("jan").unwrap();
        let ada = g.node_id("ada").unwrap();
        let next = g.commit_batch(
            g.vocab_batch(),
            &[
                EdgeOp::insert(jan, knows, ada),
                EdgeOp::delete(jan, knows, ada),
            ],
        );
        assert_eq!(next.edge_count(), g.edge_count());
        assert!(!next.has_edge(jan, knows, ada));
    }

    #[test]
    fn vocab_batch_interns_names_visible_only_after_commit() {
        let g = sample();
        let mut batch = g.vocab_batch();
        let mia = batch.intern_node("mia");
        let likes = batch.intern_label("likes");
        let ada = batch.node_id("ada").unwrap();
        assert_eq!(batch.node_count(), 4);
        assert_eq!(batch.label_count(), 3);

        let next = g.commit_batch(batch, &[EdgeOp::insert(ada, likes, mia)]);
        // The old epoch still resolves neither name nor id...
        assert_eq!(g.node_id("mia"), None);
        assert_eq!(g.label_id("likes"), None);
        assert_eq!(g.node_name(mia), None);
        assert_eq!(g.node_count(), 3);
        // ...while the new epoch sees the grown vocabulary and the edge.
        assert_eq!(next.node_id("mia"), Some(mia));
        assert_eq!(next.label_id("likes"), Some(likes));
        assert_eq!(next.node_name(mia), Some("mia"));
        assert!(next.has_edge(ada, likes, mia));
        assert_eq!(next.label_names(), vec!["knows", "worksFor", "likes"]);
    }

    #[test]
    fn streaming_commits_from_empty_match_a_bulk_build() {
        let bulk = sample();
        let mut g = Graph::empty();
        for (src, label, dst) in [
            ("ada", "knows", "jan"),
            ("jan", "knows", "zoe"),
            ("zoe", "worksFor", "ada"),
            ("ada", "knows", "zoe"),
        ] {
            let mut batch = g.vocab_batch();
            let s = batch.intern_node(src);
            let l = batch.intern_label(label);
            let d = batch.intern_node(dst);
            g = g.commit_batch(batch, &[EdgeOp::insert(s, l, d)]);
        }
        assert_eq!(g.node_count(), bulk.node_count());
        assert_eq!(g.edge_count(), bulk.edge_count());
        assert_eq!(g.label_names(), bulk.label_names());
        for label in bulk.labels() {
            let name = bulk.label_name(label).unwrap();
            let mine = g.label_id(name).unwrap();
            assert_eq!(
                g.edges(mine).collect::<Vec<_>>(),
                bulk.edges(label).collect::<Vec<_>>(),
                "label {name}"
            );
        }
        let mut report = AuditReport::new();
        report.run("graph", &g);
        report.assert_clean("streaming build");
    }

    #[test]
    fn audit_is_clean_on_built_and_mutated_graphs() {
        let mut g = sample();
        let mut report = AuditReport::new();
        report.run("graph", &g);
        report.assert_clean("fresh build");
        let knows = g.label_id("knows").unwrap();
        let jan = g.node_id("jan").unwrap();
        let ada = g.node_id("ada").unwrap();
        g.insert_edge(jan, knows, ada);
        g.remove_edge(ada, knows, jan);
        let mut report = AuditReport::new();
        report.run("graph", &g);
        report.assert_clean("after mutations");
    }

    /// The invariant names the audit reports for `g`, in discovery order.
    fn violated(g: &Graph) -> Vec<&'static str> {
        let mut report = AuditReport::new();
        report.run("graph", g);
        report.violations().iter().map(|v| v.invariant).collect()
    }

    #[test]
    fn seeded_corruption_trips_each_graph_auditor() {
        let clean = sample();
        let knows = clean.label_id("knows").unwrap();
        assert_eq!(violated(&clean), Vec::<&str>::new());

        // Swapped entries inside a chunk.
        let mut corrupt = clean.clone();
        {
            let labels = Arc::make_mut(&mut corrupt.labels);
            let chunks = Arc::make_mut(&mut labels[knows.index()].forward.chunks);
            Arc::make_mut(&mut chunks[0]).swap(0, 1);
        }
        assert!(
            violated(&corrupt).contains(&"chunk-sorted"),
            "swapped pairs must trip the sortedness audit"
        );

        // A stale fence that silently breaks chunk skipping.
        let mut corrupt = clean.clone();
        {
            let labels = Arc::make_mut(&mut corrupt.labels);
            let run = &mut labels[knows.index()].forward;
            let mut fences = run.fences.as_ref().clone();
            fences[0].0 .0 = NodeId(fences[0].0 .0 .0.wrapping_add(1));
            run.fences = Arc::new(fences);
        }
        assert!(
            violated(&corrupt).contains(&"fence-tight"),
            "a fence off the true bounds must trip the tightness audit"
        );

        // A backward run that is no longer the forward run's converse.
        let mut corrupt = clean.clone();
        {
            let labels = Arc::make_mut(&mut corrupt.labels);
            let adj = &mut labels[knows.index()];
            let mut pairs: Vec<_> = adj.backward.iter().collect();
            pairs.pop();
            adj.backward = EdgeRun::from_sorted(pairs);
        }
        assert!(
            violated(&corrupt).contains(&"forward-backward-agree"),
            "a dropped converse pair must trip the agreement audit"
        );

        // A sparse dictionary: a visible code with no name behind it.
        let mut corrupt = clean.clone();
        corrupt.nodes_view.len += 1;
        assert!(
            violated(&corrupt).contains(&"dict-code-density"),
            "a code past the stored names must trip the density audit"
        );
    }
}
