//! # pathix-graph
//!
//! Edge-labeled directed graph substrate used throughout pathix.
//!
//! The data model follows Section 2.1 of Fletcher, Peters and Poulovassilis,
//! *Efficient regular path query evaluation using path indexes* (EDBT 2016):
//! a graph over a vocabulary `L` assigns to every label `ℓ ∈ L` a finite
//! binary edge relation over atomic data objects. Nodes and labels are
//! interned into dense integer identifiers ([`NodeId`], [`LabelId`]) so that
//! the rest of the system can operate on compact numeric keys.
//!
//! The central type is [`Graph`], an immutable snapshot with:
//!
//! * per-label edge lists sorted by `(source, target)`,
//! * compressed-sparse-row adjacency in both directions (so that backwards
//!   navigation `ℓ⁻` is as cheap as forwards navigation `ℓ`),
//! * dictionaries mapping external node/label names to ids and back.
//!
//! Graphs are constructed through [`GraphBuilder`], loaded from simple
//! whitespace-separated edge-list files via [`loader`], or generated
//! synthetically by the `pathix-datagen` crate.
//!
//! ```
//! use pathix_graph::{GraphBuilder, SignedLabel};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named("ada", "knows", "jan");
//! b.add_edge_named("jan", "worksFor", "ada");
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.edge_count(), 2);
//! let knows = g.label_id("knows").unwrap();
//! let ada = g.node_id("ada").unwrap();
//! let out: Vec<_> = g.neighbors(ada, SignedLabel::forward(knows)).to_vec();
//! assert_eq!(out.len(), 1);
//! ```

pub mod builder;
pub mod csr;
pub mod dict;
pub mod graph;
pub mod ids;
pub mod loader;
pub mod snapshot;

pub use builder::GraphBuilder;
pub use csr::Csr;
pub use dict::Dictionary;
pub use graph::Graph;
pub use ids::{Direction, LabelId, NodeId, SignedLabel};
pub use loader::{load_edge_list, load_edge_list_str, LoadError};
pub use snapshot::GraphSnapshot;
