//! # pathix-graph
//!
//! Edge-labeled directed graph substrate used throughout pathix.
//!
//! The data model follows Section 2.1 of Fletcher, Peters and Poulovassilis,
//! *Efficient regular path query evaluation using path indexes* (EDBT 2016):
//! a graph over a vocabulary `L` assigns to every label `ℓ ∈ L` a finite
//! binary edge relation over atomic data objects. Nodes and labels are
//! interned into dense integer identifiers ([`NodeId`], [`LabelId`]) so that
//! the rest of the system can operate on compact numeric keys.
//!
//! The central type is [`Graph`], an immutable **epoch** over structurally
//! shared storage:
//!
//! * per-label edge relations (and their converses, so backwards navigation
//!   `ℓ⁻` is as cheap as forwards `ℓ`) held as bounded immutable chunks
//!   behind `Arc`s ([`runs`]), with min/max fences for chunk skipping;
//! * an append-only shared vocabulary ([`dict`]) — each epoch resolves names
//!   lock-free through a frozen prefix view while a writer interns new
//!   nodes and labels live.
//!
//! Cloning a graph is a handful of refcount bumps, and
//! [`Graph::commit_batch`] publishes the next epoch in O(Δ): only chunks
//! containing a changed pair are rebuilt, everything else is re-shared.
//!
//! Graphs are constructed through [`GraphBuilder`], loaded from simple
//! whitespace-separated edge-list files via [`loader`], generated
//! synthetically by the `pathix-datagen` crate, or grown from
//! [`Graph::empty`] purely through update batches (streaming ingest).
//!
//! ```
//! use pathix_graph::{GraphBuilder, SignedLabel};
//!
//! let mut b = GraphBuilder::new();
//! b.add_edge_named("ada", "knows", "jan");
//! b.add_edge_named("jan", "worksFor", "ada");
//! let g = b.build();
//!
//! assert_eq!(g.node_count(), 2);
//! assert_eq!(g.edge_count(), 2);
//! let knows = g.label_id("knows").unwrap();
//! let ada = g.node_id("ada").unwrap();
//! let out: Vec<_> = g.neighbors(ada, SignedLabel::forward(knows)).collect();
//! assert_eq!(out.len(), 1);
//! ```

pub mod builder;
pub mod dict;
pub mod graph;
pub mod ids;
pub mod loader;
pub mod runs;
pub mod snapshot;

pub use builder::GraphBuilder;
pub use dict::{DictView, Dictionary, SharedDictionary, Vocabulary};
pub use graph::{EdgeOp, Graph, VocabBatch};
pub use ids::{Direction, LabelId, NodeId, SignedLabel};
pub use loader::{load_edge_list, load_edge_list_str, LoadError};
pub use runs::GraphPublishStats;
pub use snapshot::GraphSnapshot;
