//! Plain-old-data snapshot representation of a graph.
//!
//! [`GraphSnapshot`] is a plain-old-data mirror of [`Graph`] that can be
//! serialized with any hand-rolled format (the bench harness writes JSON for
//! small reports). The chunked adjacency runs are rebuilt on restore rather
//! than stored.

use crate::builder::GraphBuilder;
use crate::graph::Graph;

/// Serializable form of a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GraphSnapshot {
    /// Node names in id order.
    pub nodes: Vec<String>,
    /// Label names in id order.
    pub labels: Vec<String>,
    /// Edges as `(label id, source id, target id)` triples.
    pub edges: Vec<(u16, u32, u32)>,
}

impl GraphSnapshot {
    /// Captures a snapshot of `graph`.
    pub fn from_graph(graph: &Graph) -> Self {
        let nodes = (0..graph.node_count() as u32)
            .map(|n| {
                graph
                    .node_name(crate::NodeId(n))
                    .unwrap_or_default()
                    .to_owned()
            })
            .collect();
        let labels = (0..graph.label_count() as u16)
            .map(|l| {
                graph
                    .label_name(crate::LabelId(l))
                    .unwrap_or_default()
                    .to_owned()
            })
            .collect();
        let mut edges = Vec::with_capacity(graph.edge_count());
        for label in graph.labels() {
            for (s, t) in graph.edges(label) {
                edges.push((label.0, s.0, t.0));
            }
        }
        GraphSnapshot {
            nodes,
            labels,
            edges,
        }
    }

    /// Rebuilds a [`Graph`] from this snapshot, re-deriving the chunked
    /// adjacency runs.
    pub fn into_graph(self) -> Graph {
        let mut builder = GraphBuilder::with_capacity(self.edges.len());
        // Intern names in id order so ids are preserved exactly.
        for name in &self.nodes {
            builder.add_node(name);
        }
        for name in &self.labels {
            builder.add_label(name);
        }
        for (l, s, t) in self.edges {
            builder.add_edge(crate::NodeId(s), crate::LabelId(l), crate::NodeId(t));
        }
        builder.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loader::load_edge_list_str;

    #[test]
    fn snapshot_roundtrip_preserves_structure() {
        let g = load_edge_list_str("ada knows jan\njan knows zoe\nzoe worksFor ada\n").unwrap();
        let snap = GraphSnapshot::from_graph(&g);
        let g2 = snap.clone().into_graph();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.label_count(), g2.label_count());
        assert_eq!(GraphSnapshot::from_graph(&g2), snap);
    }

    #[test]
    fn snapshot_of_empty_graph() {
        let g = GraphBuilder::new().build();
        let snap = GraphSnapshot::from_graph(&g);
        assert!(snap.nodes.is_empty());
        assert!(snap.edges.is_empty());
        let g2 = snap.into_graph();
        assert_eq!(g2.node_count(), 0);
    }

    #[test]
    fn ids_are_preserved_across_roundtrip() {
        let g = load_edge_list_str("b x c\na x b\n").unwrap();
        let snap = GraphSnapshot::from_graph(&g);
        let g2 = snap.into_graph();
        for name in ["a", "b", "c"] {
            assert_eq!(g.node_id(name), g2.node_id(name));
        }
    }
}
