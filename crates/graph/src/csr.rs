//! Compressed sparse row adjacency used for fast neighborhood expansion.

use crate::ids::NodeId;

/// Compressed-sparse-row adjacency structure for one edge relation.
///
/// For a relation `E ⊆ V × V` over `n` nodes, `offsets` has `n + 1` entries
/// and `targets[offsets[v] .. offsets[v+1]]` holds the (sorted, deduplicated
/// only if the input was) targets of node `v`.
#[derive(Debug, Clone, Default)]
pub struct Csr {
    offsets: Vec<u32>,
    targets: Vec<NodeId>,
}

impl Csr {
    /// Builds a CSR from an edge list. The input does not need to be sorted;
    /// parallel edges are preserved. `node_count` must be at least
    /// `max(node id) + 1` over all endpoints.
    pub fn from_edges(node_count: usize, edges: &[(NodeId, NodeId)]) -> Self {
        let mut degree = vec![0u32; node_count];
        for &(s, _) in edges {
            degree[s.index()] += 1;
        }
        let mut offsets = Vec::with_capacity(node_count + 1);
        let mut acc = 0u32;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets[..node_count].to_vec();
        let mut targets = vec![NodeId(0); edges.len()];
        for &(s, t) in edges {
            let pos = cursor[s.index()];
            targets[pos as usize] = t;
            cursor[s.index()] += 1;
        }
        // Sort each adjacency run so neighbor lists are ordered and
        // binary-searchable.
        for v in 0..node_count {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            targets[lo..hi].sort_unstable();
        }
        Csr { offsets, targets }
    }

    /// Neighbors of `node`, in ascending id order.
    #[inline]
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        let v = node.index();
        if v + 1 >= self.offsets.len() {
            return &[];
        }
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        &self.targets[lo..hi]
    }

    /// Out-degree of `node` in this relation.
    #[inline]
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Total number of stored edges.
    #[inline]
    pub fn edge_count(&self) -> usize {
        self.targets.len()
    }

    /// Number of nodes this CSR was built for.
    #[inline]
    pub fn node_count(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// `true` if `(src, dst)` is present (binary search over the sorted run).
    pub fn contains(&self, src: NodeId, dst: NodeId) -> bool {
        self.neighbors(src).binary_search(&dst).is_ok()
    }

    /// Inserts `(src, dst)` in place, keeping the adjacency run of `src`
    /// sorted. Returns `false` (and changes nothing) if the edge is already
    /// present. `src` must be within the node range the CSR was built for.
    ///
    /// The shift of the target array and offset vector is O(edges); this is
    /// the maintenance path for live updates, not a bulk-load substitute.
    pub fn insert(&mut self, src: NodeId, dst: NodeId) -> bool {
        let v = src.index();
        assert!(
            v + 1 < self.offsets.len(),
            "CSR insert: source node out of range"
        );
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        let pos = match self.targets[lo..hi].binary_search(&dst) {
            Ok(_) => return false,
            Err(pos) => lo + pos,
        };
        self.targets.insert(pos, dst);
        for offset in &mut self.offsets[v + 1..] {
            *offset += 1;
        }
        true
    }

    /// Removes `(src, dst)` in place. Returns `false` if the edge is absent
    /// (including when `src` is out of range).
    pub fn remove(&mut self, src: NodeId, dst: NodeId) -> bool {
        let v = src.index();
        if v + 1 >= self.offsets.len() {
            return false;
        }
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        let pos = match self.targets[lo..hi].binary_search(&dst) {
            Ok(pos) => lo + pos,
            Err(_) => return false,
        };
        self.targets.remove(pos);
        for offset in &mut self.offsets[v + 1..] {
            *offset -= 1;
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(v: u32) -> NodeId {
        NodeId(v)
    }

    #[test]
    fn empty_csr() {
        let csr = Csr::from_edges(0, &[]);
        assert_eq!(csr.edge_count(), 0);
        assert_eq!(csr.node_count(), 0);
        assert!(csr.neighbors(n(0)).is_empty());
    }

    #[test]
    fn builds_sorted_adjacency() {
        let edges = vec![(n(0), n(2)), (n(0), n(1)), (n(2), n(0)), (n(1), n(2))];
        let csr = Csr::from_edges(3, &edges);
        assert_eq!(csr.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(csr.neighbors(n(1)), &[n(2)]);
        assert_eq!(csr.neighbors(n(2)), &[n(0)]);
        assert_eq!(csr.edge_count(), 4);
        assert_eq!(csr.node_count(), 3);
    }

    #[test]
    fn degree_and_contains() {
        let edges = vec![(n(0), n(1)), (n(0), n(3)), (n(3), n(3))];
        let csr = Csr::from_edges(4, &edges);
        assert_eq!(csr.degree(n(0)), 2);
        assert_eq!(csr.degree(n(1)), 0);
        assert_eq!(csr.degree(n(3)), 1);
        assert!(csr.contains(n(0), n(1)));
        assert!(csr.contains(n(3), n(3)));
        assert!(!csr.contains(n(1), n(0)));
    }

    #[test]
    fn parallel_edges_are_preserved() {
        let edges = vec![(n(0), n(1)), (n(0), n(1))];
        let csr = Csr::from_edges(2, &edges);
        assert_eq!(csr.neighbors(n(0)), &[n(1), n(1)]);
        assert_eq!(csr.edge_count(), 2);
    }

    #[test]
    fn insert_keeps_runs_sorted_and_updates_offsets() {
        let edges = vec![(n(0), n(2)), (n(1), n(0))];
        let mut csr = Csr::from_edges(3, &edges);
        assert!(csr.insert(n(0), n(1)));
        assert!(!csr.insert(n(0), n(1)), "duplicate insert is a no-op");
        assert!(csr.insert(n(2), n(2)));
        assert_eq!(csr.neighbors(n(0)), &[n(1), n(2)]);
        assert_eq!(csr.neighbors(n(1)), &[n(0)]);
        assert_eq!(csr.neighbors(n(2)), &[n(2)]);
        assert_eq!(csr.edge_count(), 4);
    }

    #[test]
    fn remove_deletes_only_the_requested_edge() {
        let edges = vec![(n(0), n(1)), (n(0), n(2)), (n(1), n(2))];
        let mut csr = Csr::from_edges(3, &edges);
        assert!(csr.remove(n(0), n(1)));
        assert!(!csr.remove(n(0), n(1)), "absent removal is a no-op");
        assert!(!csr.remove(n(42), n(0)), "out-of-range removal is a no-op");
        assert_eq!(csr.neighbors(n(0)), &[n(2)]);
        assert_eq!(csr.neighbors(n(1)), &[n(2)]);
        assert_eq!(csr.edge_count(), 2);
    }

    #[test]
    fn insert_then_remove_restores_the_original() {
        let edges = vec![(n(0), n(1)), (n(2), n(0))];
        let mut csr = Csr::from_edges(3, &edges);
        let before: Vec<Vec<NodeId>> = (0..3).map(|v| csr.neighbors(n(v)).to_vec()).collect();
        assert!(csr.insert(n(1), n(2)));
        assert!(csr.remove(n(1), n(2)));
        let after: Vec<Vec<NodeId>> = (0..3).map(|v| csr.neighbors(n(v)).to_vec()).collect();
        assert_eq!(before, after);
    }

    #[test]
    fn out_of_range_node_has_no_neighbors() {
        let edges = vec![(n(0), n(1))];
        let csr = Csr::from_edges(2, &edges);
        assert!(csr.neighbors(n(57)).is_empty());
        assert_eq!(csr.degree(n(57)), 0);
    }
}
