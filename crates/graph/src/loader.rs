//! Loading graphs from whitespace-separated edge-list files.
//!
//! The accepted format is one edge per line, `source label target`, separated
//! by arbitrary whitespace. Blank lines and lines starting with `#` or `%`
//! (the KONECT convention used by the Advogato dataset) are ignored.

use crate::builder::GraphBuilder;
use crate::graph::Graph;
use std::fmt;
use std::fs;
use std::io;
use std::path::Path;

/// Errors produced while loading an edge list.
#[derive(Debug)]
pub enum LoadError {
    /// The underlying file could not be read.
    Io(io::Error),
    /// A non-comment line did not have exactly three whitespace-separated
    /// fields. Carries the 1-based line number and the offending content.
    Malformed { line: usize, content: String },
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "i/o error while loading edge list: {e}"),
            LoadError::Malformed { line, content } => write!(
                f,
                "malformed edge list line {line}: expected `source label target`, got {content:?}"
            ),
        }
    }
}

impl std::error::Error for LoadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            LoadError::Io(e) => Some(e),
            LoadError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for LoadError {
    fn from(e: io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Loads a graph from an edge-list file on disk.
pub fn load_edge_list(path: impl AsRef<Path>) -> Result<Graph, LoadError> {
    let text = fs::read_to_string(path)?;
    load_edge_list_str(&text)
}

/// Parses a graph from an in-memory edge list.
pub fn load_edge_list_str(text: &str) -> Result<Graph, LoadError> {
    let mut builder = GraphBuilder::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') || line.starts_with('%') {
            continue;
        }
        let mut fields = line.split_whitespace();
        let (src, label, dst) = match (fields.next(), fields.next(), fields.next(), fields.next()) {
            (Some(s), Some(l), Some(d), None) => (s, l, d),
            _ => {
                return Err(LoadError::Malformed {
                    line: idx + 1,
                    content: raw.to_owned(),
                })
            }
        };
        builder.add_edge_named(src, label, dst);
    }
    Ok(builder.build())
}

/// Serializes a graph back to the edge-list text format, one edge per line in
/// `(label, source, target)` order. The output round-trips through
/// [`load_edge_list_str`].
pub fn to_edge_list_string(graph: &Graph) -> String {
    let mut out = String::new();
    for label in graph.labels() {
        let label_name = graph.label_name(label).unwrap_or("?");
        for (s, t) in graph.edges(label) {
            let sn = graph.node_name(s).unwrap_or("?");
            let tn = graph.node_name(t).unwrap_or("?");
            out.push_str(sn);
            out.push(' ');
            out.push_str(label_name);
            out.push(' ');
            out.push_str(tn);
            out.push('\n');
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str =
        "\n# a comment\n% another comment\nada knows jan\njan knows zoe\n zoe worksFor ada \n";

    #[test]
    fn loads_simple_edge_list() {
        let g = load_edge_list_str(SAMPLE).unwrap();
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.edge_count(), 3);
        assert_eq!(g.label_count(), 2);
        let ada = g.node_id("ada").unwrap();
        let jan = g.node_id("jan").unwrap();
        let knows = g.label_id("knows").unwrap();
        assert!(g.has_edge(ada, knows, jan));
    }

    #[test]
    fn rejects_malformed_lines() {
        let err = load_edge_list_str("ada knows\n").unwrap_err();
        match err {
            LoadError::Malformed { line, .. } => assert_eq!(line, 1),
            other => panic!("unexpected error {other:?}"),
        }
        let err = load_edge_list_str("a b c d\n").unwrap_err();
        assert!(matches!(err, LoadError::Malformed { .. }));
    }

    #[test]
    fn empty_input_gives_empty_graph() {
        let g = load_edge_list_str("").unwrap();
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
    }

    #[test]
    fn roundtrip_through_text() {
        let g = load_edge_list_str(SAMPLE).unwrap();
        let text = to_edge_list_string(&g);
        let g2 = load_edge_list_str(&text).unwrap();
        assert_eq!(g.node_count(), g2.node_count());
        assert_eq!(g.edge_count(), g2.edge_count());
        assert_eq!(g.label_count(), g2.label_count());
        for label in g.labels() {
            let name = g.label_name(label).unwrap();
            let l2 = g2.label_id(name).unwrap();
            let mut pairs1: Vec<(String, String)> = g
                .edges(label)
                .map(|(s, t)| {
                    (
                        g.node_name(s).unwrap().to_owned(),
                        g.node_name(t).unwrap().to_owned(),
                    )
                })
                .collect();
            let mut pairs2: Vec<(String, String)> = g2
                .edges(l2)
                .map(|(s, t)| {
                    (
                        g2.node_name(s).unwrap().to_owned(),
                        g2.node_name(t).unwrap().to_owned(),
                    )
                })
                .collect();
            pairs1.sort();
            pairs2.sort();
            assert_eq!(pairs1, pairs2);
        }
    }

    #[test]
    fn load_from_file_and_io_error() {
        let dir = std::env::temp_dir().join("pathix_graph_loader_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.edges");
        std::fs::write(&path, SAMPLE).unwrap();
        let g = load_edge_list(&path).unwrap();
        assert_eq!(g.edge_count(), 3);
        let missing = dir.join("does_not_exist.edges");
        assert!(matches!(load_edge_list(&missing), Err(LoadError::Io(_))));
    }
}
